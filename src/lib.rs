//! # insight-repro — umbrella crate
//!
//! Re-exports every component crate of the reproduction of *"Heterogeneous
//! Stream Processing and Crowdsourcing for Urban Traffic Management"*
//! (EDBT 2014). The root package also hosts the cross-crate integration
//! tests (`tests/`) and the runnable examples (`examples/`).

pub use insight_core as core;
pub use insight_crowd as crowd;
pub use insight_datagen as datagen;
pub use insight_gp as gp;
pub use insight_rtec as rtec;
pub use insight_streams as streams;
pub use insight_traffic as traffic;
