//! The ground-truth congestion field.
//!
//! Sensors and buses in the scenario both observe a single underlying
//! reality: a per-junction congestion *level* in `[0, 1]` composed of
//!
//! * a base load,
//! * morning and evening rush-hour peaks (daily periodic),
//! * a spatial profile concentrating traffic towards the city centre, and
//! * randomly injected *incidents* — localised spikes with a start time,
//!   duration and severity, which is what the congestion-in-the-make CEs
//!   of the paper exist to detect.
//!
//! Flow and density derive from the level through the Greenshields
//! fundamental diagram of traffic flow (the model rule-set (2)'s thresholds
//! reference): normalised density = level, normalised flow =
//! `4·level·(1 − level)`.

use crate::network::{distance_m, StreetNetwork};
use crate::regions::CITY_CENTRE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Congestion level at and above which a location counts as congested —
/// what honest buses report and what the SCATS thresholds encode.
pub const CONGESTION_LEVEL: f64 = 0.7;

/// Jam density of the fundamental diagram (vehicles/km).
pub const JAM_DENSITY: f64 = 120.0;

/// Peak flow capacity (vehicles/hour) reached at level 0.5.
pub const CAPACITY: f64 = 1800.0;

/// Density threshold for rule-set (2): `D ≥ upper_Density_threshold`.
pub const UPPER_DENSITY_THRESHOLD: f64 = CONGESTION_LEVEL * JAM_DENSITY; // 84

/// Flow threshold for rule-set (2): `F ≤ lower_Flow_threshold`.
pub const LOWER_FLOW_THRESHOLD: f64 = 4.0 * CONGESTION_LEVEL * (1.0 - CONGESTION_LEVEL) * CAPACITY; // 1512

/// Seconds in a day.
pub const DAY: i64 = 86_400;

/// A localised congestion incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Epicentre junction.
    pub junction: usize,
    /// Start time (seconds).
    pub start: i64,
    /// Duration (seconds).
    pub duration: i64,
    /// Added congestion at the epicentre (0..1).
    pub severity: f64,
    /// Spatial decay radius in metres.
    pub radius_m: f64,
}

/// Configuration of the congestion field.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionConfig {
    /// Background level everywhere.
    pub base: f64,
    /// Amplitude of the rush-hour peaks at the centre.
    pub rush_amplitude: f64,
    /// Rush-hour centres in seconds-of-day with their widths (σ, seconds).
    pub rush_hours: Vec<(f64, f64)>,
    /// Number of incidents injected over the scenario duration.
    pub n_incidents: usize,
    /// Scenario duration (seconds) incidents are scattered over (the
    /// interval `[incident_offset, incident_offset + duration)`).
    pub duration: i64,
    /// Start of the incident-scatter interval (seconds; lets scenarios with
    /// a late start-of-day receive incidents inside their observed window).
    pub incident_offset: i64,
    /// Incident severity range.
    pub severity: (f64, f64),
    /// Incident duration range (seconds).
    pub incident_duration: (i64, i64),
    /// Incident radius in metres.
    pub incident_radius_m: f64,
    /// Length scale of the centre-weighted spatial profile (metres).
    pub spatial_scale_m: f64,
}

impl CongestionConfig {
    /// Defaults producing visible rush hours and a handful of incidents per
    /// simulated day.
    pub fn default_for(duration: i64) -> CongestionConfig {
        CongestionConfig {
            base: 0.12,
            // At the centre (spatial factor ≈ 1) the rush peak reaches
            // 0.12 + 0.68 = 0.80 > CONGESTION_LEVEL, so rush hours genuinely
            // congest the inner city; the periphery (factor ≈ 0.25) stays
            // below threshold unless an incident strikes.
            rush_amplitude: 0.68,
            rush_hours: vec![(8.5 * 3600.0, 4200.0), (17.5 * 3600.0, 4800.0)],
            n_incidents: (duration / 7200).max(1) as usize,
            duration,
            incident_offset: 0,
            severity: (0.35, 0.6),
            incident_duration: (900, 3600),
            incident_radius_m: 900.0,
            spatial_scale_m: 3500.0,
        }
    }
}

/// The generated field: query congestion level, density, flow and speed at
/// any junction and time.
#[derive(Debug, Clone)]
pub struct CongestionField {
    spatial: Vec<f64>,
    incidents: Vec<Incident>,
    /// Per incident: the affected junctions and their decay weights.
    affected: Vec<Vec<(usize, f64)>>,
    config: CongestionConfig,
}

impl CongestionField {
    /// Generates the field over a network, deterministically under `seed`.
    pub fn generate(
        network: &StreetNetwork,
        config: CongestionConfig,
        seed: u64,
    ) -> CongestionField {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0f3_f00d);
        let spatial: Vec<f64> = network
            .junctions()
            .iter()
            .map(|&(lon, lat)| {
                let d = distance_m((lon, lat), CITY_CENTRE);
                0.25 + 0.75 * (-d / config.spatial_scale_m).exp()
            })
            .collect();

        let mut incidents = Vec::with_capacity(config.n_incidents);
        let mut affected = Vec::with_capacity(config.n_incidents);
        for _ in 0..config.n_incidents {
            let junction = rng.random_range(0..network.len());
            let start = config.incident_offset + rng.random_range(0..config.duration.max(1));
            let duration =
                rng.random_range(config.incident_duration.0..=config.incident_duration.1);
            let severity = rng.random_range(config.severity.0..=config.severity.1);
            let incident = Incident {
                junction,
                start,
                duration,
                severity,
                radius_m: config.incident_radius_m,
            };
            let centre = network.coords(junction);
            let nearby: Vec<(usize, f64)> = (0..network.len())
                .filter_map(|v| {
                    let d = distance_m(network.coords(v), centre);
                    (d <= incident.radius_m).then(|| (v, 1.0 - d / incident.radius_m))
                })
                .collect();
            incidents.push(incident);
            affected.push(nearby);
        }

        CongestionField { spatial, incidents, affected, config }
    }

    /// The injected incidents.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Rush-hour factor in `[0, 1]` at a time of day.
    fn rush_factor(&self, t: i64) -> f64 {
        let tod = (t.rem_euclid(DAY)) as f64;
        self.config
            .rush_hours
            .iter()
            .map(|&(centre, sigma)| (-((tod - centre) / sigma).powi(2)).exp())
            .fold(0.0, f64::max)
    }

    /// Ground-truth congestion level of junction `v` at time `t`, in `[0, 1]`.
    pub fn level(&self, v: usize, t: i64) -> f64 {
        let mut level =
            self.config.base + self.config.rush_amplitude * self.rush_factor(t) * self.spatial[v];
        for (incident, nearby) in self.incidents.iter().zip(&self.affected) {
            if t >= incident.start && t < incident.start + incident.duration {
                if let Some(&(_, w)) = nearby.iter().find(|&&(u, _)| u == v) {
                    level += incident.severity * w;
                }
            }
        }
        level.clamp(0.0, 1.0)
    }

    /// Whether the junction counts as congested at `t`.
    pub fn is_congested(&self, v: usize, t: i64) -> bool {
        self.level(v, t) >= CONGESTION_LEVEL
    }

    /// Density in vehicles/km (fundamental diagram).
    pub fn density(&self, v: usize, t: i64) -> f64 {
        self.level(v, t) * JAM_DENSITY
    }

    /// Flow in vehicles/hour (fundamental diagram; peaks at level 0.5).
    pub fn flow(&self, v: usize, t: i64) -> f64 {
        let c = self.level(v, t);
        4.0 * c * (1.0 - c) * CAPACITY
    }

    /// Speed multiplier in `(0, 1]` — buses slow down in congestion.
    pub fn speed_factor(&self, v: usize, t: i64) -> f64 {
        1.0 - 0.8 * self.level(v, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;

    fn field() -> (StreetNetwork, CongestionField) {
        let net = StreetNetwork::generate(
            &NetworkConfig { nx: 10, ny: 8, ..NetworkConfig::dublin_default() },
            3,
        )
        .unwrap();
        let cfg = CongestionConfig::default_for(DAY);
        let f = CongestionField::generate(&net, cfg, 3);
        (net, f)
    }

    #[test]
    fn thresholds_encode_fundamental_diagram() {
        // At exactly the congestion level, D == upper threshold and
        // F == lower threshold.
        assert!((UPPER_DENSITY_THRESHOLD - 84.0).abs() < 1e-9);
        assert!((LOWER_FLOW_THRESHOLD - 1512.0).abs() < 1e-9);
    }

    #[test]
    fn rush_hour_raises_levels() {
        let (_, f) = field();
        let night = f.level(0, 3 * 3600);
        let morning = f.level(0, (8.5 * 3600.0) as i64);
        assert!(morning > night, "rush hour {morning} > night {night}");
    }

    #[test]
    fn centre_more_congested_than_periphery_at_rush() {
        let (net, f) = field();
        let t = (8.5 * 3600.0) as i64;
        let central = net.nearest_junction(CITY_CENTRE.0, CITY_CENTRE.1).unwrap();
        let corner = net.nearest_junction(-6.40, 53.28).unwrap();
        assert!(f.level(central, t) > f.level(corner, t));
    }

    #[test]
    fn levels_bounded_and_periodic() {
        let (net, f) = field();
        for v in 0..net.len() {
            for &t in &[0i64, 30000, 61200, 86399] {
                let c = f.level(v, t);
                assert!((0.0..=1.0).contains(&c));
            }
        }
        // No incidents in the second day (they are scattered over day one),
        // so periodicity holds wherever no incident is active.
        let quiet = (0..net.len())
            .find(|&v| {
                f.incidents()
                    .iter()
                    .zip(&f.affected)
                    .all(|(_, nearby)| nearby.iter().all(|&(u, _)| u != v))
            })
            .expect("some junction unaffected by incidents");
        assert!((f.level(quiet, 30_000) - f.level(quiet, 30_000 + DAY)).abs() < 1e-12);
    }

    #[test]
    fn incidents_spike_their_epicentre() {
        let (_, f) = field();
        let inc = f.incidents()[0].clone();
        let during = f.level(inc.junction, inc.start + inc.duration / 2);
        let after = f.level(inc.junction, inc.start + inc.duration + DAY * 2);
        // Compare at the same time of day to cancel the rush factor.
        let same_tod_before = f.level(inc.junction, inc.start + inc.duration / 2 + DAY * 2);
        assert!(during > same_tod_before, "incident raises level: {during} vs {same_tod_before}");
        let _ = after;
    }

    #[test]
    fn fundamental_diagram_shape() {
        let (_, f) = field();
        // flow = 4 c (1-c) * capacity: zero at c=0 and c=1, max at 0.5.
        // Use the formulas directly through a junction whose level we read.
        let c = f.level(0, 12 * 3600);
        let flow = f.flow(0, 12 * 3600);
        assert!((flow - 4.0 * c * (1.0 - c) * CAPACITY).abs() < 1e-9);
        let density = f.density(0, 12 * 3600);
        assert!((density - c * JAM_DENSITY).abs() < 1e-9);
        let sf = f.speed_factor(0, 12 * 3600);
        assert!(sf > 0.0 && sf <= 1.0);
    }

    #[test]
    fn congestion_flag_consistent_with_scats_thresholds() {
        let (net, f) = field();
        // Wherever the level ≥ CONGESTION_LEVEL, the emitted (noise-free)
        // D and F satisfy rule-set (2)'s condition.
        let mut checked = 0;
        for v in 0..net.len() {
            for t in (0..DAY).step_by(3600) {
                if f.is_congested(v, t) {
                    assert!(f.density(v, t) >= UPPER_DENSITY_THRESHOLD - 1e-9);
                    assert!(f.flow(v, t) <= LOWER_FLOW_THRESHOLD + 1e-9);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "the scenario produces congested situations");
    }

    #[test]
    fn deterministic_under_seed() {
        let net = StreetNetwork::generate(
            &NetworkConfig { nx: 6, ny: 5, ..NetworkConfig::dublin_default() },
            9,
        )
        .unwrap();
        let a = CongestionField::generate(&net, CongestionConfig::default_for(DAY), 11);
        let b = CongestionField::generate(&net, CongestionConfig::default_for(DAY), 11);
        assert_eq!(a.incidents(), b.incidents());
        assert_eq!(a.level(3, 30_000), b.level(3, 30_000));
    }
}
