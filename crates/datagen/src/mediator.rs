//! The mediator layer: the source of SDE veracity problems.
//!
//! "Sensor data may go through multiple mediators en route to our systems.
//! Such mediators apply filtering and aggregation mechanisms, most of which
//! are unknown to the system that receives the data" (§1). The simulated
//! mediator assigns each record a *delivery delay* (exercising the
//! late-arrival amendment of Figure 2), drops a fraction of records, and can
//! thin streams by forwarding only every k-th record of a source
//! (aggregation-style filtering).

use crate::error::DatagenError;
use crate::stream::Sde;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mediator behaviour configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MediatorConfig {
    /// Maximum delivery delay in seconds (uniform `0..=max`).
    pub max_delay_s: i64,
    /// Probability a record is silently dropped.
    pub drop_probability: f64,
    /// Forward only every k-th record per source (1 = all).
    pub thinning: usize,
}

impl MediatorConfig {
    /// A transparent mediator: no delay, no loss.
    pub fn transparent() -> MediatorConfig {
        MediatorConfig { max_delay_s: 0, drop_probability: 0.0, thinning: 1 }
    }

    /// The default lossy mediator used by the Dublin preset.
    pub fn default_lossy() -> MediatorConfig {
        MediatorConfig { max_delay_s: 45, drop_probability: 0.01, thinning: 1 }
    }

    fn validate(&self) -> Result<(), DatagenError> {
        if self.max_delay_s < 0 {
            return Err(DatagenError::InvalidConfig {
                name: "max_delay_s",
                detail: "must be non-negative".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(DatagenError::InvalidConfig {
                name: "drop_probability",
                detail: format!("must be in [0,1], got {}", self.drop_probability),
            });
        }
        if self.thinning == 0 {
            return Err(DatagenError::InvalidConfig {
                name: "thinning",
                detail: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Applies the mediator to a time-sorted record stream: assigns arrival
/// times, drops and thins. The output is sorted by **arrival** time — the
/// order in which the system actually receives the SDEs.
pub fn mediate(
    records: Vec<Sde>,
    config: &MediatorConfig,
    seed: u64,
) -> Result<Vec<Sde>, DatagenError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3ed1_a70f);
    let mut out = Vec::with_capacity(records.len());
    for (i, mut sde) in records.into_iter().enumerate() {
        if config.thinning > 1 && i % config.thinning != 0 {
            continue;
        }
        if config.drop_probability > 0.0 && rng.random::<f64>() < config.drop_probability {
            continue;
        }
        let delay =
            if config.max_delay_s > 0 { rng.random_range(0..=config.max_delay_s) } else { 0 };
        sde.arrival = sde.time + delay;
        out.push(sde);
    }
    out.sort_by_key(|s| (s.arrival, s.time));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{BusRecord, SdeBody};

    fn records(n: i64) -> Vec<Sde> {
        (0..n)
            .map(|t| {
                Sde::punctual(
                    t * 10,
                    SdeBody::Bus(BusRecord {
                        bus: 1,
                        line: 0,
                        operator: 0,
                        delay_s: 0,
                        lon: -6.26,
                        lat: 53.35,
                        direction: 0,
                        congestion: false,
                    }),
                )
            })
            .collect()
    }

    #[test]
    fn transparent_mediator_is_identity_ordering() {
        let out = mediate(records(50), &MediatorConfig::transparent(), 1).unwrap();
        assert_eq!(out.len(), 50);
        for s in &out {
            assert_eq!(s.arrival, s.time);
        }
    }

    #[test]
    fn delays_bound_and_reorder_by_arrival() {
        let cfg = MediatorConfig { max_delay_s: 100, drop_probability: 0.0, thinning: 1 };
        let out = mediate(records(200), &cfg, 2).unwrap();
        assert_eq!(out.len(), 200);
        for s in &out {
            assert!(s.arrival >= s.time && s.arrival <= s.time + 100);
        }
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival), "sorted by arrival");
        // With delays up to 100s over 10s spacing, some records must arrive
        // out of occurrence order.
        let occurrence_sorted = out.windows(2).all(|w| w[0].time <= w[1].time);
        assert!(!occurrence_sorted, "delays should reorder occurrences");
    }

    #[test]
    fn dropping_loses_records() {
        let cfg = MediatorConfig { max_delay_s: 0, drop_probability: 0.3, thinning: 1 };
        let out = mediate(records(1000), &cfg, 3).unwrap();
        assert!(out.len() < 1000 && out.len() > 500, "got {}", out.len());
    }

    #[test]
    fn thinning_keeps_every_kth() {
        let cfg = MediatorConfig { max_delay_s: 0, drop_probability: 0.0, thinning: 4 };
        let out = mediate(records(100), &cfg, 4).unwrap();
        assert_eq!(out.len(), 25);
    }

    #[test]
    fn validation() {
        assert!(mediate(
            records(1),
            &MediatorConfig { max_delay_s: -1, drop_probability: 0.0, thinning: 1 },
            1
        )
        .is_err());
        assert!(mediate(
            records(1),
            &MediatorConfig { max_delay_s: 0, drop_probability: 1.5, thinning: 1 },
            1
        )
        .is_err());
        assert!(mediate(
            records(1),
            &MediatorConfig { max_delay_s: 0, drop_probability: 0.0, thinning: 0 },
            1
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let cfg = MediatorConfig { max_delay_s: 30, drop_probability: 0.1, thinning: 1 };
        let a = mediate(records(100), &cfg, 9).unwrap();
        let b = mediate(records(100), &cfg, 9).unwrap();
        assert_eq!(a, b);
    }
}
