//! The four SCATS regions of Dublin.
//!
//! "In Dublin SCATS sensors are placed into the intersections of four
//! geographical areas: central city, north city, west city and south city"
//! (§7.1). Complex event recognition is distributed along these regions —
//! one engine per region — so the assignment function lives here, shared by
//! the data generator and the recognisers.

use std::fmt;

/// Dublin city-centre reference point (O'Connell Bridge, roughly).
pub const CITY_CENTRE: (f64, f64) = (-6.2603, 53.3478);

/// One of the four SCATS regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Central city (within the inner radius).
    Central,
    /// North city.
    North,
    /// West city.
    West,
    /// South city.
    South,
}

impl Region {
    /// All regions in a fixed order.
    pub const ALL: [Region; 4] = [Region::Central, Region::North, Region::West, Region::South];

    /// Region index (stable, 0..4).
    pub fn index(&self) -> usize {
        match self {
            Region::Central => 0,
            Region::North => 1,
            Region::West => 2,
            Region::South => 3,
        }
    }

    /// Assigns a coordinate to its region: inside `central_radius_deg` of
    /// the centre ⇒ Central; otherwise by bearing — north of the centre ⇒
    /// North, south-west ⇒ West, south-east ⇒ South.
    pub fn of(lon: f64, lat: f64) -> Region {
        Region::of_with_centre(lon, lat, CITY_CENTRE, 0.018)
    }

    /// Region assignment with an explicit centre and central radius
    /// (degrees, approximate).
    pub fn of_with_centre(
        lon: f64,
        lat: f64,
        centre: (f64, f64),
        central_radius_deg: f64,
    ) -> Region {
        let dx = (lon - centre.0) * centre.1.to_radians().cos();
        let dy = lat - centre.1;
        if (dx * dx + dy * dy).sqrt() <= central_radius_deg {
            return Region::Central;
        }
        if dy > 0.0 {
            Region::North
        } else if dx < 0.0 {
            Region::West
        } else {
            Region::South
        }
    }
}

impl Region {
    /// The region's stable lowercase name, as used for stream routing keys.
    pub fn name(self) -> &'static str {
        match self {
            Region::Central => "central",
            Region::North => "north",
            Region::West => "west",
            Region::South => "south",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centre_is_central() {
        assert_eq!(Region::of(CITY_CENTRE.0, CITY_CENTRE.1), Region::Central);
        assert_eq!(Region::of(CITY_CENTRE.0 + 0.005, CITY_CENTRE.1 - 0.005), Region::Central);
    }

    #[test]
    fn bearings_assign_outer_regions() {
        assert_eq!(Region::of(CITY_CENTRE.0, CITY_CENTRE.1 + 0.05), Region::North);
        assert_eq!(Region::of(CITY_CENTRE.0 - 0.08, CITY_CENTRE.1 - 0.03), Region::West);
        assert_eq!(Region::of(CITY_CENTRE.0 + 0.06, CITY_CENTRE.1 - 0.03), Region::South);
    }

    #[test]
    fn indices_are_stable_and_distinct() {
        let idxs: Vec<usize> = Region::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Region::Central.to_string(), "central");
        assert_eq!(Region::West.to_string(), "west");
    }
}
