//! # insight-datagen — a synthetic Dublin traffic scenario
//!
//! The paper evaluates on the dublinked.ie January 2013 feeds: 942 buses
//! emitting position/congestion SDEs every 20–30 s and 966 SCATS vehicle
//! detectors reporting flow/density every 6 minutes, over the OpenStreetMap
//! street network of Dublin. Those feeds are no longer obtainable in their
//! original form, so this crate generates a faithful synthetic substitute
//! (see DESIGN.md §3 for the substitution argument):
//!
//! * [`network`] — a procedural street network over the Dublin bounding box
//!   (perturbed grid + arterials + ring road), standing in for OSM;
//! * [`regions`] — the four SCATS regions (central/north/west/south) used to
//!   distribute complex event recognition;
//! * [`congestion`] — the ground-truth congestion field: rush-hour peaks,
//!   a centre-weighted spatial profile, and injected incidents; flow and
//!   density follow the fundamental diagram of traffic flow (Greenshields);
//! * [`scats`] — sensor placement and 6-minute `traffic(Int, A, S, D, F)`
//!   readings;
//! * [`buses`] — routes, fleet shifts, 20–30 s `move`/`gps` emissions with
//!   congestion-dependent delays, and configurable *faulty* buses that
//!   mis-report congestion (the veracity problem of §1);
//! * [`mediator`] — the pre-processing layer the paper blames for
//!   uncertainty: delivery delay, drop-out, batching;
//! * [`scenario`] — presets (`dublin_jan_2013`, `small`) and the generator
//!   producing a time-ordered SDE trace plus ground-truth accessors;
//! * [`stream`] — the SDE record types shared with the rest of the system.
//!
//! Everything is deterministic under the scenario seed.

#![warn(missing_docs)]
// `!(x > 0.0)` guards are deliberate: they reject NaN along with the
// out-of-range values, which `x <= 0.0` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod adversarial;
pub mod buses;
pub mod citizens;
pub mod congestion;
pub mod error;
pub mod mediator;
pub mod network;
pub mod regions;
pub mod scats;
pub mod scenario;
pub mod stream;

pub use error::DatagenError;
pub use network::StreetNetwork;
pub use regions::Region;
pub use scenario::{Scenario, ScenarioConfig};
pub use stream::{BusRecord, ScatsRecord, Sde, SdeBody};
