//! SCATS sensor deployment and readings.
//!
//! 966 vehicle detectors are installed at a subset of intersections
//! (weighted towards the centre, as in Dublin), several per intersection —
//! one per approach. Every six minutes each sensor reports density and flow
//! derived from the ground-truth field through the fundamental diagram,
//! with a small multiplicative measurement noise.

use crate::congestion::CongestionField;
use crate::error::DatagenError;
use crate::network::{distance_m, StreetNetwork};
use crate::regions::{Region, CITY_CENTRE};
use crate::stream::ScatsRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One deployed sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatsSensor {
    /// Sensor id (unique across the deployment).
    pub id: u32,
    /// Owning intersection id.
    pub intersection: u32,
    /// Approach index within the intersection.
    pub approach: u8,
    /// The junction the sensor sits at.
    pub junction: usize,
}

/// One instrumented intersection.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatsIntersection {
    /// Intersection id.
    pub id: u32,
    /// The junction index in the street network.
    pub junction: usize,
    /// Longitude.
    pub lon: f64,
    /// Latitude.
    pub lat: f64,
    /// Ids of the sensors mounted on this intersection's approaches.
    pub sensors: Vec<u32>,
    /// The SCATS region.
    pub region: Region,
}

/// The full deployment.
#[derive(Debug, Clone)]
pub struct ScatsDeployment {
    intersections: Vec<ScatsIntersection>,
    sensors: Vec<ScatsSensor>,
    /// Per-reading multiplicative noise half-width (e.g. 0.05 = ±5 %).
    pub measurement_noise: f64,
}

impl ScatsDeployment {
    /// Places `n_sensors` detectors on intersections sampled with
    /// centre-weighted probability; each chosen intersection receives 1–4
    /// sensors (its approaches, bounded by its degree).
    pub fn place(
        network: &StreetNetwork,
        n_sensors: usize,
        measurement_noise: f64,
        seed: u64,
    ) -> Result<ScatsDeployment, DatagenError> {
        if n_sensors == 0 {
            return Err(DatagenError::InvalidConfig {
                name: "n_sensors",
                detail: "need at least one sensor".into(),
            });
        }
        if !(0.0..=0.5).contains(&measurement_noise) {
            return Err(DatagenError::InvalidConfig {
                name: "measurement_noise",
                detail: format!("must be in [0, 0.5], got {measurement_noise}"),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca7_5000);

        // Centre-weighted sampling without replacement.
        // Strong centre weighting: Dublin's SCATS coverage is densest in
        // the inner city, and the congested core must be instrumented for
        // the congestion CEs to have anything to detect.
        let mut weights: Vec<f64> = network
            .junctions()
            .iter()
            .map(|&(lon, lat)| (-distance_m((lon, lat), CITY_CENTRE) / 2000.0).exp() + 0.02)
            .collect();

        let mut intersections: Vec<ScatsIntersection> = Vec::new();
        let mut sensors: Vec<ScatsSensor> = Vec::new();

        fn instrument(
            network: &StreetNetwork,
            junction: usize,
            n_sensors: usize,
            rng: &mut StdRng,
            intersections: &mut Vec<ScatsIntersection>,
            sensors: &mut Vec<ScatsSensor>,
        ) {
            let next_int = intersections.len() as u32;
            let degree = network.neighbours(junction).len().max(1);
            let remaining = n_sensors - sensors.len();
            let approaches = rng.random_range(1..=degree.min(4)).min(remaining);
            let (lon, lat) = network.coords(junction);
            let mut ids = Vec::with_capacity(approaches);
            for a in 0..approaches {
                let id = sensors.len() as u32;
                sensors.push(ScatsSensor {
                    id,
                    intersection: next_int,
                    approach: a as u8,
                    junction,
                });
                ids.push(id);
            }
            intersections.push(ScatsIntersection {
                id: next_int,
                junction,
                lon,
                lat,
                sensors: ids,
                region: Region::of(lon, lat),
            });
        }

        // Phase 1 — the inner city is always instrumented: the junctions
        // nearest the centre receive sensors first (~30 % of the budget), as
        // in the real deployment where the core is fully covered.
        let mut by_distance: Vec<usize> = (0..network.len()).collect();
        by_distance.sort_by(|&a, &b| {
            distance_m(network.coords(a), CITY_CENTRE)
                .total_cmp(&distance_m(network.coords(b), CITY_CENTRE))
        });
        let core_budget = n_sensors.div_ceil(3);
        for &junction in &by_distance {
            if sensors.len() >= core_budget {
                break;
            }
            weights[junction] = 0.0; // taken
            instrument(network, junction, n_sensors, &mut rng, &mut intersections, &mut sensors);
        }

        // Phase 2 — centre-weighted roulette for the remaining budget.
        while sensors.len() < n_sensors {
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                return Err(DatagenError::InvalidConfig {
                    name: "n_sensors",
                    detail: format!(
                        "cannot place {n_sensors} sensors on {} junctions",
                        network.len()
                    ),
                });
            }
            // Roulette-wheel pick.
            let mut r = rng.random_range(0.0..total);
            let mut junction = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                if r < w {
                    junction = i;
                    break;
                }
                r -= w;
            }
            weights[junction] = 0.0; // without replacement
            instrument(network, junction, n_sensors, &mut rng, &mut intersections, &mut sensors);
        }

        Ok(ScatsDeployment { intersections, sensors, measurement_noise })
    }

    /// The instrumented intersections.
    pub fn intersections(&self) -> &[ScatsIntersection] {
        &self.intersections
    }

    /// All sensors.
    pub fn sensors(&self) -> &[ScatsSensor] {
        &self.sensors
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// The readings of every sensor at reading time `t`.
    pub fn readings_at(
        &self,
        network: &StreetNetwork,
        field: &CongestionField,
        t: i64,
        rng: &mut StdRng,
    ) -> Vec<ScatsRecord> {
        let mut out = Vec::with_capacity(self.sensors.len());
        self.readings_into(network, field, t, rng, &mut out);
        out
    }

    /// [`readings_at`](ScatsDeployment::readings_at), appending the tick's
    /// batch into a caller-owned buffer — the batched ingest form: a sweep
    /// over many ticks reuses one buffer instead of allocating a fresh
    /// vector per tick.
    pub fn readings_into(
        &self,
        network: &StreetNetwork,
        field: &CongestionField,
        t: i64,
        rng: &mut StdRng,
        out: &mut Vec<ScatsRecord>,
    ) {
        out.reserve(self.sensors.len());
        for s in &self.sensors {
            let noise = |v: f64, rng: &mut StdRng| {
                if self.measurement_noise > 0.0 {
                    v * rng.random_range(1.0 - self.measurement_noise..1.0 + self.measurement_noise)
                } else {
                    v
                }
            };
            let (lon, lat) = network.coords(s.junction);
            out.push(ScatsRecord {
                intersection: s.intersection,
                approach: s.approach,
                sensor: s.id,
                density: noise(field.density(s.junction, t), rng),
                flow: noise(field.flow(s.junction, t), rng),
                lon,
                lat,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionConfig;
    use crate::network::NetworkConfig;

    fn net() -> StreetNetwork {
        StreetNetwork::generate(
            &NetworkConfig { nx: 14, ny: 10, ..NetworkConfig::dublin_default() },
            5,
        )
        .unwrap()
    }

    #[test]
    fn places_exact_sensor_count() {
        let n = net();
        let d = ScatsDeployment::place(&n, 50, 0.05, 1).unwrap();
        assert_eq!(d.len(), 50);
        // Intersections have between 1 and 4 sensors each.
        for i in d.intersections() {
            assert!((1..=4).contains(&i.sensors.len()));
        }
        // Sensor ids are unique and dense.
        let mut ids: Vec<u32> = d.sensors().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn deployment_is_deterministic() {
        let n = net();
        let a = ScatsDeployment::place(&n, 30, 0.05, 9).unwrap();
        let b = ScatsDeployment::place(&n, 30, 0.05, 9).unwrap();
        assert_eq!(a.sensors(), b.sensors());
    }

    #[test]
    fn rejects_bad_configs() {
        let n = net();
        assert!(ScatsDeployment::place(&n, 0, 0.05, 1).is_err());
        assert!(ScatsDeployment::place(&n, 10, 0.9, 1).is_err());
        // More sensors than 4 × junctions is impossible.
        assert!(ScatsDeployment::place(&n, n.len() * 5, 0.05, 1).is_err());
    }

    #[test]
    fn readings_follow_the_field() {
        let n = net();
        let field = CongestionField::generate(&n, CongestionConfig::default_for(86_400), 2);
        let d = ScatsDeployment::place(&n, 40, 0.0, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let t = (8.5 * 3600.0) as i64;
        let readings = d.readings_at(&n, &field, t, &mut rng);
        assert_eq!(readings.len(), 40);
        for (r, s) in readings.iter().zip(d.sensors()) {
            assert!(
                (r.density - field.density(s.junction, t)).abs() < 1e-9,
                "noise-free readings equal field"
            );
            assert!((r.flow - field.flow(s.junction, t)).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_perturbs_but_bounded() {
        let n = net();
        let field = CongestionField::generate(&n, CongestionConfig::default_for(86_400), 2);
        let d = ScatsDeployment::place(&n, 40, 0.05, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let t = 30_000;
        let readings = d.readings_at(&n, &field, t, &mut rng);
        for (r, s) in readings.iter().zip(d.sensors()) {
            let truth = field.density(s.junction, t);
            assert!((r.density - truth).abs() <= truth * 0.05 + 1e-9);
        }
    }

    #[test]
    fn centre_weighting_prefers_central_intersections() {
        let n = net();
        let d = ScatsDeployment::place(&n, 60, 0.05, 1).unwrap();
        let chosen_central =
            d.intersections().iter().filter(|i| i.region == Region::Central).count() as f64
                / d.intersections().len() as f64;
        let base_central = n
            .junctions()
            .iter()
            .filter(|&&(lon, lat)| Region::of(lon, lat) == Region::Central)
            .count() as f64
            / n.len() as f64;
        // The centre-weighted sampler must over-represent the central disc
        // relative to its share of all junctions.
        assert!(
            chosen_central >= base_central * 2.0,
            "central share {chosen_central:.3} should exceed 2x base share {base_central:.3}"
        );
    }
}
