//! Adversarial arrival-time generators for windowed-recognition testing.
//!
//! RTEC's working-memory semantics (§4.2 of the paper) are exercised hardest
//! by *when* SDEs arrive relative to the query grid, not by what they say:
//! late arrivals inside the working memory must be amended into later
//! windows, arrivals beyond the working memory must be irrevocably ignored,
//! and occurrence times landing exactly on a `Qi − WM` boundary must fall
//! outside the half-open window `(Qi − WM, Qi]`. This module generates those
//! schedules deterministically from a seed, plus the pure arithmetic
//! ([`QueryGrid`]) that predicts which events a correct engine can ever see.

use crate::stream::Sde;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The query grid of a windowed recognition run: queries at
/// `first, first + step, …` up to `last`, each looking back `wm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryGrid {
    /// First query time.
    pub first: i64,
    /// Distance between consecutive queries (the window *step*/slide).
    pub step: i64,
    /// Working-memory size (window length).
    pub wm: i64,
    /// Last query time (inclusive; the grid stops at the largest
    /// `first + k·step ≤ last`).
    pub last: i64,
}

impl QueryGrid {
    /// All query times of the grid, in increasing order.
    pub fn queries(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut q = self.first;
        while q <= self.last {
            out.push(q);
            q += self.step;
        }
        out
    }

    /// Whether an item with the given occurrence and arrival time is inside
    /// the window evaluated at query `q`: it must have arrived, and its
    /// occurrence time must lie in the half-open working memory `(q − wm, q]`.
    pub fn visible_at(&self, time: i64, arrival: i64, q: i64) -> bool {
        arrival <= q && time > q - self.wm && time <= q
    }

    /// Whether any query of the grid up to `horizon` (inclusive) can see the
    /// item. Items for which this is `false` are *irrevocably lost* to a
    /// correct windowed engine — they arrived after their occurrence time
    /// slid out of the working memory.
    pub fn ever_visible_by(&self, time: i64, arrival: i64, horizon: i64) -> bool {
        let mut q = self.first;
        while q <= self.last && q <= horizon {
            if self.visible_at(time, arrival, q) {
                return true;
            }
            q += self.step;
        }
        false
    }

    /// [`QueryGrid::ever_visible_by`] over the whole grid.
    pub fn ever_visible(&self, time: i64, arrival: i64) -> bool {
        self.ever_visible_by(time, arrival, self.last)
    }

    /// The largest query time strictly before `time + wm` (the last query
    /// that could still admit an occurrence at `time`), if any.
    fn last_admitting_query(&self, time: i64) -> Option<i64> {
        let mut candidate = None;
        let mut q = self.first;
        while q <= self.last {
            if q < time + self.wm && time <= q {
                candidate = Some(q);
            }
            q += self.step;
        }
        candidate
    }
}

/// How an adversarially scheduled item relates to the query grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lateness {
    /// Arrives before the first query that covers its occurrence time.
    OnTime,
    /// Arrives one or more queries late, but while its occurrence time is
    /// still inside the working memory — must be amended in.
    WithinWm,
    /// Arrives after its occurrence time left the working memory — must be
    /// dropped by every query.
    BeyondWm,
    /// Occurrence time exactly on a `Qi − WM` boundary (excluded by the
    /// half-open window) or exactly one tick inside it (included).
    Boundary,
}

/// Sampling weights for the lateness classes (normalised internally).
#[derive(Debug, Clone, Copy)]
pub struct LatenessMix {
    /// Weight of [`Lateness::OnTime`].
    pub on_time: f64,
    /// Weight of [`Lateness::WithinWm`].
    pub within_wm: f64,
    /// Weight of [`Lateness::BeyondWm`].
    pub beyond_wm: f64,
    /// Weight of [`Lateness::Boundary`].
    pub boundary: f64,
}

impl Default for LatenessMix {
    fn default() -> LatenessMix {
        LatenessMix { on_time: 0.55, within_wm: 0.2, beyond_wm: 0.1, boundary: 0.15 }
    }
}

impl LatenessMix {
    fn sample(&self, rng: &mut StdRng) -> Lateness {
        let total = self.on_time + self.within_wm + self.beyond_wm + self.boundary;
        let mut x = rng.random::<f64>() * total.max(f64::MIN_POSITIVE);
        for (w, class) in [
            (self.on_time, Lateness::OnTime),
            (self.within_wm, Lateness::WithinWm),
            (self.beyond_wm, Lateness::BeyondWm),
            (self.boundary, Lateness::Boundary),
        ] {
            if x < w {
                return class;
            }
            x -= w;
        }
        Lateness::OnTime
    }
}

/// One adversarially scheduled time-point: occurrence, arrival, class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdePoint {
    /// Occurrence time.
    pub time: i64,
    /// Arrival time (`≥ time` except for `OnTime` points, which may arrive
    /// in the same instant they occur).
    pub arrival: i64,
    /// The scheduled lateness class.
    pub class: Lateness,
}

/// Generates `n` deterministic adversarial `(time, arrival)` points against
/// the grid. Every class is constructed, not sampled-and-hoped: `WithinWm`
/// points are guaranteed ever-visible, `BeyondWm` points are guaranteed
/// never-visible, and `Boundary` points alternate between `Qi − WM` exactly
/// (excluded) and `Qi − WM + 1` (the first included tick).
pub fn adversarial_points(
    seed: u64,
    n: usize,
    grid: &QueryGrid,
    mix: &LatenessMix,
) -> Vec<SdePoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xad5e_7a51);
    let queries = grid.queries();
    let mut out = Vec::with_capacity(n);
    let lo = grid.first - grid.wm + 1; // earliest occurrence the first window sees
    let hi = grid.last;
    let mut boundary_inside = false;
    for _ in 0..n {
        let class = mix.sample(&mut rng);
        let point = match class {
            Lateness::OnTime => {
                let time = rng.random_range(lo..=hi);
                let arrival = time + rng.random_range(0..grid.step.max(1));
                SdePoint { time, arrival, class }
            }
            Lateness::WithinWm => {
                let time = rng.random_range(lo..=hi);
                match grid.last_admitting_query(time) {
                    Some(qmax) if qmax > time => {
                        let arrival = rng.random_range(time + 1..=qmax);
                        SdePoint { time, arrival, class }
                    }
                    _ => SdePoint { time, arrival: time, class: Lateness::OnTime },
                }
            }
            Lateness::BeyondWm => {
                let time = rng.random_range(lo..=hi);
                // Arrive strictly after the last query that could admit the
                // occurrence; every remaining query's working memory starts
                // at or past `time`.
                let too_late = match grid.last_admitting_query(time) {
                    Some(qmax) => qmax + 1,
                    None => time + 1,
                };
                let arrival = too_late + rng.random_range(0..grid.step.max(1));
                SdePoint { time, arrival, class }
            }
            Lateness::Boundary => {
                let q = queries[rng.random_range(0..queries.len())];
                boundary_inside = !boundary_inside;
                let time = q - grid.wm + i64::from(boundary_inside);
                // Arrive in time for query `q` itself.
                let arrival = q - rng.random_range(0..grid.step.max(1));
                SdePoint { time, arrival: arrival.max(time), class }
            }
        };
        out.push(point);
    }
    out
}

/// Counters of one [`perturb_sdes`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerturbStats {
    /// Items left with their mediated arrival time.
    pub on_time: usize,
    /// Items delayed but still inside the working memory.
    pub within_wm: usize,
    /// Items delayed past the working memory (lost to recognition).
    pub beyond_wm: usize,
    /// Items duplicated (same occurrence *and* arrival).
    pub duplicates: usize,
}

/// Rewrites the arrival times of a scenario SDE trace adversarially:
/// a deterministic fraction of items is delayed within the working memory,
/// a fraction beyond it, and a fraction duplicated outright. The trace is
/// re-sorted by arrival afterwards (the convention every consumer of
/// `Scenario::sdes` relies on).
pub fn perturb_sdes(
    sdes: &mut Vec<Sde>,
    seed: u64,
    grid: &QueryGrid,
    mix: &LatenessMix,
    duplicate_rate: f64,
) -> PerturbStats {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5de_ad71);
    let mut stats = PerturbStats::default();
    let mut duplicated: Vec<Sde> = Vec::new();
    for sde in sdes.iter_mut() {
        match mix.sample(&mut rng) {
            Lateness::WithinWm => match grid.last_admitting_query(sde.time) {
                Some(qmax) if qmax > sde.time => {
                    sde.arrival = rng.random_range(sde.time + 1..=qmax);
                    stats.within_wm += 1;
                }
                _ => stats.on_time += 1,
            },
            Lateness::BeyondWm => {
                let too_late = match grid.last_admitting_query(sde.time) {
                    Some(qmax) => qmax + 1,
                    None => sde.time + 1,
                };
                sde.arrival = too_late + rng.random_range(0..grid.step.max(1));
                stats.beyond_wm += 1;
            }
            // `Boundary` needs control over occurrence times, which a
            // scenario trace fixes; treat it as on-time here.
            Lateness::OnTime | Lateness::Boundary => stats.on_time += 1,
        }
        if rng.random_bool(duplicate_rate.clamp(0.0, 1.0)) {
            duplicated.push(sde.clone());
            stats.duplicates += 1;
        }
    }
    sdes.extend(duplicated);
    sdes.sort_by_key(|s| s.arrival);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> QueryGrid {
        QueryGrid { first: 100, step: 50, wm: 100, last: 400 }
    }

    #[test]
    fn grid_queries_and_visibility() {
        let g = grid();
        assert_eq!(g.queries(), vec![100, 150, 200, 250, 300, 350, 400]);
        // Half-open window: the boundary tick is excluded, the next included.
        assert!(!g.visible_at(0, 50, 100));
        assert!(g.visible_at(1, 50, 100));
        // Not yet arrived.
        assert!(!g.visible_at(90, 120, 100));
        assert!(g.visible_at(90, 120, 150));
    }

    #[test]
    fn classes_honour_their_contracts() {
        let g = grid();
        let points = adversarial_points(7, 500, &g, &LatenessMix::default());
        assert_eq!(points.len(), 500);
        let mut seen = [0usize; 4];
        for p in &points {
            match p.class {
                Lateness::OnTime => seen[0] += 1,
                Lateness::WithinWm => {
                    seen[1] += 1;
                    assert!(p.arrival > p.time, "within-wm must be late");
                    assert!(g.ever_visible(p.time, p.arrival), "within-wm must stay visible");
                }
                Lateness::BeyondWm => {
                    seen[2] += 1;
                    assert!(!g.ever_visible(p.time, p.arrival), "beyond-wm must be lost: {p:?}");
                }
                Lateness::Boundary => seen[3] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 0), "all classes generated: {seen:?}");
    }

    #[test]
    fn boundary_points_split_exactly_on_the_edge() {
        let g = grid();
        let points = adversarial_points(11, 400, &g, &LatenessMix::default());
        let boundary: Vec<_> = points.iter().filter(|p| p.class == Lateness::Boundary).collect();
        assert!(!boundary.is_empty());
        let excluded =
            boundary.iter().filter(|p| g.queries().iter().any(|&q| p.time == q - g.wm)).count();
        let included =
            boundary.iter().filter(|p| g.queries().iter().any(|&q| p.time == q - g.wm + 1)).count();
        assert!(excluded > 0 && included > 0, "both edge flavours present");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = grid();
        let a = adversarial_points(99, 200, &g, &LatenessMix::default());
        let b = adversarial_points(99, 200, &g, &LatenessMix::default());
        assert_eq!(a, b);
        let c = adversarial_points(100, 200, &g, &LatenessMix::default());
        assert_ne!(a, c);
    }

    #[test]
    fn perturbation_keeps_occurrences_and_sorts_arrivals() {
        use crate::scenario::{Scenario, ScenarioConfig};
        let scenario = Scenario::generate(ScenarioConfig::small(600, 3)).unwrap();
        let mut sdes = scenario.sdes.clone();
        let g = QueryGrid { first: 300, step: 300, wm: 600, last: 600 };
        let before: Vec<i64> = {
            let mut t: Vec<i64> = sdes.iter().map(|s| s.time).collect();
            t.sort_unstable();
            t
        };
        let stats = perturb_sdes(&mut sdes, 5, &g, &LatenessMix::default(), 0.1);
        assert_eq!(sdes.len(), before.len() + stats.duplicates);
        assert!(sdes.windows(2).all(|w| w[0].arrival <= w[1].arrival), "sorted by arrival");
        assert!(stats.within_wm + stats.beyond_wm > 0, "some items actually delayed");
    }
}
