//! Adversarial arrival-time generators for windowed-recognition testing.
//!
//! RTEC's working-memory semantics (§4.2 of the paper) are exercised hardest
//! by *when* SDEs arrive relative to the query grid, not by what they say:
//! late arrivals inside the working memory must be amended into later
//! windows, arrivals beyond the working memory must be irrevocably ignored,
//! and occurrence times landing exactly on a `Qi − WM` boundary must fall
//! outside the half-open window `(Qi − WM, Qi]`. This module generates those
//! schedules deterministically from a seed, plus the pure arithmetic
//! ([`QueryGrid`]) that predicts which events a correct engine can ever see.

use crate::stream::Sde;
use insight_rtec::dsl::{
    cmp, event_head, event_pat, fluent, fluent_pat, guard, happens, holds, not_holds, pat, term_ne,
    val, RuleSet, RuleSetBuilder,
};
use insight_rtec::event::{Event, FluentObs, Stamped};
use insight_rtec::rule::CmpOp;
use insight_rtec::term::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The query grid of a windowed recognition run: queries at
/// `first, first + step, …` up to `last`, each looking back `wm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryGrid {
    /// First query time.
    pub first: i64,
    /// Distance between consecutive queries (the window *step*/slide).
    pub step: i64,
    /// Working-memory size (window length).
    pub wm: i64,
    /// Last query time (inclusive; the grid stops at the largest
    /// `first + k·step ≤ last`).
    pub last: i64,
}

impl QueryGrid {
    /// All query times of the grid, in increasing order.
    pub fn queries(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut q = self.first;
        while q <= self.last {
            out.push(q);
            q += self.step;
        }
        out
    }

    /// Whether an item with the given occurrence and arrival time is inside
    /// the window evaluated at query `q`: it must have arrived, and its
    /// occurrence time must lie in the half-open working memory `(q − wm, q]`.
    pub fn visible_at(&self, time: i64, arrival: i64, q: i64) -> bool {
        arrival <= q && time > q - self.wm && time <= q
    }

    /// Whether any query of the grid up to `horizon` (inclusive) can see the
    /// item. Items for which this is `false` are *irrevocably lost* to a
    /// correct windowed engine — they arrived after their occurrence time
    /// slid out of the working memory.
    pub fn ever_visible_by(&self, time: i64, arrival: i64, horizon: i64) -> bool {
        let mut q = self.first;
        while q <= self.last && q <= horizon {
            if self.visible_at(time, arrival, q) {
                return true;
            }
            q += self.step;
        }
        false
    }

    /// [`QueryGrid::ever_visible_by`] over the whole grid.
    pub fn ever_visible(&self, time: i64, arrival: i64) -> bool {
        self.ever_visible_by(time, arrival, self.last)
    }

    /// The largest query time strictly before `time + wm` (the last query
    /// that could still admit an occurrence at `time`), if any.
    fn last_admitting_query(&self, time: i64) -> Option<i64> {
        let mut candidate = None;
        let mut q = self.first;
        while q <= self.last {
            if q < time + self.wm && time <= q {
                candidate = Some(q);
            }
            q += self.step;
        }
        candidate
    }
}

/// How an adversarially scheduled item relates to the query grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lateness {
    /// Arrives before the first query that covers its occurrence time.
    OnTime,
    /// Arrives one or more queries late, but while its occurrence time is
    /// still inside the working memory — must be amended in.
    WithinWm,
    /// Arrives after its occurrence time left the working memory — must be
    /// dropped by every query.
    BeyondWm,
    /// Occurrence time exactly on a `Qi − WM` boundary (excluded by the
    /// half-open window) or exactly one tick inside it (included).
    Boundary,
}

/// Sampling weights for the lateness classes (normalised internally).
#[derive(Debug, Clone, Copy)]
pub struct LatenessMix {
    /// Weight of [`Lateness::OnTime`].
    pub on_time: f64,
    /// Weight of [`Lateness::WithinWm`].
    pub within_wm: f64,
    /// Weight of [`Lateness::BeyondWm`].
    pub beyond_wm: f64,
    /// Weight of [`Lateness::Boundary`].
    pub boundary: f64,
}

impl Default for LatenessMix {
    fn default() -> LatenessMix {
        LatenessMix { on_time: 0.55, within_wm: 0.2, beyond_wm: 0.1, boundary: 0.15 }
    }
}

impl LatenessMix {
    fn sample(&self, rng: &mut StdRng) -> Lateness {
        let total = self.on_time + self.within_wm + self.beyond_wm + self.boundary;
        let mut x = rng.random::<f64>() * total.max(f64::MIN_POSITIVE);
        for (w, class) in [
            (self.on_time, Lateness::OnTime),
            (self.within_wm, Lateness::WithinWm),
            (self.beyond_wm, Lateness::BeyondWm),
            (self.boundary, Lateness::Boundary),
        ] {
            if x < w {
                return class;
            }
            x -= w;
        }
        Lateness::OnTime
    }
}

/// One adversarially scheduled time-point: occurrence, arrival, class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdePoint {
    /// Occurrence time.
    pub time: i64,
    /// Arrival time (`≥ time` except for `OnTime` points, which may arrive
    /// in the same instant they occur).
    pub arrival: i64,
    /// The scheduled lateness class.
    pub class: Lateness,
}

/// Generates `n` deterministic adversarial `(time, arrival)` points against
/// the grid. Every class is constructed, not sampled-and-hoped: `WithinWm`
/// points are guaranteed ever-visible, `BeyondWm` points are guaranteed
/// never-visible, and `Boundary` points alternate between `Qi − WM` exactly
/// (excluded) and `Qi − WM + 1` (the first included tick).
pub fn adversarial_points(
    seed: u64,
    n: usize,
    grid: &QueryGrid,
    mix: &LatenessMix,
) -> Vec<SdePoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xad5e_7a51);
    let queries = grid.queries();
    let mut out = Vec::with_capacity(n);
    let lo = grid.first - grid.wm + 1; // earliest occurrence the first window sees
    let hi = grid.last;
    let mut boundary_inside = false;
    for _ in 0..n {
        let class = mix.sample(&mut rng);
        let point = match class {
            Lateness::OnTime => {
                let time = rng.random_range(lo..=hi);
                let arrival = time + rng.random_range(0..grid.step.max(1));
                SdePoint { time, arrival, class }
            }
            Lateness::WithinWm => {
                let time = rng.random_range(lo..=hi);
                match grid.last_admitting_query(time) {
                    Some(qmax) if qmax > time => {
                        let arrival = rng.random_range(time + 1..=qmax);
                        SdePoint { time, arrival, class }
                    }
                    _ => SdePoint { time, arrival: time, class: Lateness::OnTime },
                }
            }
            Lateness::BeyondWm => {
                let time = rng.random_range(lo..=hi);
                // Arrive strictly after the last query that could admit the
                // occurrence; every remaining query's working memory starts
                // at or past `time`.
                let too_late = match grid.last_admitting_query(time) {
                    Some(qmax) => qmax + 1,
                    None => time + 1,
                };
                let arrival = too_late + rng.random_range(0..grid.step.max(1));
                SdePoint { time, arrival, class }
            }
            Lateness::Boundary => {
                let q = queries[rng.random_range(0..queries.len())];
                boundary_inside = !boundary_inside;
                let time = q - grid.wm + i64::from(boundary_inside);
                // Arrive in time for query `q` itself.
                let arrival = q - rng.random_range(0..grid.step.max(1));
                SdePoint { time, arrival: arrival.max(time), class }
            }
        };
        out.push(point);
    }
    out
}

/// Counters of one [`perturb_sdes`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerturbStats {
    /// Items left with their mediated arrival time.
    pub on_time: usize,
    /// Items delayed but still inside the working memory.
    pub within_wm: usize,
    /// Items delayed past the working memory (lost to recognition).
    pub beyond_wm: usize,
    /// Items duplicated (same occurrence *and* arrival).
    pub duplicates: usize,
}

/// Rewrites the arrival times of a scenario SDE trace adversarially:
/// a deterministic fraction of items is delayed within the working memory,
/// a fraction beyond it, and a fraction duplicated outright. The trace is
/// re-sorted by arrival afterwards (the convention every consumer of
/// `Scenario::sdes` relies on).
pub fn perturb_sdes(
    sdes: &mut Vec<Sde>,
    seed: u64,
    grid: &QueryGrid,
    mix: &LatenessMix,
    duplicate_rate: f64,
) -> PerturbStats {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5de_ad71);
    let mut stats = PerturbStats::default();
    let mut duplicated: Vec<Sde> = Vec::new();
    for sde in sdes.iter_mut() {
        match mix.sample(&mut rng) {
            Lateness::WithinWm => match grid.last_admitting_query(sde.time) {
                Some(qmax) if qmax > sde.time => {
                    sde.arrival = rng.random_range(sde.time + 1..=qmax);
                    stats.within_wm += 1;
                }
                _ => stats.on_time += 1,
            },
            Lateness::BeyondWm => {
                let too_late = match grid.last_admitting_query(sde.time) {
                    Some(qmax) => qmax + 1,
                    None => sde.time + 1,
                };
                sde.arrival = too_late + rng.random_range(0..grid.step.max(1));
                stats.beyond_wm += 1;
            }
            // `Boundary` needs control over occurrence times, which a
            // scenario trace fixes; treat it as on-time here.
            Lateness::OnTime | Lateness::Boundary => stats.on_time += 1,
        }
        if rng.random_bool(duplicate_rate.clamp(0.0, 1.0)) {
            duplicated.push(sde.clone());
            stats.duplicates += 1;
        }
    }
    sdes.extend(duplicated);
    sdes.sort_by_key(|s| s.arrival);
    stats
}

/// Knobs of the rule-set fuzzer ([`fuzz_ruleset`]).
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of input event kinds `fz_e{i}` that are actually emitted.
    pub max_input_events: usize,
    /// Maximum number of derived simple fluents `fz_f{i}`.
    pub max_fluents: usize,
    /// Maximum number of derived events `fz_d{k}`.
    pub max_derived_events: usize,
    /// Number of scheduled stream points.
    pub n_points: usize,
    /// Arrival lateness mix of the stream.
    pub mix: LatenessMix,
    /// How far into the past the time-valued `Aux` argument may point
    /// (uniform in `[time − aux_lookback, time]`).
    ///
    /// Non-pivotable `holdsAt Aux` conditions are evaluated at `Aux`; when
    /// `Aux` precedes the window start, a windowed engine answers from
    /// truncated knowledge while a full-history oracle's inertia chain
    /// reaches arbitrarily far back — a *designed* divergence (§4.2 loss),
    /// not a bug. Oracle-facing differentials must therefore use `0`
    /// (`Aux` lands on the anchor tick, always in-window, while the body
    /// stays **syntactically** non-pivotable and still exercises the
    /// forced full-re-evaluation path). Engine-vs-engine comparisons can
    /// use a real lookback: both sides share the same windowed knowledge.
    pub aux_lookback: i64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            max_input_events: 3,
            max_fluents: 4,
            max_derived_events: 2,
            n_points: 80,
            mix: LatenessMix::default(),
            aux_lookback: 0,
        }
    }
}

/// A fuzzed rule set plus the seeded stream that exercises it.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Human-readable label (embeds the structural draw).
    pub label: String,
    /// The seed that regenerates the whole case.
    pub seed: u64,
    /// The fuzzed, well-stratified rule set.
    pub rules: RuleSet,
    /// Stamped input events (adversarial arrivals).
    pub events: Vec<Stamped<Event>>,
    /// Stamped input fluent observations (co-timed with events).
    pub obs: Vec<Stamped<FluentObs>>,
}

const FUZZ_IDS: i64 = 4;

/// Generates a seeded, well-stratified random rule set together with an
/// adversarial stream over its input vocabulary.
///
/// Structural coverage, all drawn deterministically from the seed:
///
/// * input events `fz_e{i}(Id, Aux)` where `Aux` is a time-valued argument,
///   so a `holdsAt` condition at `Aux` makes the body **non-pivotable**
///   (its evaluation time is not bound by the rule's `happensAt` anchor);
/// * an optional input fluent `fz_g0(Id)` fed by point observations;
/// * derived simple fluents `fz_f{i}` whose initiation/termination bodies
///   mix pivotable `holdsAt`, negation-as-failure over lower strata,
///   non-pivotable `holdsAt Aux` and guards — `fz_f{i}` may depend on
///   `fz_f{j<i}`, giving multi-stratum fluent chains;
/// * derived events `fz_d{k}` anchored on input events or on `fz_d{k-1}`
///   (event-on-event chains spanning additional strata);
/// * one fluent `fz_unused` initiated only by a declared but never-emitted
///   event `fz_e_silent` — its stratum runs and derives nothing.
pub fn fuzz_ruleset(seed: u64, grid: &QueryGrid, cfg: &FuzzConfig) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf022_7e57);
    let ne = rng.random_range(2..=cfg.max_input_events.max(2));
    let nf = rng.random_range(2..=cfg.max_fluents.max(2));
    let nd = rng.random_range(1..=cfg.max_derived_events.max(1));
    let with_input_fluent = rng.random_bool(0.6);

    let mut b = RuleSetBuilder::new();
    for i in 0..ne {
        b.declare_event(&format!("fz_e{i}"), 2);
    }
    b.declare_event("fz_e_silent", 2);
    if with_input_fluent {
        b.declare_input_fluent("fz_g0", 1);
    }

    // A fresh (Id, Aux, T) variable triple per rule.
    let mut fresh = {
        let mut n = 0usize;
        move |b: &mut RuleSetBuilder| {
            n += 1;
            (b.var(&format!("Id{n}")), b.var(&format!("Aux{n}")), b.var(&format!("T{n}")))
        }
    };

    // Extra body conditions over strictly lower strata. `lower` holds the
    // derived fluents defined so far; `fz_g0` (if present) is always fair
    // game. Returns the number of conditions appended.
    let extra_conditions = |b: &mut RuleSetBuilder,
                            body: &mut Vec<insight_rtec::rule::BodyAtom>,
                            rng: &mut StdRng,
                            lower: &[String],
                            id: insight_rtec::pattern::VarId,
                            aux: insight_rtec::pattern::VarId,
                            t: insight_rtec::pattern::VarId| {
        let _ = b;
        let n = rng.random_range(0..=2usize);
        for _ in 0..n {
            let pick_fluent = |rng: &mut StdRng| -> Option<(String, bool)> {
                let mut pool: Vec<(String, bool)> =
                    lower.iter().map(|f| (f.clone(), false)).collect();
                if with_input_fluent {
                    pool.push(("fz_g0".to_string(), true));
                }
                if pool.is_empty() {
                    None
                } else {
                    Some(pool[rng.random_range(0..pool.len())].clone())
                }
            };
            match rng.random_range(0..4u32) {
                // Pivotable holds at the anchor time.
                0 => {
                    if let Some((f, _)) = pick_fluent(rng) {
                        body.push(holds(fluent_pat(&f, [pat(id)], val(true)), t));
                    }
                }
                // Negation-as-failure over a lower stratum; `Id` is
                // bound by the anchor, so the condition is safe.
                1 => {
                    if let Some((f, _)) = pick_fluent(rng) {
                        body.push(not_holds(fluent_pat(&f, [pat(id)], val(true)), t));
                    }
                }
                // Non-pivotable: evaluated at the time-valued argument
                // `Aux`, not at the anchor time. Restricted to derived
                // fluents, where inertia makes off-anchor queries
                // meaningful (input fluents are point observations).
                2 => {
                    if let Some(f) = lower.get(rng.random_range(0..lower.len().max(1))) {
                        body.push(holds(fluent_pat(f, [pat(id)], val(true)), aux));
                    }
                }
                // A guard over the bound `Id` argument.
                _ => {
                    if rng.random_bool(0.5) {
                        let c = rng.random_range(0..FUZZ_IDS);
                        let op = if rng.random_bool(0.5) { CmpOp::Gt } else { CmpOp::Le };
                        body.push(guard(cmp(id, op, c)));
                    } else {
                        body.push(guard(term_ne(id, Term::int(rng.random_range(0..FUZZ_IDS)))));
                    }
                }
            }
        }
    };

    let mut lower: Vec<String> = Vec::new();
    for i in 0..nf {
        let name = format!("fz_f{i}");
        let anchor = rng.random_range(0..ne);
        let (id, aux, t) = fresh(&mut b);
        let mut body = vec![happens(event_pat(&format!("fz_e{anchor}"), [pat(id), pat(aux)]), t)];
        extra_conditions(&mut b, &mut body, &mut rng, &lower, id, aux, t);
        b.initiated(fluent(&name, [pat(id)], val(true)), t, body);

        let anchor2 = rng.random_range(0..ne);
        let (id2, aux2, t2) = fresh(&mut b);
        let mut body2 =
            vec![happens(event_pat(&format!("fz_e{anchor2}"), [pat(id2), pat(aux2)]), t2)];
        if rng.random_bool(0.4) {
            extra_conditions(&mut b, &mut body2, &mut rng, &lower, id2, aux2, t2);
        }
        b.terminated(fluent(&name, [pat(id2)], val(true)), t2, body2);
        lower.push(name);
    }

    // The unused fluent: well-formed rules over an event nobody emits.
    let (idu, auxu, tu) = fresh(&mut b);
    let _ = auxu;
    b.initiated(
        fluent("fz_unused", [pat(idu)], val(true)),
        tu,
        [happens(event_pat("fz_e_silent", [pat(idu), pat(auxu)]), tu)],
    );

    for k in 0..nd {
        let name = format!("fz_d{k}");
        let (id, aux, t) = fresh(&mut b);
        let chain = k > 0 && rng.random_bool(0.5);
        let mut body = if chain {
            // Event-on-event chain: anchored on the previous derived event.
            vec![happens(event_pat(&format!("fz_d{}", k - 1), [pat(id)]), t)]
        } else {
            let anchor = rng.random_range(0..ne);
            vec![happens(event_pat(&format!("fz_e{anchor}"), [pat(id), pat(aux)]), t)]
        };
        // Derived events always carry at least one fluent condition so they
        // span strata.
        let f = &lower[rng.random_range(0..lower.len())];
        if rng.random_bool(0.7) {
            body.push(holds(fluent_pat(f, [pat(id)], val(true)), t));
        } else {
            body.push(not_holds(fluent_pat(f, [pat(id)], val(true)), t));
        }
        b.derived_event(event_head(&name, [pat(id)]), t, body);
    }

    let rules = b.build().expect("fuzzed rule set must be well-formed");

    // The stream: adversarial arrivals over the emitted vocabulary. `Aux`
    // points up to `aux_lookback` into the past (see [`FuzzConfig`] for why
    // oracle-facing runs keep it at 0).
    let points = adversarial_points(seed ^ 0xfeed, cfg.n_points, grid, &cfg.mix);
    let mut events = Vec::with_capacity(points.len());
    let mut obs = Vec::new();
    for p in &points {
        let kind = format!("fz_e{}", rng.random_range(0..ne));
        let id = Term::int(rng.random_range(0..FUZZ_IDS));
        let aux = Term::int((p.time - rng.random_range(0..cfg.aux_lookback.max(0) + 1)).max(0));
        events.push(Stamped::arriving_at(
            Event::new(kind.as_str(), [id.clone(), aux], p.time),
            p.arrival,
        ));
        if with_input_fluent && rng.random_bool(0.3) {
            obs.push(Stamped::arriving_at(
                FluentObs::new("fz_g0", [id], Term::truth(), p.time),
                p.arrival,
            ));
        }
    }

    FuzzCase {
        label: format!("fuzz-e{ne}-f{nf}-d{nd}{}", if with_input_fluent { "-g" } else { "" }),
        seed,
        rules,
        events,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> QueryGrid {
        QueryGrid { first: 100, step: 50, wm: 100, last: 400 }
    }

    #[test]
    fn grid_queries_and_visibility() {
        let g = grid();
        assert_eq!(g.queries(), vec![100, 150, 200, 250, 300, 350, 400]);
        // Half-open window: the boundary tick is excluded, the next included.
        assert!(!g.visible_at(0, 50, 100));
        assert!(g.visible_at(1, 50, 100));
        // Not yet arrived.
        assert!(!g.visible_at(90, 120, 100));
        assert!(g.visible_at(90, 120, 150));
    }

    #[test]
    fn classes_honour_their_contracts() {
        let g = grid();
        let points = adversarial_points(7, 500, &g, &LatenessMix::default());
        assert_eq!(points.len(), 500);
        let mut seen = [0usize; 4];
        for p in &points {
            match p.class {
                Lateness::OnTime => seen[0] += 1,
                Lateness::WithinWm => {
                    seen[1] += 1;
                    assert!(p.arrival > p.time, "within-wm must be late");
                    assert!(g.ever_visible(p.time, p.arrival), "within-wm must stay visible");
                }
                Lateness::BeyondWm => {
                    seen[2] += 1;
                    assert!(!g.ever_visible(p.time, p.arrival), "beyond-wm must be lost: {p:?}");
                }
                Lateness::Boundary => seen[3] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 0), "all classes generated: {seen:?}");
    }

    #[test]
    fn boundary_points_split_exactly_on_the_edge() {
        let g = grid();
        let points = adversarial_points(11, 400, &g, &LatenessMix::default());
        let boundary: Vec<_> = points.iter().filter(|p| p.class == Lateness::Boundary).collect();
        assert!(!boundary.is_empty());
        let excluded =
            boundary.iter().filter(|p| g.queries().iter().any(|&q| p.time == q - g.wm)).count();
        let included =
            boundary.iter().filter(|p| g.queries().iter().any(|&q| p.time == q - g.wm + 1)).count();
        assert!(excluded > 0 && included > 0, "both edge flavours present");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = grid();
        let a = adversarial_points(99, 200, &g, &LatenessMix::default());
        let b = adversarial_points(99, 200, &g, &LatenessMix::default());
        assert_eq!(a, b);
        let c = adversarial_points(100, 200, &g, &LatenessMix::default());
        assert_ne!(a, c);
    }

    #[test]
    fn fuzzed_rule_sets_are_deterministic_and_varied() {
        let g = grid();
        let cfg = FuzzConfig::default();
        let a = fuzz_ruleset(3, &g, &cfg);
        let b = fuzz_ruleset(3, &g, &cfg);
        assert_eq!(a.label, b.label);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.rules.strata().len(), b.rules.strata().len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!((x.arrival, &x.item), (y.arrival, &y.item));
        }
        // Different seeds draw different structure somewhere in a family.
        let labels: std::collections::HashSet<String> =
            (0..16).map(|s| fuzz_ruleset(s, &g, &cfg).label).collect();
        assert!(labels.len() > 1, "structural variety across seeds: {labels:?}");
    }

    #[test]
    fn fuzzed_rule_sets_cover_the_advertised_structure() {
        use insight_rtec::rule::BodyAtom;
        let g = grid();
        let cfg = FuzzConfig::default();
        let mut saw_negation = false;
        let mut saw_non_pivot = false;
        let mut saw_chain = false;
        for seed in 0..32 {
            let case = fuzz_ruleset(seed, &g, &cfg);
            assert!(case.rules.strata().len() >= 3, "fluents + unused + derived events");
            for r in case.rules.sf_rules() {
                let anchor_time = r.time;
                for a in &r.body {
                    if let BodyAtom::Holds { negated, time, .. } = a {
                        saw_negation |= *negated;
                        saw_non_pivot |= *time != anchor_time;
                    }
                }
            }
            for r in case.rules.ev_rules() {
                if let Some(BodyAtom::Happens { pat, .. }) = r.body.first() {
                    saw_chain |= pat.kind.as_str().starts_with("fz_d");
                }
            }
            // The unused fluent is always defined and never emitted.
            assert!(case.rules.derived_fluents().iter().any(|f| f.as_str() == "fz_unused"));
            assert!(case.events.iter().all(|e| e.item.kind.as_str() != "fz_e_silent"));
        }
        assert!(saw_negation, "some fuzzed body uses negation");
        assert!(saw_non_pivot, "some fuzzed body is non-pivotable");
        assert!(saw_chain, "some derived event chains on a derived event");
    }

    #[test]
    fn perturbation_keeps_occurrences_and_sorts_arrivals() {
        use crate::scenario::{Scenario, ScenarioConfig};
        let scenario = Scenario::generate(ScenarioConfig::small(600, 3)).unwrap();
        let mut sdes = scenario.sdes.clone();
        let g = QueryGrid { first: 300, step: 300, wm: 600, last: 600 };
        let before: Vec<i64> = {
            let mut t: Vec<i64> = sdes.iter().map(|s| s.time).collect();
            t.sort_unstable();
            t
        };
        let stats = perturb_sdes(&mut sdes, 5, &g, &LatenessMix::default(), 0.1);
        assert_eq!(sdes.len(), before.len() + stats.duplicates);
        assert!(sdes.windows(2).all(|w| w[0].arrival <= w[1].arrival), "sorted by arrival");
        assert!(stats.within_wm + stats.beyond_wm > 0, "some items actually delayed");
    }
}
