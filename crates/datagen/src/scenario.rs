//! Scenario presets and the end-to-end generator.
//!
//! A [`Scenario`] bundles everything the experiments need: the street
//! network, the ground-truth congestion field, the SCATS deployment, the bus
//! fleet, and the merged, mediator-processed SDE trace sorted by arrival
//! time. The `dublin_jan_2013` preset mirrors the paper's dataset scale
//! (942 buses, 966 SCATS sensors, 20–30 s / 6 min cadences, ≈21 SDEs/s
//! aggregate — 12.5 K SDEs per 10 minutes as in Figure 4).

use crate::buses::{BusFleet, FleetConfig};
use crate::congestion::{CongestionConfig, CongestionField};
use crate::error::DatagenError;
use crate::mediator::{mediate, MediatorConfig};
use crate::network::{NetworkConfig, StreetNetwork};
use crate::scats::ScatsDeployment;
use crate::stream::{Sde, SdeBody};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Complete configuration of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed; every sub-generator derives from it.
    pub seed: u64,
    /// Scenario duration in seconds.
    pub duration: i64,
    /// Seconds-of-day at which the scenario starts (7 h puts the morning
    /// rush inside a 2–3 h run).
    pub start_of_day: i64,
    /// Street network parameters.
    pub network: NetworkConfig,
    /// Congestion-field parameters.
    pub congestion: CongestionConfig,
    /// Fleet parameters.
    pub fleet: FleetConfig,
    /// Number of SCATS sensors.
    pub n_scats_sensors: usize,
    /// SCATS measurement noise (multiplicative half-width).
    pub scats_noise: f64,
    /// SCATS reporting period in seconds (the paper's is 6 minutes).
    pub scats_period: i64,
    /// Mediator behaviour.
    pub mediator: MediatorConfig,
}

impl ScenarioConfig {
    /// The paper-scale preset: 942 buses, 966 sensors, city-sized network.
    pub fn dublin_jan_2013(duration: i64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            duration,
            start_of_day: 7 * 3600,
            network: NetworkConfig::dublin_default(),
            congestion: CongestionConfig::default_for(duration),
            fleet: FleetConfig {
                n_buses: 942,
                n_lines: 60,
                faulty_fraction: 0.08,
                active_fraction: 0.48,
                duration,
                period_range: (20, 30),
            },
            n_scats_sensors: 966,
            scats_noise: 0.04,
            scats_period: 360,
            mediator: MediatorConfig::default_lossy(),
        }
    }

    /// A small, fast preset for unit/integration tests.
    pub fn small(duration: i64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            duration,
            start_of_day: 8 * 3600,
            network: NetworkConfig {
                bbox: (-6.32, 53.32, -6.20, 53.38),
                nx: 10,
                ny: 8,
                jitter: 0.3,
                edge_drop: 0.2,
            },
            congestion: CongestionConfig::default_for(duration),
            fleet: FleetConfig {
                n_buses: 24,
                n_lines: 6,
                faulty_fraction: 0.15,
                active_fraction: 0.9,
                duration,
                period_range: (20, 30),
            },
            n_scats_sensors: 40,
            scats_noise: 0.03,
            scats_period: 360,
            mediator: MediatorConfig::transparent(),
        }
    }
}

/// A fully generated scenario.
pub struct Scenario {
    /// The configuration it was generated from.
    pub config: ScenarioConfig,
    /// The street network.
    pub network: StreetNetwork,
    /// The ground-truth congestion field.
    pub field: CongestionField,
    /// The SCATS deployment.
    pub scats: ScatsDeployment,
    /// The bus fleet.
    pub fleet: BusFleet,
    /// All SDEs, mediator-processed, sorted by arrival time. Occurrence
    /// times are absolute seconds-of-day (`start_of_day ..
    /// start_of_day + duration`).
    pub sdes: Vec<Sde>,
}

impl Scenario {
    /// Generates the full scenario.
    pub fn generate(config: ScenarioConfig) -> Result<Scenario, DatagenError> {
        let network = StreetNetwork::generate(&config.network, config.seed)?;
        // The field works in absolute seconds-of-day; incidents are
        // scattered inside the observed window.
        let mut cc = config.congestion.clone();
        cc.incident_offset = config.start_of_day;
        cc.duration = config.duration;
        let field = CongestionField::generate(&network, cc, config.seed);
        let scats = ScatsDeployment::place(
            &network,
            config.n_scats_sensors,
            config.scats_noise,
            config.seed,
        )?;
        let mut fleet_cfg = config.fleet.clone();
        fleet_cfg.duration = config.duration;
        let fleet = BusFleet::generate(&network, &fleet_cfg, config.seed)?;

        let t0 = config.start_of_day;
        let mut records: Vec<Sde> = Vec::new();

        // Bus probe records (relative simulation times shifted to absolute).
        for (t, r) in fleet.emit_all(&network, &field, config.duration, config.seed) {
            // emit_all samples the field at relative times; re-sample the
            // congestion-dependent fields at absolute times for consistency
            // of flag and field: simplest is to shift time only, keeping the
            // record — the field is also queried at absolute times below for
            // SCATS, so shift the bus clock too by regenerating the flag.
            let mut r = r;
            if let Some(j) = network.nearest_junction(r.lon, r.lat) {
                let truth = field.is_congested(j, t + t0);
                let faulty =
                    fleet.buses.iter().find(|b| b.id == r.bus).map(|b| b.faulty).unwrap_or(false);
                r.congestion = if faulty { !truth } else { truth };
            }
            records.push(Sde::punctual(t + t0, SdeBody::Bus(r)));
        }

        // SCATS readings every `scats_period`, phase-staggered per sensor to
        // avoid a thundering herd on exact multiples. One tick buffer is
        // reused across the sweep.
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ca7_0123);
        let mut tick = Vec::new();
        let mut t = t0 + config.scats_period;
        while t <= t0 + config.duration {
            tick.clear();
            scats.readings_into(&network, &field, t, &mut rng, &mut tick);
            records.extend(tick.drain(..).map(|rec| Sde::punctual(t, SdeBody::Scats(rec))));
            t += config.scats_period;
        }

        records.sort_by_key(|s| s.time);
        let sdes = mediate(records, &config.mediator, config.seed)?;

        Ok(Scenario { config, network, field, scats, fleet, sdes })
    }

    /// SDEs with occurrence time in `(from, to]`.
    pub fn sdes_between(&self, from: i64, to: i64) -> impl Iterator<Item = &Sde> {
        self.sdes.iter().filter(move |s| s.time > from && s.time <= to)
    }

    /// The SDE trace as arrival-aligned ingest batches of at most `max`
    /// records (see [`crate::stream::arrival_batches`]); a batched consumer
    /// sees exactly the per-item trace in fewer hand-offs.
    pub fn sde_batches(&self, max: usize) -> crate::stream::ArrivalBatches<'_> {
        crate::stream::arrival_batches(&self.sdes, max)
    }

    /// Ground truth: is the junction nearest to `(lon, lat)` congested at `t`?
    pub fn truth_congested(&self, lon: f64, lat: f64, t: i64) -> bool {
        self.network
            .nearest_junction(lon, lat)
            .map(|j| self.field.is_congested(j, t))
            .unwrap_or(false)
    }

    /// Aggregate SDE rate (records per second of scenario time).
    pub fn sde_rate(&self) -> f64 {
        self.sdes.len() as f64 / self.config.duration.max(1) as f64
    }

    /// The scenario's absolute time window `(start, end]`.
    pub fn window(&self) -> (i64, i64) {
        (self.config.start_of_day, self.config.start_of_day + self.config.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_generates() {
        let s = Scenario::generate(ScenarioConfig::small(1800, 7)).unwrap();
        assert!(!s.sdes.is_empty());
        assert_eq!(s.scats.len(), 40);
        assert_eq!(s.fleet.buses.len(), 24);
        // Sorted by arrival.
        assert!(s.sdes.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Occurrence times inside the window.
        let (a, b) = s.window();
        for sde in &s.sdes {
            assert!(sde.time > a - 60 && sde.time <= b, "time {} in ({a}, {b}]", sde.time);
        }
        // Both kinds of SDE present.
        assert!(s.sdes.iter().any(|x| x.is_bus()));
        assert!(s.sdes.iter().any(|x| !x.is_bus()));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Scenario::generate(ScenarioConfig::small(900, 3)).unwrap();
        let b = Scenario::generate(ScenarioConfig::small(900, 3)).unwrap();
        assert_eq!(a.sdes, b.sdes);
        let c = Scenario::generate(ScenarioConfig::small(900, 4)).unwrap();
        assert_ne!(a.sdes, c.sdes);
    }

    #[test]
    fn sdes_between_filters() {
        let s = Scenario::generate(ScenarioConfig::small(1800, 7)).unwrap();
        let (t0, _) = s.window();
        let cnt = s.sdes_between(t0, t0 + 600).count();
        assert!(cnt > 0);
        assert!(cnt < s.sdes.len());
        assert_eq!(s.sdes_between(0, 1).count(), 0);
    }

    #[test]
    #[ignore = "paper-scale generation; run explicitly or via the bench harness"]
    fn dublin_preset_matches_paper_rate() {
        // Figure 4's axis: 10 min of working memory ≈ 12,500 SDEs, i.e.
        // ≈ 21 SDEs/s.
        let s = Scenario::generate(ScenarioConfig::dublin_jan_2013(1200, 1)).unwrap();
        let rate = s.sde_rate();
        assert!(
            (15.0..28.0).contains(&rate),
            "aggregate SDE rate should be near the paper's ~21/s, got {rate}"
        );
    }
}
