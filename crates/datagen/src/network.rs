//! Procedural street-network generation (the OSM substitute of Fig. 7–8).
//!
//! The generator lays a jittered grid of junctions over the Dublin bounding
//! box and connects them 4-neighbourly, then sparsifies: a random spanning
//! tree is always kept (so the network stays connected, as a real street
//! network is) and each remaining edge survives with probability
//! `1 − edge_drop`. The result has the properties the downstream components
//! actually consume — a connected planar-ish graph with low average degree
//! and planar coordinates — which is what makes it a valid stand-in for the
//! OSM extract (DESIGN.md §3).

use crate::error::DatagenError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Approximate metres per degree of latitude.
pub const METRES_PER_DEG_LAT: f64 = 111_320.0;

/// Equirectangular distance in metres between two lon/lat points — accurate
/// to well under a percent at city scale.
pub fn distance_m(a: (f64, f64), b: (f64, f64)) -> f64 {
    let mean_lat = ((a.1 + b.1) / 2.0).to_radians();
    let dx = (a.0 - b.0) * mean_lat.cos() * METRES_PER_DEG_LAT;
    let dy = (a.1 - b.1) * METRES_PER_DEG_LAT;
    (dx * dx + dy * dy).sqrt()
}

/// Configuration of the network generator.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Bounding box `(lon_min, lat_min, lon_max, lat_max)`.
    pub bbox: (f64, f64, f64, f64),
    /// Grid junctions along longitude.
    pub nx: usize,
    /// Grid junctions along latitude.
    pub ny: usize,
    /// Coordinate jitter as a fraction of the cell size (0 = regular grid).
    pub jitter: f64,
    /// Fraction of non-spanning-tree edges removed.
    pub edge_drop: f64,
}

impl NetworkConfig {
    /// The Dublin-like default: ~1000 junctions inside the city bounding box.
    pub fn dublin_default() -> NetworkConfig {
        NetworkConfig {
            bbox: (-6.40, 53.28, -6.10, 53.42),
            nx: 36,
            ny: 28,
            jitter: 0.35,
            edge_drop: 0.18,
        }
    }

    fn validate(&self) -> Result<(), DatagenError> {
        if self.nx < 2 || self.ny < 2 {
            return Err(DatagenError::InvalidConfig {
                name: "nx/ny",
                detail: format!("grid must be at least 2×2, got {}×{}", self.nx, self.ny),
            });
        }
        if !(0.0..=0.49).contains(&self.jitter) {
            return Err(DatagenError::InvalidConfig {
                name: "jitter",
                detail: format!("must be in [0, 0.49], got {}", self.jitter),
            });
        }
        if !(0.0..=1.0).contains(&self.edge_drop) {
            return Err(DatagenError::InvalidConfig {
                name: "edge_drop",
                detail: format!("must be in [0, 1], got {}", self.edge_drop),
            });
        }
        let (x0, y0, x1, y1) = self.bbox;
        if x1 <= x0 || y1 <= y0 {
            return Err(DatagenError::InvalidConfig {
                name: "bbox",
                detail: "empty bounding box".into(),
            });
        }
        Ok(())
    }
}

/// A generated street network: junctions with lon/lat coordinates, street
/// segments as undirected edges.
#[derive(Debug, Clone)]
pub struct StreetNetwork {
    junctions: Vec<(f64, f64)>,
    segments: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
    bbox: (f64, f64, f64, f64),
}

impl StreetNetwork {
    /// Generates a network from the configuration, deterministically under
    /// `seed`.
    pub fn generate(config: &NetworkConfig, seed: u64) -> Result<StreetNetwork, DatagenError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed);
        let (x0, y0, x1, y1) = config.bbox;
        let cell_x = (x1 - x0) / (config.nx - 1) as f64;
        let cell_y = (y1 - y0) / (config.ny - 1) as f64;

        let n = config.nx * config.ny;
        let mut junctions = Vec::with_capacity(n);
        for gy in 0..config.ny {
            for gx in 0..config.nx {
                let jx = rng.random_range(-config.jitter..=config.jitter) * cell_x;
                let jy = rng.random_range(-config.jitter..=config.jitter) * cell_y;
                junctions.push((x0 + gx as f64 * cell_x + jx, y0 + gy as f64 * cell_y + jy));
            }
        }

        // Full grid edges.
        let idx = |gx: usize, gy: usize| gy * config.nx + gx;
        let mut all_edges = Vec::new();
        for gy in 0..config.ny {
            for gx in 0..config.nx {
                if gx + 1 < config.nx {
                    all_edges.push((idx(gx, gy), idx(gx + 1, gy)));
                }
                if gy + 1 < config.ny {
                    all_edges.push((idx(gx, gy), idx(gx, gy + 1)));
                }
            }
        }

        // Random spanning tree (randomised BFS) — kept unconditionally.
        let mut adjacency_full: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &all_edges {
            adjacency_full[a].push(b);
            adjacency_full[b].push(a);
        }
        let mut in_tree = vec![false; n];
        let mut tree_edges: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
        let start = rng.random_range(0..n);
        in_tree[start] = true;
        let mut frontier = vec![start];
        while let Some(&v) = frontier.last() {
            let mut nbrs: Vec<usize> =
                adjacency_full[v].iter().copied().filter(|&w| !in_tree[w]).collect();
            if nbrs.is_empty() {
                frontier.pop();
                continue;
            }
            nbrs.shuffle(&mut rng);
            let w = nbrs[0];
            in_tree[w] = true;
            tree_edges.push((v.min(w), v.max(w)));
            frontier.push(w);
        }

        let tree_set: std::collections::HashSet<(usize, usize)> =
            tree_edges.iter().copied().collect();
        let mut segments = tree_edges;
        for &(a, b) in &all_edges {
            let key = (a.min(b), a.max(b));
            if tree_set.contains(&key) {
                continue;
            }
            if rng.random::<f64>() >= config.edge_drop {
                segments.push(key);
            }
        }
        segments.sort_unstable();
        segments.dedup();

        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &segments {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }

        let net = StreetNetwork { junctions, segments, adjacency, bbox: config.bbox };
        if !net.is_connected() {
            return Err(DatagenError::DegenerateNetwork {
                detail: "generated network is not connected (internal invariant)".into(),
            });
        }
        Ok(net)
    }

    /// Number of junctions.
    pub fn len(&self) -> usize {
        self.junctions.len()
    }

    /// Whether the network has no junctions.
    pub fn is_empty(&self) -> bool {
        self.junctions.is_empty()
    }

    /// The street segments as undirected `(min, max)` index pairs.
    pub fn segments(&self) -> &[(usize, usize)] {
        &self.segments
    }

    /// Junction coordinates `(lon, lat)`.
    pub fn coords(&self, v: usize) -> (f64, f64) {
        self.junctions[v]
    }

    /// All junction coordinates.
    pub fn junctions(&self) -> &[(f64, f64)] {
        &self.junctions
    }

    /// Neighbours of a junction.
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// The generator's bounding box.
    pub fn bbox(&self) -> (f64, f64, f64, f64) {
        self.bbox
    }

    /// Whether the network is connected.
    pub fn is_connected(&self) -> bool {
        if self.junctions.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == self.len()
    }

    /// Junction nearest to a coordinate.
    pub fn nearest_junction(&self, lon: f64, lat: f64) -> Option<usize> {
        (0..self.len()).min_by(|&a, &b| {
            distance_m(self.junctions[a], (lon, lat))
                .total_cmp(&distance_m(self.junctions[b], (lon, lat)))
        })
    }

    /// Unweighted shortest path (BFS) between two junctions, inclusive of
    /// both endpoints. `None` if unreachable.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from >= self.len() || to >= self.len() {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.len()];
        let mut queue = VecDeque::from([from]);
        prev[from] = from;
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v] {
                if prev[w] == usize::MAX {
                    prev[w] = v;
                    if w == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Length of a path in metres.
    pub fn path_length_m(&self, path: &[usize]) -> f64 {
        path.windows(2).map(|w| distance_m(self.junctions[w[0]], self.junctions[w[1]])).sum()
    }

    /// Average junction degree.
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.segments.len() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NetworkConfig {
        NetworkConfig {
            bbox: (-6.30, 53.33, -6.22, 53.37),
            nx: 8,
            ny: 6,
            jitter: 0.3,
            edge_drop: 0.3,
        }
    }

    #[test]
    fn generates_connected_network() {
        let net = StreetNetwork::generate(&small_config(), 1).unwrap();
        assert_eq!(net.len(), 48);
        assert!(net.is_connected());
        assert!(net.segments().len() >= net.len() - 1, "at least a spanning tree");
        // degree stays street-like (< 4 on average after sparsification)
        assert!(net.average_degree() <= 4.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = StreetNetwork::generate(&small_config(), 7).unwrap();
        let b = StreetNetwork::generate(&small_config(), 7).unwrap();
        assert_eq!(a.junctions(), b.junctions());
        assert_eq!(a.segments(), b.segments());
        let c = StreetNetwork::generate(&small_config(), 8).unwrap();
        assert_ne!(a.junctions(), c.junctions());
    }

    #[test]
    fn junctions_stay_near_bbox() {
        let cfg = small_config();
        let net = StreetNetwork::generate(&cfg, 3).unwrap();
        let (x0, y0, x1, y1) = cfg.bbox;
        let cell_x = (x1 - x0) / (cfg.nx - 1) as f64;
        let cell_y = (y1 - y0) / (cfg.ny - 1) as f64;
        for &(lon, lat) in net.junctions() {
            assert!(lon >= x0 - cell_x && lon <= x1 + cell_x);
            assert!(lat >= y0 - cell_y && lat <= y1 + cell_y);
        }
    }

    #[test]
    fn dublin_default_scale() {
        let net = StreetNetwork::generate(&NetworkConfig::dublin_default(), 42).unwrap();
        assert!(net.len() >= 900, "Dublin-scale junction count, got {}", net.len());
        assert!(net.is_connected());
    }

    #[test]
    fn config_validation() {
        let mut cfg = small_config();
        cfg.nx = 1;
        assert!(StreetNetwork::generate(&cfg, 1).is_err());
        let mut cfg = small_config();
        cfg.jitter = 0.8;
        assert!(StreetNetwork::generate(&cfg, 1).is_err());
        let mut cfg = small_config();
        cfg.edge_drop = 1.5;
        assert!(StreetNetwork::generate(&cfg, 1).is_err());
        let mut cfg = small_config();
        cfg.bbox = (0.0, 0.0, -1.0, 1.0);
        assert!(StreetNetwork::generate(&cfg, 1).is_err());
    }

    #[test]
    fn shortest_paths_are_paths() {
        let net = StreetNetwork::generate(&small_config(), 5).unwrap();
        let path = net.shortest_path(0, net.len() - 1).unwrap();
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), net.len() - 1);
        for w in path.windows(2) {
            assert!(net.neighbours(w[0]).contains(&w[1]), "consecutive junctions adjacent");
        }
        assert!(net.path_length_m(&path) > 0.0);
        assert_eq!(net.shortest_path(0, 0), Some(vec![0]));
        assert_eq!(net.shortest_path(0, 10_000), None);
    }

    #[test]
    fn nearest_junction_finds_closest() {
        let net = StreetNetwork::generate(&small_config(), 5).unwrap();
        let (lon, lat) = net.coords(17);
        assert_eq!(net.nearest_junction(lon, lat), Some(17));
    }

    #[test]
    fn distance_m_sanity() {
        // One degree of latitude ≈ 111 km.
        let d = distance_m((-6.26, 53.0), (-6.26, 54.0));
        assert!((d - 111_320.0).abs() < 100.0);
        // Longitude shrinks with cos(lat).
        let dlon = distance_m((-6.0, 53.35), (-5.0, 53.35));
        assert!(dlon < d && dlon > d * 0.5);
        assert_eq!(distance_m((1.0, 2.0), (1.0, 2.0)), 0.0);
    }
}
