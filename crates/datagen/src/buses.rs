//! The bus fleet: lines, routes, shifts and probe emissions.
//!
//! 942 buses run on a set of lines whose routes are shortest paths between
//! periphery terminals (passing near the centre, as Dublin's radial lines
//! do). A bus emits one probe record every 20–30 seconds while its shift is
//! active, carrying position, accumulated schedule delay and a congestion
//! flag. Honest buses report the ground-truth congestion at their current
//! location; *faulty* buses report the inverted flag — the persistent
//! mis-reporting the `noisy(Bus)` rule-sets (4)/(5) of the paper exist to
//! detect.

use crate::congestion::CongestionField;
use crate::error::DatagenError;
use crate::network::{distance_m, StreetNetwork};
use crate::stream::BusRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nominal (free-flow) bus speed in metres/second.
pub const NOMINAL_SPEED_MS: f64 = 9.0;

/// A bus line: a route through the street network.
#[derive(Debug, Clone, PartialEq)]
pub struct BusLine {
    /// Line id.
    pub id: u32,
    /// Junction sequence of the route.
    pub route: Vec<usize>,
    /// Cumulative distance (m) along the route, same length as `route`.
    pub cum_m: Vec<f64>,
}

impl BusLine {
    /// Total route length in metres.
    pub fn length_m(&self) -> f64 {
        *self.cum_m.last().unwrap_or(&0.0)
    }

    /// Position (lon, lat) and nearest route junction at distance `d` along
    /// the route (clamped to the ends).
    pub fn position_at(&self, network: &StreetNetwork, d: f64) -> ((f64, f64), usize) {
        let d = d.clamp(0.0, self.length_m());
        // Find the segment containing d.
        let i = match self.cum_m.partition_point(|&c| c <= d) {
            0 => 0,
            p => p - 1,
        };
        if i + 1 >= self.route.len() {
            let v = self.route[self.route.len() - 1];
            return (network.coords(v), v);
        }
        let seg_start = self.cum_m[i];
        let seg_len = self.cum_m[i + 1] - seg_start;
        let frac = if seg_len > 0.0 { (d - seg_start) / seg_len } else { 0.0 };
        let (ax, ay) = network.coords(self.route[i]);
        let (bx, by) = network.coords(self.route[i + 1]);
        let pos = (ax + (bx - ax) * frac, ay + (by - ay) * frac);
        let nearest = if frac < 0.5 { self.route[i] } else { self.route[i + 1] };
        (pos, nearest)
    }
}

/// One vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct Bus {
    /// Vehicle id.
    pub id: u32,
    /// Line the bus serves.
    pub line: u32,
    /// Operator id.
    pub operator: u32,
    /// Whether this bus mis-reports congestion (inverted flag).
    pub faulty: bool,
    /// Emission period in seconds (uniform 20–30 per the paper).
    pub period_s: i64,
    /// Active shift `[start, start + len)`, wrapping around the scenario
    /// end so the number of concurrently active buses is stationary.
    pub shift: (i64, i64),
    /// Starting distance along the route (m).
    pub start_offset_m: f64,
    /// Initial direction: +1 forward, −1 backward.
    pub initial_direction: i8,
}

impl Bus {
    /// The active intervals `[from, to)` of this bus within a scenario of
    /// the given duration, after unwrapping a shift that crosses the end.
    pub fn active_segments(&self, duration: i64) -> Vec<(i64, i64)> {
        let (start, end) = self.shift;
        if end <= duration {
            vec![(start, end.min(duration))]
        } else {
            let mut v = vec![(start, duration)];
            let tail = (end - duration).min(start);
            if tail > 0 {
                v.push((0, tail));
            }
            v
        }
    }
}

/// The generated fleet.
#[derive(Debug, Clone)]
pub struct BusFleet {
    /// The lines.
    pub lines: Vec<BusLine>,
    /// The vehicles.
    pub buses: Vec<Bus>,
}

/// Fleet generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Total vehicles (the paper's dataset has 942).
    pub n_buses: usize,
    /// Number of lines routes are generated for.
    pub n_lines: usize,
    /// Fraction of buses whose congestion flag is inverted.
    pub faulty_fraction: f64,
    /// Fraction of the scenario each bus is actively emitting (shifts are
    /// placed uniformly; ~0.5 reproduces the paper's aggregate SDE rate).
    pub active_fraction: f64,
    /// Scenario duration in seconds.
    pub duration: i64,
    /// Emission period range (seconds).
    pub period_range: (i64, i64),
}

impl FleetConfig {
    fn validate(&self) -> Result<(), DatagenError> {
        if self.n_buses == 0 || self.n_lines == 0 {
            return Err(DatagenError::InvalidConfig {
                name: "n_buses/n_lines",
                detail: "must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.faulty_fraction) {
            return Err(DatagenError::InvalidConfig {
                name: "faulty_fraction",
                detail: format!("must be in [0,1], got {}", self.faulty_fraction),
            });
        }
        if !(0.0 < self.active_fraction && self.active_fraction <= 1.0) {
            return Err(DatagenError::InvalidConfig {
                name: "active_fraction",
                detail: format!("must be in (0,1], got {}", self.active_fraction),
            });
        }
        if self.period_range.0 <= 0 || self.period_range.1 < self.period_range.0 {
            return Err(DatagenError::InvalidConfig {
                name: "period_range",
                detail: format!("invalid range {:?}", self.period_range),
            });
        }
        if self.duration <= 0 {
            return Err(DatagenError::InvalidConfig {
                name: "duration",
                detail: "must be positive".into(),
            });
        }
        Ok(())
    }
}

impl BusFleet {
    /// Generates lines and vehicles, deterministically under `seed`.
    pub fn generate(
        network: &StreetNetwork,
        config: &FleetConfig,
        seed: u64,
    ) -> Result<BusFleet, DatagenError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb005_b005);

        // Routes: shortest paths between far-apart junction pairs.
        let mut lines = Vec::with_capacity(config.n_lines);
        let mut attempts = 0;
        while lines.len() < config.n_lines {
            attempts += 1;
            if attempts > config.n_lines * 50 {
                return Err(DatagenError::DegenerateNetwork {
                    detail: "could not find enough long routes".into(),
                });
            }
            let a = rng.random_range(0..network.len());
            let b = rng.random_range(0..network.len());
            if a == b {
                continue;
            }
            // Terminals should be reasonably far apart (quarter of the bbox
            // diagonal) so routes cross the city.
            let (x0, y0, x1, y1) = network.bbox();
            let diag = distance_m((x0, y0), (x1, y1));
            if distance_m(network.coords(a), network.coords(b)) < diag / 4.0 {
                continue;
            }
            let Some(route) = network.shortest_path(a, b) else { continue };
            if route.len() < 5 {
                continue;
            }
            let mut cum = Vec::with_capacity(route.len());
            let mut acc = 0.0;
            cum.push(0.0);
            for w in route.windows(2) {
                acc += distance_m(network.coords(w[0]), network.coords(w[1]));
                cum.push(acc);
            }
            lines.push(BusLine { id: lines.len() as u32, route, cum_m: cum });
        }

        // Vehicles.
        let shift_len = ((config.duration as f64) * config.active_fraction) as i64;
        let buses = (0..config.n_buses)
            .map(|i| {
                let line = &lines[i % lines.len()];
                // Uniform circular phase: shifts wrap around the scenario
                // end, keeping the active fleet size stationary over time.
                let start = rng.random_range(0..config.duration.max(1));
                Bus {
                    id: 33_000 + i as u32, // id space echoing the paper's example 33009
                    line: line.id,
                    operator: (i % 4) as u32,
                    faulty: rng.random::<f64>() < config.faulty_fraction,
                    period_s: rng.random_range(config.period_range.0..=config.period_range.1),
                    shift: (start, start + shift_len),
                    start_offset_m: rng.random_range(0.0..line.length_m().max(1.0)),
                    initial_direction: if rng.random::<bool>() { 1 } else { -1 },
                }
            })
            .collect();

        Ok(BusFleet { lines, buses })
    }

    /// Simulates every bus and returns all probe records of the scenario,
    /// sorted by time.
    pub fn emit_all(
        &self,
        network: &StreetNetwork,
        field: &CongestionField,
        duration: i64,
        seed: u64,
    ) -> Vec<(i64, BusRecord)> {
        let mut out = Vec::new();
        self.emit_into(network, field, duration, seed, &mut out);
        out
    }

    /// [`emit_all`](BusFleet::emit_all), appending into a caller-owned
    /// buffer — the batched ingest form. `out`'s new tail (the whole buffer,
    /// when it starts empty) ends up sorted by time.
    pub fn emit_into(
        &self,
        network: &StreetNetwork,
        field: &CongestionField,
        duration: i64,
        seed: u64,
        out: &mut Vec<(i64, BusRecord)>,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe317_0000);
        let start = out.len();
        for bus in &self.buses {
            let line = &self.lines[bus.line as usize];
            let len = line.length_m().max(1.0);
            for (seg_start, seg_end) in bus.active_segments(duration) {
                let mut pos = bus.start_offset_m.min(len);
                let mut dir = bus.initial_direction as f64;
                let mut delay_s = 0.0f64;
                let mut t = seg_start + rng.random_range(0..bus.period_s.max(1));
                let mut prev_t = t;
                while t < seg_end.min(duration) {
                    let dt = (t - prev_t) as f64;
                    // Advance along the route at congestion-scaled speed.
                    let (_, here) = line.position_at(network, pos);
                    let speed = NOMINAL_SPEED_MS * field.speed_factor(here, t).max(0.1);
                    pos += dir * speed * dt;
                    // Bounce at the terminals (direction flip).
                    if pos >= len {
                        pos = len - (pos - len).min(len);
                        dir = -1.0;
                    } else if pos <= 0.0 {
                        pos = (-pos).min(len);
                        dir = 1.0;
                    }
                    delay_s += dt * (1.0 - speed / NOMINAL_SPEED_MS);

                    let ((lon, lat), junction) = line.position_at(network, pos);
                    let truth = field.is_congested(junction, t);
                    let congestion = if bus.faulty { !truth } else { truth };
                    out.push((
                        t,
                        BusRecord {
                            bus: bus.id,
                            line: bus.line,
                            operator: bus.operator,
                            delay_s: delay_s.round() as i64,
                            lon,
                            lat,
                            direction: if dir > 0.0 { 0 } else { 1 },
                            congestion,
                        },
                    ));
                    prev_t = t;
                    t += bus.period_s;
                }
            }
        }
        out[start..].sort_by_key(|&(t, _)| t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionConfig;
    use crate::network::NetworkConfig;

    fn net() -> StreetNetwork {
        StreetNetwork::generate(
            &NetworkConfig { nx: 12, ny: 10, ..NetworkConfig::dublin_default() },
            4,
        )
        .unwrap()
    }

    fn config(duration: i64) -> FleetConfig {
        FleetConfig {
            n_buses: 30,
            n_lines: 6,
            faulty_fraction: 0.1,
            active_fraction: 0.8,
            duration,
            period_range: (20, 30),
        }
    }

    #[test]
    fn generates_routes_and_vehicles() {
        let n = net();
        let fleet = BusFleet::generate(&n, &config(3600), 1).unwrap();
        assert_eq!(fleet.lines.len(), 6);
        assert_eq!(fleet.buses.len(), 30);
        for line in &fleet.lines {
            assert!(line.route.len() >= 5);
            assert_eq!(line.route.len(), line.cum_m.len());
            assert!(line.length_m() > 0.0);
            // cum is nondecreasing
            assert!(line.cum_m.windows(2).all(|w| w[1] >= w[0]));
        }
        for bus in &fleet.buses {
            assert!((20..=30).contains(&bus.period_s));
            assert!(bus.shift.0 < bus.shift.1);
        }
    }

    #[test]
    fn fleet_is_deterministic() {
        let n = net();
        let a = BusFleet::generate(&n, &config(3600), 2).unwrap();
        let b = BusFleet::generate(&n, &config(3600), 2).unwrap();
        assert_eq!(a.buses, b.buses);
    }

    #[test]
    fn validates_config() {
        let n = net();
        let mut c = config(3600);
        c.n_buses = 0;
        assert!(BusFleet::generate(&n, &c, 1).is_err());
        let mut c = config(3600);
        c.faulty_fraction = 2.0;
        assert!(BusFleet::generate(&n, &c, 1).is_err());
        let mut c = config(3600);
        c.period_range = (30, 20);
        assert!(BusFleet::generate(&n, &c, 1).is_err());
        let mut c = config(0);
        c.duration = 0;
        assert!(BusFleet::generate(&n, &c, 1).is_err());
    }

    #[test]
    fn position_interpolates_along_route() {
        let n = net();
        let fleet = BusFleet::generate(&n, &config(3600), 3).unwrap();
        let line = &fleet.lines[0];
        let (start_pos, _) = line.position_at(&n, 0.0);
        assert_eq!(start_pos, n.coords(line.route[0]));
        let (end_pos, end_j) = line.position_at(&n, line.length_m() + 100.0);
        assert_eq!(end_pos, n.coords(*line.route.last().unwrap()));
        assert_eq!(end_j, *line.route.last().unwrap());
        // Midpoint lies inside the bbox hull of its segment.
        let (mid, _) = line.position_at(&n, line.length_m() / 2.0);
        let (x0, y0, x1, y1) = n.bbox();
        assert!(mid.0 >= x0 - 0.05 && mid.0 <= x1 + 0.05);
        assert!(mid.1 >= y0 - 0.05 && mid.1 <= y1 + 0.05);
    }

    #[test]
    fn emissions_respect_shift_and_period() {
        let n = net();
        let field = CongestionField::generate(&n, CongestionConfig::default_for(3600), 5);
        let fleet = BusFleet::generate(&n, &config(3600), 5).unwrap();
        let records = fleet.emit_all(&n, &field, 3600, 5);
        assert!(!records.is_empty());
        // sorted by time
        assert!(records.windows(2).all(|w| w[0].0 <= w[1].0));
        // per bus: every emission falls into an active segment, and within
        // a segment consecutive emissions are exactly one period apart
        for bus in &fleet.buses {
            let segments = bus.active_segments(3600);
            let times: Vec<i64> =
                records.iter().filter(|(_, r)| r.bus == bus.id).map(|&(t, _)| t).collect();
            for &t in &times {
                assert!(
                    segments.iter().any(|&(a, b)| t >= a && t < b),
                    "t={t} outside segments {segments:?}"
                );
            }
            for w in times.windows(2) {
                let same_segment = segments.iter().any(|&(a, b)| w[0] >= a && w[1] < b);
                if same_segment {
                    assert_eq!(w[1] - w[0], bus.period_s);
                }
            }
        }
    }

    #[test]
    fn faulty_buses_invert_reports() {
        let n = net();
        let field = CongestionField::generate(&n, CongestionConfig::default_for(7200), 6);
        let mut c = config(7200);
        c.faulty_fraction = 0.5;
        let fleet = BusFleet::generate(&n, &c, 6).unwrap();
        let records = fleet.emit_all(&n, &field, 7200, 6);
        let faulty_ids: Vec<u32> = fleet.buses.iter().filter(|b| b.faulty).map(|b| b.id).collect();
        assert!(!faulty_ids.is_empty());
        // For a faulty bus, the reported flag must differ from the ground
        // truth at its reported location; for an honest one it must match.
        for (t, r) in &records {
            let j = n.nearest_junction(r.lon, r.lat).unwrap();
            let truth = field.is_congested(j, *t);
            if faulty_ids.contains(&r.bus) {
                assert_eq!(r.congestion, !truth, "faulty bus inverts");
            }
        }
    }

    #[test]
    fn delays_accumulate_under_congestion() {
        let n = net();
        // A heavily congested world: base level near jam everywhere.
        let cfg = CongestionConfig {
            base: 0.9,
            rush_amplitude: 0.0,
            n_incidents: 0,
            ..CongestionConfig::default_for(3600)
        };
        let field = CongestionField::generate(&n, cfg, 7);
        let fleet = BusFleet::generate(&n, &config(3600), 7).unwrap();
        let records = fleet.emit_all(&n, &field, 3600, 7);
        let max_delay = records.iter().map(|(_, r)| r.delay_s).max().unwrap();
        assert!(max_delay > 300, "delays build up in jammed traffic, got {max_delay}");
    }
}
