//! Citizen micro-blogging reports (the paper's §1 Twitter motivation).
//!
//! "The data sources include traditional ones (sensors) as well as novel
//! ones such as micro-blogging applications like Twitter; these provide a
//! new stream of textual information that can be utilized to capture
//! events." The paper's system does not consume this source yet; this
//! module provides the synthetic stream and a keyword classifier so the
//! extension rule-set (`citizenCongestion` in `insight-traffic`) can be
//! exercised — an implemented piece of the paper's future-work surface.

use crate::congestion::CongestionField;
use crate::network::StreetNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One geo-tagged textual report.
#[derive(Debug, Clone, PartialEq)]
pub struct CitizenReport {
    /// Pseudonymous user id.
    pub user: u32,
    /// The message text.
    pub text: String,
    /// Longitude of the report.
    pub lon: f64,
    /// Latitude of the report.
    pub lat: f64,
    /// Report time (seconds).
    pub time: i64,
}

/// Phrases indicating congestion.
const CONGESTION_PHRASES: [&str; 5] = [
    "stuck in traffic, not moving at all",
    "total gridlock here",
    "bumper to bumper congestion",
    "traffic jam again, avoid this junction",
    "massive tailback, hasn't moved in minutes",
];

/// Phrases indicating free flow.
const CLEAR_PHRASES: [&str; 4] = [
    "roads are clear this morning",
    "traffic flowing nicely",
    "no traffic at all, smooth ride",
    "quick drive through town, no jams",
];

/// Irrelevant chatter.
const CHATTER_PHRASES: [&str; 4] = [
    "great coffee at the quay",
    "match day! up the dubs",
    "lovely weather over the liffey",
    "anyone know a good lunch spot",
];

/// The keyword classifier: `Some(true)` = congestion, `Some(false)` =
/// free flow, `None` = irrelevant.
pub fn classify(text: &str) -> Option<bool> {
    const CONGESTED: [&str; 6] = [
        "traffic jam",
        "gridlock",
        "stuck in traffic",
        "congestion",
        "tailback",
        "bumper to bumper",
    ];
    const CLEAR: [&str; 4] = ["clear", "flowing", "no traffic", "no jams"];
    let lower = text.to_lowercase();
    if CONGESTED.iter().any(|k| lower.contains(k)) {
        return Some(true);
    }
    if CLEAR.iter().any(|k| lower.contains(k)) {
        return Some(false);
    }
    None
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CitizenConfig {
    /// Number of active users.
    pub n_users: usize,
    /// Mean reports per user per hour.
    pub reports_per_hour: f64,
    /// Probability a report is on-topic (traffic) rather than chatter.
    pub topicality: f64,
    /// Probability an on-topic report correctly reflects the ground truth.
    pub accuracy: f64,
}

impl Default for CitizenConfig {
    fn default() -> CitizenConfig {
        CitizenConfig { n_users: 50, reports_per_hour: 4.0, topicality: 0.5, accuracy: 0.9 }
    }
}

/// Generates the report stream over a scenario window, deterministically
/// under `seed`. Reports are sorted by time.
pub fn generate(
    network: &StreetNetwork,
    field: &CongestionField,
    config: &CitizenConfig,
    start: i64,
    duration: i64,
    seed: u64,
) -> Vec<CitizenReport> {
    let mut reports = Vec::new();
    generate_into(network, field, config, start, duration, seed, &mut reports);
    reports
}

/// [`generate`], appending into a caller-owned buffer — the batched ingest
/// form. The new tail (the whole buffer, when it starts empty) ends up
/// sorted by time.
#[allow(clippy::too_many_arguments)]
pub fn generate_into(
    network: &StreetNetwork,
    field: &CongestionField,
    config: &CitizenConfig,
    start: i64,
    duration: i64,
    seed: u64,
    reports: &mut Vec<CitizenReport>,
) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc171_2e45);
    if network.is_empty() || duration <= 0 {
        return;
    }
    let first = reports.len();
    for user in 0..config.n_users as u32 {
        // Each user hangs around one home junction, jittered per report.
        let home = rng.random_range(0..network.len());
        let expected = config.reports_per_hour * duration as f64 / 3600.0;
        let n_reports = rng.random_range(0.0..2.0 * expected).round() as usize;
        for _ in 0..n_reports {
            let t = start + rng.random_range(0..duration);
            let junction =
                if rng.random::<f64>() < 0.7 { home } else { rng.random_range(0..network.len()) };
            let (lon, lat) = network.coords(junction);
            let text = if rng.random::<f64>() < config.topicality {
                let truth = field.is_congested(junction, t);
                let claim = if rng.random::<f64>() < config.accuracy { truth } else { !truth };
                if claim {
                    CONGESTION_PHRASES[rng.random_range(0..CONGESTION_PHRASES.len())]
                } else {
                    CLEAR_PHRASES[rng.random_range(0..CLEAR_PHRASES.len())]
                }
            } else {
                CHATTER_PHRASES[rng.random_range(0..CHATTER_PHRASES.len())]
            };
            reports.push(CitizenReport {
                user,
                text: text.to_string(),
                lon: lon + rng.random_range(-0.0005..0.0005),
                lat: lat + rng.random_range(-0.0005..0.0005),
                time: t,
            });
        }
    }
    reports[first..].sort_by_key(|r| r.time);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionConfig;
    use crate::network::NetworkConfig;

    fn setup() -> (StreetNetwork, CongestionField) {
        let net = StreetNetwork::generate(
            &NetworkConfig { nx: 8, ny: 6, ..NetworkConfig::dublin_default() },
            2,
        )
        .unwrap();
        let field = CongestionField::generate(&net, CongestionConfig::default_for(86_400), 2);
        (net, field)
    }

    #[test]
    fn classifier_keywords() {
        assert_eq!(classify("Total GRIDLOCK here"), Some(true));
        assert_eq!(classify("stuck in traffic on the quays"), Some(true));
        assert_eq!(classify("roads are clear this morning"), Some(false));
        assert_eq!(classify("traffic flowing nicely"), Some(false));
        assert_eq!(classify("great coffee at the quay"), None);
        assert_eq!(classify(""), None);
    }

    #[test]
    fn every_generated_phrase_classifies_consistently() {
        for p in CONGESTION_PHRASES {
            assert_eq!(classify(p), Some(true), "{p}");
        }
        for p in CLEAR_PHRASES {
            assert_eq!(classify(p), Some(false), "{p}");
        }
        for p in CHATTER_PHRASES {
            assert_eq!(classify(p), None, "{p}");
        }
    }

    #[test]
    fn generates_sorted_in_window_reports() {
        let (net, field) = setup();
        let reports = generate(&net, &field, &CitizenConfig::default(), 28_800, 3600, 7);
        assert!(!reports.is_empty());
        assert!(reports.windows(2).all(|w| w[0].time <= w[1].time));
        for r in &reports {
            assert!(r.time >= 28_800 && r.time < 32_400);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let (net, field) = setup();
        let a = generate(&net, &field, &CitizenConfig::default(), 0, 3600, 1);
        let b = generate(&net, &field, &CitizenConfig::default(), 0, 3600, 1);
        assert_eq!(a, b);
        let c = generate(&net, &field, &CitizenConfig::default(), 0, 3600, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn accurate_users_track_ground_truth() {
        let (net, field) = setup();
        let cfg =
            CitizenConfig { n_users: 200, reports_per_hour: 6.0, topicality: 1.0, accuracy: 1.0 };
        // Evening rush: plenty of both congested and clear junctions.
        let reports = generate(&net, &field, &cfg, (17 * 3600) as i64, 3600, 5);
        let mut checked = 0;
        for r in &reports {
            if let Some(claim) = classify(&r.text) {
                let j = net.nearest_junction(r.lon, r.lat).unwrap();
                assert_eq!(claim, field.is_congested(j, r.time), "text: {}", r.text);
                checked += 1;
            }
        }
        assert!(checked > 50);
    }
}
