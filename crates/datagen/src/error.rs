//! Error type for scenario generation.

use std::fmt;

/// Errors produced while configuring or generating a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum DatagenError {
    /// A configuration value is out of its valid range.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// The generated network ended up degenerate (no junctions / not
    /// connected) — indicates an impossible parameter combination.
    DegenerateNetwork {
        /// Description.
        detail: String,
    },
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::InvalidConfig { name, detail } => {
                write!(f, "invalid configuration `{name}`: {detail}")
            }
            DatagenError::DegenerateNetwork { detail } => {
                write!(f, "degenerate network: {detail}")
            }
        }
    }
}

impl std::error::Error for DatagenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DatagenError::InvalidConfig { name: "n_buses", detail: "zero".into() };
        assert!(e.to_string().contains("n_buses"));
    }
}
