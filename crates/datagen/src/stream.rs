//! SDE record types: the wire format of the two Dublin feeds.
//!
//! A bus record corresponds to one row of the bus probe feed — it carries
//! both the `move(Bus, Line, Operator, Delay)` event and the
//! `gps(Bus, Lon, Lat, Direction, Congestion)` fluent observation of
//! formalisation (1). A SCATS record corresponds to one
//! `traffic(Int, A, S, D, F)` reading. Records carry an occurrence time and
//! an arrival time (mediators delay delivery).

use crate::regions::Region;

/// One bus probe emission.
#[derive(Debug, Clone, PartialEq)]
pub struct BusRecord {
    /// Vehicle id.
    pub bus: u32,
    /// Line the bus is running on.
    pub line: u32,
    /// Operator id.
    pub operator: u32,
    /// Schedule delay in seconds (positive = late).
    pub delay_s: i64,
    /// Longitude.
    pub lon: f64,
    /// Latitude.
    pub lat: f64,
    /// Direction on the line (0 or 1).
    pub direction: u8,
    /// Congestion flag as reported by the vehicle.
    pub congestion: bool,
}

impl BusRecord {
    /// The region the bus currently traverses.
    pub fn region(&self) -> Region {
        Region::of(self.lon, self.lat)
    }
}

/// One SCATS vehicle-detector reading.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatsRecord {
    /// Intersection id.
    pub intersection: u32,
    /// Approach (lane direction into the intersection).
    pub approach: u8,
    /// Sensor id.
    pub sensor: u32,
    /// Measured density (vehicles/km).
    pub density: f64,
    /// Measured flow (vehicles/hour).
    pub flow: f64,
    /// Sensor longitude.
    pub lon: f64,
    /// Sensor latitude.
    pub lat: f64,
}

impl ScatsRecord {
    /// The region of the sensor.
    pub fn region(&self) -> Region {
        Region::of(self.lon, self.lat)
    }
}

/// The payload of an SDE.
#[derive(Debug, Clone, PartialEq)]
pub enum SdeBody {
    /// A bus probe record.
    Bus(BusRecord),
    /// A SCATS reading.
    Scats(ScatsRecord),
}

/// One time-stamped SDE, with the arrival time assigned by the mediator
/// layer (`arrival >= time`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sde {
    /// Occurrence time (seconds).
    pub time: i64,
    /// Arrival time at the system (seconds).
    pub arrival: i64,
    /// The record.
    pub body: SdeBody,
}

impl Sde {
    /// A punctual SDE (arrival == occurrence).
    pub fn punctual(time: i64, body: SdeBody) -> Sde {
        Sde { time, arrival: time, body }
    }

    /// The region the SDE belongs to (bus position / sensor location).
    pub fn region(&self) -> Region {
        match &self.body {
            SdeBody::Bus(b) => b.region(),
            SdeBody::Scats(s) => s.region(),
        }
    }

    /// Whether this is a bus record.
    pub fn is_bus(&self) -> bool {
        matches!(self.body, SdeBody::Bus(_))
    }
}

/// Splits an arrival-sorted SDE trace into ingest batches of at most `max`
/// records, aligned to arrival-second boundaries: a batch never splits the
/// records of one arrival second across two batches unless that second alone
/// exceeds `max`. Concatenating the batches yields the input verbatim, so a
/// batched feed delivers exactly the per-item trace — just in fewer, larger
/// hand-offs.
pub fn arrival_batches(sdes: &[Sde], max: usize) -> ArrivalBatches<'_> {
    ArrivalBatches { rest: sdes, max: max.max(1) }
}

/// Iterator over arrival-aligned SDE batches; see [`arrival_batches`].
pub struct ArrivalBatches<'a> {
    rest: &'a [Sde],
    max: usize,
}

impl<'a> Iterator for ArrivalBatches<'a> {
    type Item = &'a [Sde];

    fn next(&mut self) -> Option<&'a [Sde]> {
        if self.rest.is_empty() {
            return None;
        }
        let mut end = self.rest.len().min(self.max);
        if end < self.rest.len() {
            // Pull the cut back to the last arrival-second boundary inside
            // the window; if the whole window is one arrival second, keep
            // the full `max`-sized cut (an oversized tick must split).
            let cut_arrival = self.rest[end].arrival;
            if let Some(boundary) = self.rest[..end].iter().rposition(|s| s.arrival != cut_arrival)
            {
                end = boundary + 1;
            }
        }
        let (batch, rest) = self.rest.split_at(end);
        self.rest = rest;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::CITY_CENTRE;

    #[test]
    fn regions_delegate_to_coordinates() {
        let bus = BusRecord {
            bus: 1,
            line: 10,
            operator: 7,
            delay_s: 120,
            lon: CITY_CENTRE.0,
            lat: CITY_CENTRE.1,
            direction: 0,
            congestion: false,
        };
        assert_eq!(bus.region(), Region::Central);
        let sde = Sde::punctual(100, SdeBody::Bus(bus));
        assert_eq!(sde.region(), Region::Central);
        assert!(sde.is_bus());
        assert_eq!(sde.arrival, 100);
    }

    fn sde_at(arrival: i64) -> Sde {
        let body = SdeBody::Scats(ScatsRecord {
            intersection: 1,
            approach: 0,
            sensor: 5,
            density: 80.0,
            flow: 1500.0,
            lon: CITY_CENTRE.0,
            lat: CITY_CENTRE.1,
        });
        Sde { time: arrival, arrival, body }
    }

    #[test]
    fn arrival_batches_align_to_ticks() {
        let sdes: Vec<Sde> = [1, 2, 2, 2, 2, 3, 3].into_iter().map(sde_at).collect();
        let batches: Vec<&[Sde]> = arrival_batches(&sdes, 4).collect();
        let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 4, 2], "cuts pull back to tick boundaries");
        let flat: Vec<Sde> = batches.into_iter().flatten().cloned().collect();
        assert_eq!(flat, sdes, "concatenation is the input verbatim");
    }

    #[test]
    fn arrival_batches_split_oversized_ticks() {
        let sdes: Vec<Sde> = std::iter::repeat_with(|| sde_at(9)).take(10).collect();
        let sizes: Vec<usize> = arrival_batches(&sdes, 4).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2], "a tick larger than max must split");
        assert_eq!(arrival_batches(&[], 4).count(), 0);
    }

    #[test]
    fn scats_region() {
        let s = ScatsRecord {
            intersection: 1,
            approach: 0,
            sensor: 5,
            density: 80.0,
            flow: 1500.0,
            lon: CITY_CENTRE.0,
            lat: CITY_CENTRE.1 + 0.06,
        };
        assert_eq!(s.region(), Region::North);
        assert!(!Sde::punctual(0, SdeBody::Scats(s)).is_bus());
    }
}
