//! Property-based validation of the paper's rule-sets against direct
//! reference models.

use insight_datagen::congestion::{LOWER_FLOW_THRESHOLD, UPPER_DENSITY_THRESHOLD};
use insight_rtec::engine::Engine;
use insight_rtec::event::Event;
use insight_rtec::interval::{Interval, IntervalList};
use insight_rtec::term::Term;
use insight_rtec::window::WindowConfig;
use insight_traffic::rules::{build_ruleset, ce, rel};
use insight_traffic::TrafficRulesConfig;
use proptest::prelude::*;

fn engine() -> Engine {
    let config = TrafficRulesConfig::static_mode();
    let rs = build_ruleset(&config).unwrap();
    let mut e = Engine::new(rs, WindowConfig::new(100_000, 100_000).unwrap());
    e.register_builtin("close", insight_traffic::geo::close_builtin(250.0)).unwrap();
    e.set_relation(
        rel::SCATS_INTERSECTION,
        vec![vec![Term::int(1), Term::float(-6.26), Term::float(53.35)]],
    )
    .unwrap();
    e.set_relation(rel::AREA, vec![vec![Term::float(-6.26), Term::float(53.35)]]).unwrap();
    e
}

/// Direct reference model of rule-set (2): scan readings in time order,
/// toggling the congestion state, and build the expected maximal intervals.
fn reference_intervals(readings: &[(i64, f64, f64)]) -> IntervalList {
    let mut intervals = Vec::new();
    let mut since: Option<i64> = None;
    for &(t, d, f) in readings {
        let congested = d >= UPPER_DENSITY_THRESHOLD && f <= LOWER_FLOW_THRESHOLD;
        match (since, congested) {
            (None, true) => since = Some(t),
            (Some(s), false) => {
                if t > s {
                    intervals.push(Interval::span(s, t));
                }
                since = None;
            }
            _ => {}
        }
    }
    if let Some(s) = since {
        intervals.push(Interval::open_from(s));
    }
    IntervalList::from_intervals(intervals)
}

proptest! {
    /// The engine's scatsCongestion intervals equal the reference scan for
    /// arbitrary reading sequences.
    #[test]
    fn scats_congestion_matches_reference_model(
        raw in proptest::collection::vec((0.0f64..130.0, 0.0f64..1900.0), 1..40)
    ) {
        // Readings every 360 s starting at 360 (inside the window).
        let readings: Vec<(i64, f64, f64)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(d, f))| ((i as i64 + 1) * 360, d, f))
            .collect();

        let mut e = engine();
        for &(t, d, f) in &readings {
            e.add_event(Event::new(
                "traffic",
                [Term::int(1), Term::int(0), Term::int(5), Term::float(d), Term::float(f)],
                t,
            ))
            .unwrap();
        }
        let rec = e.query(100_000).unwrap();
        let expected = reference_intervals(&readings);
        let actual = rec
            .intervals_of(
                ce::SCATS_CONGESTION,
                &[Term::int(1), Term::int(0), Term::int(5)],
                &Term::truth(),
            )
            .cloned()
            .unwrap_or_else(IntervalList::empty);
        prop_assert_eq!(actual, expected);
    }

    /// sourceDisagreement == busCongestion \ scatsIntCongestion for random
    /// interleavings of bus reports and SCATS readings at one intersection.
    #[test]
    fn source_disagreement_is_exact_relative_complement(
        bus_flags in proptest::collection::vec(proptest::bool::ANY, 1..20),
        scats_cong in proptest::collection::vec(proptest::bool::ANY, 1..12),
    ) {
        let mut e = engine();
        // Bus reports every 100 s; SCATS readings every 360 s.
        for (i, &flag) in bus_flags.iter().enumerate() {
            let t = (i as i64 + 1) * 100;
            e.add_event(Event::new(
                "move",
                [Term::int(7), Term::int(1), Term::int(0), Term::int(0)],
                t,
            ))
            .unwrap();
            e.add_obs(insight_rtec::event::FluentObs::new(
                "gps",
                [
                    Term::int(7),
                    Term::float(-6.26),
                    Term::float(53.35),
                    Term::int(0),
                    Term::int(flag as i64),
                ],
                true,
                t,
            ))
            .unwrap();
        }
        for (i, &cong) in scats_cong.iter().enumerate() {
            let t = (i as i64 + 1) * 360;
            let (d, f) = if cong { (100.0, 900.0) } else { (30.0, 1700.0) };
            e.add_event(Event::new(
                "traffic",
                [Term::int(1), Term::int(0), Term::int(5), Term::float(d), Term::float(f)],
                t,
            ))
            .unwrap();
        }
        let rec = e.query(100_000).unwrap();
        let key = [Term::float(-6.26), Term::float(53.35)];
        let bus = rec
            .intervals_of(ce::BUS_CONGESTION, &key, &Term::truth())
            .cloned()
            .unwrap_or_else(IntervalList::empty);
        let scats = rec
            .intervals_of(ce::SCATS_INT_CONGESTION, &key, &Term::truth())
            .cloned()
            .unwrap_or_else(IntervalList::empty);
        let disagreement = rec
            .intervals_of(ce::SOURCE_DISAGREEMENT, &key, &Term::truth())
            .cloned()
            .unwrap_or_else(IntervalList::empty);
        prop_assert_eq!(disagreement, bus.difference(&scats));
    }
}
