//! Compact rule fixtures for conformance testing.
//!
//! The full Dublin rule set ([`crate::rules`]) is the thing we ultimately
//! want to trust, but its groundings are large (hundreds of sensors) and its
//! vocabulary is tied to the scenario generator. Differential testing wants
//! something orthogonal as well: a *small* rule set that still exercises
//! every feature of the rule language — multi-valued simple fluents,
//! negation as failure, relation joins, builtins, arithmetic guards, all
//! three statically-determined combinators, co-timed derived events feeding
//! later strata, and a *spanning* derived event whose evidence covers an
//! interval (the case where windowed re-derivation genuinely differs from
//! keeping state).
//!
//! The vocabulary is a miniature traffic network: buses enter/leave stops,
//! sensors observe flow and raise `spike`/`calm`/`fault`/`fixed` SDEs.

use crate::geo;
use insight_rtec::dsl::{
    builtin, cmp, event_head, event_pat, fluent, fluent_pat, guard, happens, holds, not_holds, pat,
    relation, term_ne, val, RuleSet, RuleSetBuilder,
};
use insight_rtec::error::RtecError;
use insight_rtec::rule::{CmpOp, IntervalExpr, NumExpr, ValRef};
use insight_rtec::term::Term;

/// A fixture: the rule set plus the relation tables and builtins the engine
/// (or the conformance oracle) must be loaded with.
pub struct RuleFixture {
    /// Compiled rule set.
    pub rules: RuleSet,
    /// `(relation name, tuples)` to register via `set_relation`.
    pub relations: Vec<(&'static str, Vec<Vec<Term>>)>,
    /// Builtin names to bind to [`fixture_builtin`] implementations.
    pub builtins: Vec<&'static str>,
}

/// A boxed builtin predicate implementation, as the engines accept it.
pub type BuiltinImpl = Box<dyn Fn(&[Term]) -> bool + Send + Sync>;

/// Returns the implementation of a fixture builtin by name.
///
/// `watched(Region)` — the region is under observation (here: `central`).
/// `near(Lon1, Lat1, Lon2, Lat2)` — within 300 m, reusing the haversine
/// distance from [`crate::geo`] so the fixture exercises the same float
/// builtin path as the production rules.
pub fn fixture_builtin(name: &str) -> Option<BuiltinImpl> {
    match name {
        "watched" => Some(Box::new(
            |args: &[Term]| matches!(args, [Term::Sym(s)] if s.as_str() == "central"),
        )),
        "near" => {
            let close = geo::close_builtin(300.0);
            Some(Box::new(move |args: &[Term]| close(args)))
        }
        _ => None,
    }
}

/// The number of sensors the default fixture relations know about.
pub const FIXTURE_SENSORS: i64 = 4;
/// The number of stops the default fixture relations know about.
pub const FIXTURE_STOPS: i64 = 3;

fn fixture_relations() -> Vec<(&'static str, Vec<Vec<Term>>)> {
    let region_of = |i: i64| {
        if i % 2 == 0 {
            Term::sym("central")
        } else {
            Term::sym("north")
        }
    };
    let sensor_region: Vec<Vec<Term>> =
        (0..FIXTURE_SENSORS).map(|i| vec![Term::int(i), region_of(i)]).collect();
    let stop_region: Vec<Vec<Term>> =
        (0..FIXTURE_STOPS).map(|i| vec![Term::int(i), region_of(i + 1)]).collect();
    vec![("sensor_region", sensor_region), ("stop_region", stop_region)]
}

/// Builds the conformance fixture rule set.
///
/// Derived vocabulary:
///
/// * `at_stop(Bus, Stop)` — simple fluent, initiated by `enter`, terminated
///   by `leave` (plain inertia).
/// * `congested(Sensor)` — simple fluent; initiated by `spike` when the
///   co-timed `flow` observation exceeds 60 (arithmetic guard over an input
///   fluent), terminated by `calm` *or* by a `spike` whose flow has dropped
///   below 20 (two termination rules for one grounding).
/// * `faulty(Sensor)` — simple fluent, `fault`/`fixed`.
/// * `status(Sensor) = high | low` — multi-valued: values evolve
///   independently (the engine keeps no cross-value exclusion, and the
///   conformance oracle must agree).
/// * `ghost_spike(Sensor)` — co-timed derived event with negation as
///   failure: a spike at a sensor *not* currently congested.
/// * `alert(Sensor, Region)` — co-timed derived event joining the
///   `sensor_region` relation and the `watched` builtin; feeds …
/// * `alerting(Region)` — a second-stratum simple fluent initiated by the
///   derived `alert` event and terminated by `all_clear`.
/// * `hop(Bus, From, To)` — *spanning* derived event: two `enter` events at
///   different stops within 40 ticks (evidence span `(T1, T2]`).
/// * `disturbed(Sensor)` — static union of `congested` and `faulty`.
/// * `confirmed(Sensor)` — static intersection of the same.
/// * `clear_congestion(Sensor)` — static relative complement:
///   congested-but-not-faulty.
pub fn conformance_fixture() -> Result<RuleFixture, RtecError> {
    let mut b = RuleSetBuilder::new();
    b.declare_event("enter", 2)
        .declare_event("leave", 2)
        .declare_event("spike", 1)
        .declare_event("calm", 1)
        .declare_event("fault", 1)
        .declare_event("fixed", 1)
        .declare_event("all_clear", 1)
        .declare_input_fluent("flow", 1)
        .declare_relation("sensor_region", 2)
        .declare_relation("stop_region", 2)
        .declare_builtin("watched", 1);

    let bus = b.var("Bus");
    let stop = b.var("Stop");
    let sensor = b.var("S");
    let region = b.var("R");
    let flow = b.var("F");
    let t = b.var("T");

    // at_stop: plain initiate/terminate inertia.
    b.initiated(
        fluent("at_stop", [pat(bus), pat(stop)], val(true)),
        t,
        [happens(event_pat("enter", [pat(bus), pat(stop)]), t)],
    );
    b.terminated(
        fluent("at_stop", [pat(bus), pat(stop)], val(true)),
        t,
        [happens(event_pat("leave", [pat(bus), pat(stop)]), t)],
    );

    // congested: guard over a co-timed input-fluent observation.
    b.initiated(
        fluent("congested", [pat(sensor)], val(true)),
        t,
        [
            happens(event_pat("spike", [pat(sensor)]), t),
            holds(fluent_pat("flow", [pat(sensor)], pat(flow)), t),
            guard(cmp(flow, CmpOp::Gt, 60.0)),
        ],
    );
    b.terminated(
        fluent("congested", [pat(sensor)], val(true)),
        t,
        [happens(event_pat("calm", [pat(sensor)]), t)],
    );
    b.terminated(
        fluent("congested", [pat(sensor)], val(true)),
        t,
        [
            happens(event_pat("spike", [pat(sensor)]), t),
            holds(fluent_pat("flow", [pat(sensor)], pat(flow)), t),
            guard(cmp(flow, CmpOp::Lt, 20.0)),
        ],
    );

    // faulty: fault/fixed.
    b.initiated(
        fluent("faulty", [pat(sensor)], val(true)),
        t,
        [happens(event_pat("fault", [pat(sensor)]), t)],
    );
    b.terminated(
        fluent("faulty", [pat(sensor)], val(true)),
        t,
        [happens(event_pat("fixed", [pat(sensor)]), t)],
    );

    // status: multi-valued, values evolve independently.
    b.initiated(
        fluent("status", [pat(sensor)], val(Term::sym("high"))),
        t,
        [
            happens(event_pat("spike", [pat(sensor)]), t),
            holds(fluent_pat("flow", [pat(sensor)], pat(flow)), t),
            guard(cmp(flow, CmpOp::Ge, 50.0)),
        ],
    );
    b.terminated(
        fluent("status", [pat(sensor)], val(Term::sym("high"))),
        t,
        [happens(event_pat("calm", [pat(sensor)]), t)],
    );
    b.initiated(
        fluent("status", [pat(sensor)], val(Term::sym("low"))),
        t,
        [happens(event_pat("calm", [pat(sensor)]), t)],
    );
    b.terminated(
        fluent("status", [pat(sensor)], val(Term::sym("low"))),
        t,
        [happens(event_pat("spike", [pat(sensor)]), t)],
    );

    // ghost_spike: negation as failure against a derived fluent.
    b.derived_event(
        event_head("ghost_spike", [pat(sensor)]),
        t,
        [
            happens(event_pat("spike", [pat(sensor)]), t),
            not_holds(fluent_pat("congested", [pat(sensor)], val(true)), t),
        ],
    );

    // alert: relation join + builtin, co-timed; feeds the next stratum.
    b.derived_event(
        event_head("alert", [pat(sensor), pat(region)]),
        t,
        [
            happens(event_pat("spike", [pat(sensor)]), t),
            holds(fluent_pat("congested", [pat(sensor)], val(true)), t),
            relation("sensor_region", [pat(sensor), pat(region)]),
            builtin("watched", [ValRef::Var(region)]),
        ],
    );

    // alerting: initiated by a *derived* event (second stratum).
    b.initiated(
        fluent("alerting", [pat(region)], val(true)),
        t,
        [happens(event_pat("alert", [pat(sensor), pat(region)]), t)],
    );
    b.terminated(
        fluent("alerting", [pat(region)], val(true)),
        t,
        [happens(event_pat("all_clear", [pat(region)]), t)],
    );

    // hop: a spanning derived event — evidence covers (T1, T2].
    let stop2 = b.var("Stop2");
    let t1 = b.var("T1");
    b.derived_event(
        event_head("hop", [pat(bus), pat(stop), pat(stop2)]),
        t,
        [
            happens(event_pat("enter", [pat(bus), pat(stop)]), t1),
            happens(event_pat("enter", [pat(bus), pat(stop2)]), t),
            guard(term_ne(stop, stop2)),
            guard(cmp(
                NumExpr::Sub(Box::new(NumExpr::Var(t)), Box::new(NumExpr::Var(t1))),
                CmpOp::Gt,
                0.0,
            )),
            guard(cmp(
                NumExpr::Sub(Box::new(NumExpr::Var(t)), Box::new(NumExpr::Var(t1))),
                CmpOp::Le,
                40.0,
            )),
        ],
    );

    // Statically-determined combinators over congested/faulty.
    b.static_fluent(
        fluent("disturbed", [pat(sensor)], val(true)),
        [relation("sensor_region", [pat(sensor), pat(region)])],
        IntervalExpr::Union(vec![
            IntervalExpr::Fluent(fluent_pat("congested", [pat(sensor)], val(true))),
            IntervalExpr::Fluent(fluent_pat("faulty", [pat(sensor)], val(true))),
        ]),
    );
    b.static_fluent(
        fluent("confirmed", [pat(sensor)], val(true)),
        [relation("sensor_region", [pat(sensor), pat(region)])],
        IntervalExpr::Intersect(vec![
            IntervalExpr::Fluent(fluent_pat("congested", [pat(sensor)], val(true))),
            IntervalExpr::Fluent(fluent_pat("faulty", [pat(sensor)], val(true))),
        ]),
    );
    b.static_fluent(
        fluent("clear_congestion", [pat(sensor)], val(true)),
        [relation("sensor_region", [pat(sensor), pat(region)])],
        IntervalExpr::RelComp(
            Box::new(IntervalExpr::Fluent(fluent_pat("congested", [pat(sensor)], val(true)))),
            vec![IntervalExpr::Fluent(fluent_pat("faulty", [pat(sensor)], val(true)))],
        ),
    );

    Ok(RuleFixture { rules: b.build()?, relations: fixture_relations(), builtins: vec!["watched"] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_rtec::engine::Engine;
    use insight_rtec::event::{Event, FluentObs};
    use insight_rtec::window::WindowConfig;

    fn engine_with_fixture() -> Engine {
        let fx = conformance_fixture().expect("fixture builds");
        let mut engine = Engine::new(fx.rules, WindowConfig::new(100, 50).expect("window"));
        for (name, tuples) in fx.relations {
            engine.set_relation(name, tuples).expect("relation");
        }
        for name in fx.builtins {
            let f = fixture_builtin(name).expect("builtin impl");
            engine.register_builtin(name, move |args| f(args)).expect("builtin");
        }
        engine
    }

    #[test]
    fn fixture_builds_and_stratifies() {
        let fx = conformance_fixture().expect("fixture builds");
        let (sf, ev, st) = fx.rules.rule_counts();
        assert_eq!(sf, 13);
        assert_eq!(ev, 3);
        assert_eq!(st, 3);
        // alerting must come after alert, which must come after congested.
        let strata = fx.rules.strata();
        let pos = |n: &str| {
            strata
                .iter()
                .position(|s| s.symbol == insight_rtec::term::Symbol::new(n))
                .unwrap_or_else(|| panic!("{n} missing from strata"))
        };
        assert!(pos("congested") < pos("alert"));
        assert!(pos("alert") < pos("alerting"));
    }

    #[test]
    fn fixture_recognises_an_alert() {
        let mut engine = engine_with_fixture();
        // Sensor 0 is in `central` (watched). Flow 80 at t=10 → congested
        // holds from t=10 (initiation is co-timed), so both spikes alert.
        engine.add_obs(FluentObs::new("flow", [Term::int(0)], 80.0, 10)).expect("obs");
        engine.add_event(Event::new("spike", vec![Term::int(0)], 10)).expect("event");
        engine.add_obs(FluentObs::new("flow", [Term::int(0)], 70.0, 20)).expect("obs");
        engine.add_event(Event::new("spike", vec![Term::int(0)], 20)).expect("event");
        let rec = engine.query(50).expect("query");
        assert!(rec.holds_at("congested", &[Term::int(0)], &Term::truth(), 20));
        assert!(rec.holds_at("disturbed", &[Term::int(0)], &Term::truth(), 20));
        assert!(rec.holds_at("clear_congestion", &[Term::int(0)], &Term::truth(), 20));
        assert!(!rec.holds_at("confirmed", &[Term::int(0)], &Term::truth(), 20));
        let alerts: Vec<_> =
            rec.derived_events.iter().filter(|e| e.kind.as_str() == "alert").collect();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].time, 10);
        assert_eq!(alerts[1].time, 20);
        assert!(rec.holds_at("alerting", &[Term::sym("central")], &Term::truth(), 30));
    }

    #[test]
    fn fixture_spanning_hop() {
        let mut engine = engine_with_fixture();
        engine.add_event(Event::new("enter", vec![Term::int(7), Term::int(1)], 10)).expect("e");
        engine.add_event(Event::new("enter", vec![Term::int(7), Term::int(2)], 30)).expect("e");
        let rec = engine.query(50).expect("query");
        let hops: Vec<_> = rec.derived_events.iter().filter(|e| e.kind.as_str() == "hop").collect();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].args, vec![Term::int(7), Term::int(1), Term::int(2)]);
        assert_eq!(hops[0].time, 30);
    }
}
