//! Configuration of the traffic rule library.

use insight_datagen::congestion::{LOWER_FLOW_THRESHOLD, UPPER_DENSITY_THRESHOLD};

/// Which `noisy(Bus)` definition is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisyVariant {
    /// Rule-set (4): a bus becomes noisy only when crowdsourced information
    /// confirms the SCATS sensors against it.
    CrowdValidated,
    /// Rule-set (5): a bus becomes noisy on any disagreement (SCATS sensors
    /// are trusted by default); crowdsourced information can clear it.
    Pessimistic,
}

/// Static vs self-adaptive recognition (the two curves of Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecognitionMode {
    /// Rule-set (3): every source is always taken into consideration.
    Static,
    /// Rule-set (3′) + `noisy` + `disagree`/`agree`: unreliable sources are
    /// detected at run time and discarded until they recover.
    SelfAdaptive(NoisyVariant),
}

/// Thresholds and parameters of the CE definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRulesConfig {
    /// Recognition mode.
    pub mode: RecognitionMode,
    /// `close/4` distance threshold in metres.
    pub close_threshold_m: f64,
    /// `delayIncrease`: minimum delay growth `d` (seconds).
    pub delay_increase_d: f64,
    /// `delayIncrease`: maximum SDE spacing `t` (seconds).
    pub delay_increase_t: f64,
    /// Rule-set (2): `upper_Density_threshold` (vehicles/km).
    pub density_upper: f64,
    /// Rule-set (2): `lower_Flow_threshold` (vehicles/hour).
    pub flow_lower: f64,
    /// Rule-set (4)/(5): crowd answers older than this do not affect bus
    /// reliability (seconds).
    pub crowd_window_s: f64,
    /// Trend CEs: minimum flow change between consecutive readings (veh/h).
    pub trend_flow_delta: f64,
    /// Trend CEs: minimum density change between consecutive readings
    /// (veh/km).
    pub trend_density_delta: f64,
    /// Trend CEs: maximum spacing between the two readings (seconds; a bit
    /// over one SCATS period pairs consecutive readings only).
    pub trend_window_s: f64,
    /// Whether to also evaluate SCATS sensor reliability from crowd answers
    /// (the rule-set the paper omits to save space).
    pub scats_reliability: bool,
    /// When the areas of interest coincide with the SCATS intersections
    /// (the paper's default choice), the adaptive mode can share one
    /// spatial join between `busCongestion` and `disagree`/`agree`. The
    /// recogniser disables this automatically when extra areas are added.
    pub shared_spatial_join: bool,
    /// Enables the `citizenCongestion` extension rule-set over classified
    /// micro-blogging reports (the paper's §1 Twitter motivation, not part
    /// of its implemented system).
    pub citizen_reports: bool,
    /// Additionally derives `scatsApproachCongestion(Int, A)` — the
    /// intermediate level of the paper's structured intersection-congestion
    /// definition family (per-approach visibility for operators).
    pub approach_congestion: bool,
    /// `scatsIntCongestion` requires at least this many simultaneously
    /// congested sensors (the paper: "a SCATS intersection is congested if
    /// at least n (n ≥ 1) of its sensors are congested"). Supported values:
    /// 1 (union of sensors, the default) and 2 (pairwise intersection).
    pub intersection_congestion_n: usize,
}

impl Default for TrafficRulesConfig {
    fn default() -> TrafficRulesConfig {
        TrafficRulesConfig {
            mode: RecognitionMode::SelfAdaptive(NoisyVariant::Pessimistic),
            close_threshold_m: 250.0,
            // A bus gains at most one second of delay per second, so `d`
            // must be comfortably below `t`: +45 s of schedule delay inside
            // two minutes (≥ 37 % of the elapsed time lost) marks a
            // congestion in the making.
            delay_increase_d: 45.0,
            delay_increase_t: 120.0,
            density_upper: UPPER_DENSITY_THRESHOLD,
            flow_lower: LOWER_FLOW_THRESHOLD,
            crowd_window_s: 600.0,
            trend_flow_delta: 450.0,
            trend_density_delta: 30.0,
            trend_window_s: 400.0,
            scats_reliability: false,
            shared_spatial_join: true,
            citizen_reports: false,
            approach_congestion: false,
            intersection_congestion_n: 1,
        }
    }
}

impl TrafficRulesConfig {
    /// The static-mode configuration (Figure 4's baseline curve).
    pub fn static_mode() -> TrafficRulesConfig {
        TrafficRulesConfig { mode: RecognitionMode::Static, ..TrafficRulesConfig::default() }
    }

    /// Self-adaptive configuration with the chosen `noisy` variant.
    pub fn self_adaptive(variant: NoisyVariant) -> TrafficRulesConfig {
        TrafficRulesConfig {
            mode: RecognitionMode::SelfAdaptive(variant),
            ..TrafficRulesConfig::default()
        }
    }

    /// Whether the adaptive rule-sets are active.
    pub fn is_adaptive(&self) -> bool {
        matches!(self.mode, RecognitionMode::SelfAdaptive(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_come_from_fundamental_diagram() {
        let c = TrafficRulesConfig::default();
        assert!((c.density_upper - 84.0).abs() < 1e-9);
        assert!((c.flow_lower - 1512.0).abs() < 1e-9);
        assert!(c.is_adaptive());
    }

    #[test]
    fn mode_constructors() {
        assert_eq!(TrafficRulesConfig::static_mode().mode, RecognitionMode::Static);
        assert!(!TrafficRulesConfig::static_mode().is_adaptive());
        let c = TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated);
        assert_eq!(c.mode, RecognitionMode::SelfAdaptive(NoisyVariant::CrowdValidated));
    }
}
