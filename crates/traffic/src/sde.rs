//! Conversion of scenario SDE records into RTEC input facts.
//!
//! A bus probe record becomes the pair of facts of formalisation (1):
//!
//! ```text
//! happensAt(move(Bus, Line, Operator, Delay), T)
//! holdsAt(gps(Bus, Lon, Lat, Direction, Congestion) = true, T)
//! ```
//!
//! and a SCATS record becomes
//!
//! ```text
//! happensAt(traffic(Int, A, S, D, F), T)
//! ```
//!
//! The `crowd(LonInt, LatInt, Val)` events produced by the crowdsourcing
//! component are also input events of the rule library.

use insight_datagen::stream::{BusRecord, ScatsRecord, Sde, SdeBody};
use insight_rtec::event::{Event, FluentObs, Stamped};
use insight_rtec::term::Term;

/// Symbol names of the input SDE vocabulary.
pub mod names {
    /// `move(Bus, Line, Operator, Delay)` event.
    pub const MOVE: &str = "move";
    /// `gps(Bus, Lon, Lat, Direction, Congestion)` input fluent.
    pub const GPS: &str = "gps";
    /// `traffic(Int, A, S, D, F)` event.
    pub const TRAFFIC: &str = "traffic";
    /// `crowd(LonInt, LatInt, Val)` event from the crowdsourcing component.
    pub const CROWD: &str = "crowd";
    /// `citizenReport(User, Lon, Lat, Polarity)` — classified
    /// micro-blogging report (extension source).
    pub const CITIZEN_REPORT: &str = "citizenReport";
}

/// Crowd answer values.
pub mod vals {
    use insight_rtec::term::Term;

    /// There is a congestion according to the crowd.
    pub fn positive() -> Term {
        Term::sym("positive")
    }

    /// No congestion according to the crowd.
    pub fn negative() -> Term {
        Term::sym("negative")
    }

    /// Maps a boolean congestion answer to `positive`/`negative`.
    pub fn of_bool(congested: bool) -> Term {
        if congested {
            positive()
        } else {
            negative()
        }
    }
}

/// The `move` event of a bus record.
pub fn move_event(r: &BusRecord, time: i64) -> Event {
    Event::new(
        names::MOVE,
        [
            Term::int(r.bus as i64),
            Term::int(r.line as i64),
            Term::int(r.operator as i64),
            Term::int(r.delay_s),
        ],
        time,
    )
}

/// The `gps` fluent observation of a bus record.
pub fn gps_obs(r: &BusRecord, time: i64) -> FluentObs {
    FluentObs::new(
        names::GPS,
        [
            Term::int(r.bus as i64),
            Term::float(r.lon),
            Term::float(r.lat),
            Term::int(r.direction as i64),
            Term::int(r.congestion as i64),
        ],
        true,
        time,
    )
}

/// The `traffic` event of a SCATS record.
pub fn traffic_event(r: &ScatsRecord, time: i64) -> Event {
    Event::new(
        names::TRAFFIC,
        [
            Term::int(r.intersection as i64),
            Term::int(r.approach as i64),
            Term::int(r.sensor as i64),
            Term::float(r.density),
            Term::float(r.flow),
        ],
        time,
    )
}

/// A `crowd(LonInt, LatInt, Val)` event.
pub fn crowd_event(lon: f64, lat: f64, congested: bool, time: i64) -> Event {
    Event::new(names::CROWD, [Term::float(lon), Term::float(lat), vals::of_bool(congested)], time)
}

/// Classifies a citizen report's text and converts it into a
/// `citizenReport(User, Lon, Lat, Polarity)` event; chatter yields `None`.
pub fn citizen_report_event(report: &insight_datagen::citizens::CitizenReport) -> Option<Event> {
    let congested = insight_datagen::citizens::classify(&report.text)?;
    Some(Event::new(
        names::CITIZEN_REPORT,
        [
            Term::int(report.user as i64),
            Term::float(report.lon),
            Term::float(report.lat),
            Term::int(congested as i64),
        ],
        report.time,
    ))
}

/// The RTEC input facts of one scenario SDE, preserving its arrival time.
pub fn to_rtec(sde: &Sde) -> (Vec<Stamped<Event>>, Vec<Stamped<FluentObs>>) {
    match &sde.body {
        SdeBody::Bus(r) => (
            vec![Stamped::arriving_at(move_event(r, sde.time), sde.arrival)],
            vec![Stamped::arriving_at(gps_obs(r, sde.time), sde.arrival)],
        ),
        SdeBody::Scats(r) => {
            (vec![Stamped::arriving_at(traffic_event(r, sde.time), sde.arrival)], vec![])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus_record() -> BusRecord {
        BusRecord {
            bus: 33009,
            line: 10,
            operator: 7,
            delay_s: 400,
            lon: -6.26,
            lat: 53.35,
            direction: 1,
            congestion: true,
        }
    }

    #[test]
    fn move_event_matches_paper_example() {
        let e = move_event(&bus_record(), 99);
        assert_eq!(e.to_string(), "happensAt(move(33009, 10, 7, 400), 99)");
    }

    #[test]
    fn gps_obs_encodes_flags_as_ints() {
        let o = gps_obs(&bus_record(), 99);
        assert_eq!(o.args[3], Term::int(1));
        assert_eq!(o.args[4], Term::int(1));
        assert_eq!(o.value, Term::Bool(true));
    }

    #[test]
    fn traffic_event_carries_measurements() {
        let r = ScatsRecord {
            intersection: 5,
            approach: 2,
            sensor: 17,
            density: 90.0,
            flow: 1200.0,
            lon: -6.3,
            lat: 53.34,
        };
        let e = traffic_event(&r, 360);
        assert_eq!(e.args.len(), 5);
        assert_eq!(e.args[0], Term::int(5));
        assert_eq!(e.args[3], Term::float(90.0));
    }

    #[test]
    fn crowd_event_values() {
        let e = crowd_event(-6.26, 53.35, true, 5);
        assert_eq!(e.args[2], Term::sym("positive"));
        let e = crowd_event(-6.26, 53.35, false, 5);
        assert_eq!(e.args[2], Term::sym("negative"));
    }

    #[test]
    fn to_rtec_preserves_arrival() {
        let sde = Sde { time: 100, arrival: 130, body: SdeBody::Bus(bus_record()) };
        let (events, obs) = to_rtec(&sde);
        assert_eq!(events.len(), 1);
        assert_eq!(obs.len(), 1);
        assert_eq!(events[0].arrival, 130);
        assert_eq!(events[0].item.time, 100);
        assert_eq!(obs[0].arrival, 130);
    }
}
