//! # insight-traffic — the Dublin traffic complex event definitions
//!
//! Implements Section 4.3 of the EDBT 2014 paper on top of the
//! [`insight_rtec`] Event Calculus engine: every rule-set printed in the
//! paper, machine-checked against the synthetic Dublin scenario.
//!
//! | Paper artefact | Here |
//! |---|---|
//! | `delayIncrease` CE | [`rules`] (derived event) |
//! | rule-set (2) `scatsCongestion` | [`rules`] (simple fluent) |
//! | `scatsIntCongestion` | [`rules`] (statically-determined; union of the intersection's sensors) |
//! | rule-set (3) `busCongestion` | [`rules`] (simple fluent over areas of interest) |
//! | `sourceDisagreement` | [`rules`] (statically-determined, `relative_complement_all`) |
//! | `disagree` / `agree` events | [`rules`] |
//! | rule-set (4) / (5) `noisy(Bus)` | [`rules`], selected by [`config::NoisyVariant`] |
//! | rule-set (3′) noise-filtered `busCongestion` | [`rules`], self-adaptive mode |
//! | SCATS-sensor reliability (omitted in the paper "to save space") | [`rules`], `noisyScats` |
//! | flow/density trend CEs | [`rules`] (`flowTrend`, `densityTrend`) |
//! | 4-region distributed recognition (§7.1) | [`distributed`] |
//!
//! [`recognizer::TrafficRecognizer`] wraps one engine with typed ingestion
//! of the scenario's SDE records and typed access to the recognised CEs;
//! [`distributed::DistributedRecognizer`] runs one recogniser per SCATS
//! region on its own thread, as the paper's evaluation does.

#![warn(missing_docs)]

pub mod config;
pub mod distributed;
pub mod fixtures;
pub mod geo;
pub mod recognizer;
pub mod rules;
pub mod sde;

pub use config::{NoisyVariant, RecognitionMode, TrafficRulesConfig};
pub use distributed::DistributedRecognizer;
pub use recognizer::{TrafficRecognition, TrafficRecognizer};
