//! A typed facade over one RTEC engine running the traffic rule library.

use crate::config::TrafficRulesConfig;
use crate::geo::close_builtin;
use crate::rules::{build_ruleset, ce, rel};
use crate::sde;
use insight_datagen::scats::ScatsDeployment;
use insight_datagen::stream::Sde;
use insight_rtec::engine::{Engine, Recognition};
use insight_rtec::error::RtecError;
use insight_rtec::event::Event;
use insight_rtec::interval::IntervalList;
use insight_rtec::term::Term;
use insight_rtec::time::Time;
use insight_rtec::window::WindowConfig;

/// An instrumented intersection as the recogniser needs it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectionInfo {
    /// Intersection id.
    pub id: i64,
    /// Longitude.
    pub lon: f64,
    /// Latitude.
    pub lat: f64,
}

/// One engine + the traffic rule library.
pub struct TrafficRecognizer {
    engine: Engine,
    config: TrafficRulesConfig,
}

impl TrafficRecognizer {
    /// Builds a recogniser for the given intersections. The areas of
    /// interest default to the intersection locations (the paper's choice);
    /// `extra_areas` adds more.
    pub fn new(
        config: TrafficRulesConfig,
        window: WindowConfig,
        intersections: &[IntersectionInfo],
        extra_areas: &[(f64, f64)],
    ) -> Result<TrafficRecognizer, RtecError> {
        let mut config = config;
        if !extra_areas.is_empty() {
            // Extra areas of interest: busCongestion must run its own
            // spatial join over the `area` relation.
            config.shared_spatial_join = false;
        }
        let ruleset = build_ruleset(&config)?;
        let mut engine = Engine::new(ruleset, window);
        engine.register_builtin("close", close_builtin(config.close_threshold_m))?;
        engine.set_relation(
            rel::SCATS_INTERSECTION,
            intersections
                .iter()
                .map(|i| vec![Term::int(i.id), Term::float(i.lon), Term::float(i.lat)])
                .collect(),
        )?;
        let mut areas: Vec<Vec<Term>> =
            intersections.iter().map(|i| vec![Term::float(i.lon), Term::float(i.lat)]).collect();
        areas
            .extend(extra_areas.iter().map(|&(lon, lat)| vec![Term::float(lon), Term::float(lat)]));
        engine.set_relation(rel::AREA, areas)?;
        Ok(TrafficRecognizer { engine, config })
    }

    /// Builds a recogniser covering a whole SCATS deployment.
    pub fn from_deployment(
        config: TrafficRulesConfig,
        window: WindowConfig,
        scats: &ScatsDeployment,
    ) -> Result<TrafficRecognizer, RtecError> {
        let infos: Vec<IntersectionInfo> = scats
            .intersections()
            .iter()
            .map(|i| IntersectionInfo { id: i.id as i64, lon: i.lon, lat: i.lat })
            .collect();
        let approach_congestion = config.approach_congestion;
        let pairs_needed = config.intersection_congestion_n == 2;
        let mut rec = TrafficRecognizer::new(config, window, &infos, &[])?;
        if approach_congestion {
            let mut approaches: Vec<Vec<Term>> = scats
                .sensors()
                .iter()
                .map(|s| vec![Term::int(s.intersection as i64), Term::int(s.approach as i64)])
                .collect();
            approaches.sort();
            approaches.dedup();
            rec.engine.set_relation(crate::rules::rel::SCATS_APPROACH, approaches)?;
        }
        if pairs_needed {
            let mut pairs: Vec<Vec<Term>> = Vec::new();
            for i in scats.intersections() {
                for (a, &s1) in i.sensors.iter().enumerate() {
                    for &s2 in &i.sensors[a + 1..] {
                        pairs.push(vec![
                            Term::int(i.id as i64),
                            Term::int(s1 as i64),
                            Term::int(s2 as i64),
                        ]);
                    }
                }
            }
            rec.engine.set_relation(crate::rules::rel::SCATS_SENSOR_PAIR, pairs)?;
        }
        Ok(rec)
    }

    /// The active configuration.
    pub fn config(&self) -> &TrafficRulesConfig {
        &self.config
    }

    /// Enables or disables incremental (delta-aware) evaluation on the
    /// underlying engine. Disabling re-evaluates the full window at every
    /// query — the reference behaviour, useful for A/B benchmarks.
    pub fn set_incremental(&mut self, on: bool) {
        self.engine.set_incremental(on);
    }

    /// Enables or disables parallel evaluation of independent strata on the
    /// underlying engine. Off by default; the serial order is the reference
    /// behaviour for A/B benchmarks.
    pub fn set_parallel_strata(&mut self, on: bool) {
        self.engine.set_parallel_strata(on);
    }

    /// Switches the underlying engine to (or from) the pre-compiled
    /// execution plan (see [`insight_rtec::compile::CompiledPlan`]). The
    /// plan is compiled once, on the first switch.
    pub fn set_compiled(&mut self, on: bool) {
        self.engine.set_compiled(on);
    }

    /// Selects the compiled engine's data plane: the slot-indexed retained
    /// state with arena-backed intervals (the default) or the legacy
    /// per-window rebuild path — the arena-off A/B reference.
    pub fn set_arena(&mut self, on: bool) {
        self.engine.set_arena(on);
    }

    /// Installs a compiled plan shared with other recognisers over the same
    /// rule library (e.g. the region replicas of
    /// [`crate::distributed::DistributedRecognizer`]) and switches the
    /// engine to compiled evaluation.
    pub fn set_compiled_plan(
        &mut self,
        plan: std::sync::Arc<insight_rtec::compile::CompiledPlan>,
    ) -> Result<(), RtecError> {
        self.engine.set_compiled_plan(plan)
    }

    /// The installed compiled plan, if the recogniser runs compiled.
    pub fn compiled_plan(&self) -> Option<&std::sync::Arc<insight_rtec::compile::CompiledPlan>> {
        self.engine.compiled_plan()
    }

    /// Serialises the underlying engine's windowed recognition state (see
    /// [`Engine::snapshot_state`]); restore into a recogniser rebuilt with
    /// the same configuration and intersections.
    pub fn snapshot_state(&self) -> String {
        self.engine.snapshot_state()
    }

    /// Restores state captured by [`TrafficRecognizer::snapshot_state`]
    /// (see [`Engine::restore_state`]).
    pub fn restore_state(&mut self, snapshot: &str) -> Result<(), RtecError> {
        self.engine.restore_state(snapshot)
    }

    /// Ingests one scenario SDE (move+gps or traffic), preserving its
    /// arrival time.
    pub fn ingest(&mut self, record: &Sde) -> Result<(), RtecError> {
        let (events, obs) = sde::to_rtec(record);
        for e in events {
            self.engine.add_stamped_event(e)?;
        }
        for o in obs {
            self.engine.add_stamped_obs(o)?;
        }
        Ok(())
    }

    /// Ingests a crowd answer for the intersection at `(lon, lat)`.
    pub fn ingest_crowd(
        &mut self,
        lon: f64,
        lat: f64,
        congested: bool,
        time: Time,
    ) -> Result<(), RtecError> {
        self.engine.add_event(sde::crowd_event(lon, lat, congested, time))
    }

    /// Ingests a citizen report (only meaningful when
    /// `config.citizen_reports` is enabled); chatter is silently skipped.
    pub fn ingest_citizen_report(
        &mut self,
        report: &insight_datagen::citizens::CitizenReport,
    ) -> Result<(), RtecError> {
        match sde::citizen_report_event(report) {
            Some(event) => self.engine.add_event(event),
            None => Ok(()),
        }
    }

    /// Runs recognition at query time `q`.
    pub fn query(&mut self, q: Time) -> Result<TrafficRecognition, RtecError> {
        Ok(TrafficRecognition { raw: self.engine.query(q)? })
    }

    /// Buffered input items not yet expired.
    pub fn buffered(&self) -> usize {
        self.engine.buffered()
    }
}

/// Typed access to the CEs recognised at one query time.
#[derive(Debug, Clone)]
pub struct TrafficRecognition {
    /// The underlying engine result.
    pub raw: Recognition,
}

// The engine's grounding enumeration order depends on its internal hash
// maps, so every typed accessor below sorts by a value-based key — callers
// (alert feeds, the proactive controller, golden snapshots) see the same
// order on every run.
fn location_entries<'a>(raw: &'a Recognition, fluent: &str) -> Vec<((f64, f64), &'a IntervalList)> {
    let mut entries: Vec<((f64, f64), &IntervalList)> = raw
        .fluent_entries(fluent)
        .iter()
        .filter_map(|e| match (e.args.first()?.as_f64(), e.args.get(1)?.as_f64()) {
            (Some(lon), Some(lat)) => Some(((lon, lat), &e.ivs)),
            _ => None,
        })
        .collect();
    entries.sort_by(|a, b| a.0 .0.total_cmp(&b.0 .0).then(a.0 .1.total_cmp(&b.0 .1)));
    entries
}

/// Sorts events by `(time, rendered args)` — a value-based key, unlike the
/// interned-symbol `Ord` on [`Event`]'s fields, whose order depends on
/// process-global interning order.
fn sorted_events(mut events: Vec<&Event>) -> Vec<&Event> {
    events
        .sort_by_cached_key(|e| (e.time, e.args.iter().map(|a| a.to_string()).collect::<Vec<_>>()));
    events
}

impl TrafficRecognition {
    /// `scatsIntCongestion` intervals per intersection location.
    pub fn congested_intersections(&self) -> Vec<((f64, f64), &IntervalList)> {
        location_entries(&self.raw, ce::SCATS_INT_CONGESTION)
    }

    /// `busCongestion` intervals per area of interest.
    pub fn bus_congestions(&self) -> Vec<((f64, f64), &IntervalList)> {
        location_entries(&self.raw, ce::BUS_CONGESTION)
    }

    /// `sourceDisagreement` intervals per intersection location.
    pub fn source_disagreements(&self) -> Vec<((f64, f64), &IntervalList)> {
        location_entries(&self.raw, ce::SOURCE_DISAGREEMENT)
    }

    /// Source disagreements whose intervals are still open at the query
    /// time — the ones worth crowdsourcing about right now. Sorted by
    /// `(lon, lat)` so the list (and in particular which disagreement a
    /// caller picks "first") is independent of the engine's internal
    /// grounding order, which varies with SDE ingestion order.
    pub fn open_disagreements(&self) -> Vec<(f64, f64)> {
        let q = self.raw.query_time;
        let mut open: Vec<(f64, f64)> = self
            .source_disagreements()
            .into_iter()
            .filter(|(_, ivs)| ivs.contains(q) || ivs.iter().any(|iv| iv.is_open()))
            .map(|(loc, _)| loc)
            .collect();
        open.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        open
    }

    /// `noisy(Bus)` intervals per bus id, sorted by bus id.
    pub fn noisy_buses(&self) -> Vec<(i64, &IntervalList)> {
        let mut buses: Vec<(i64, &IntervalList)> = self
            .raw
            .fluent_entries(ce::NOISY)
            .iter()
            .filter_map(|e| e.args.first()?.as_i64().map(|b| (b, &e.ivs)))
            .collect();
        buses.sort_by_key(|(b, _)| *b);
        buses
    }

    /// `delayIncrease` events, time-sorted.
    pub fn delay_increases(&self) -> Vec<&Event> {
        sorted_events(self.raw.events_of(ce::DELAY_INCREASE))
    }

    /// `disagree` events, time-sorted.
    pub fn disagreements(&self) -> Vec<&Event> {
        sorted_events(self.raw.events_of(ce::DISAGREE))
    }

    /// `agree` events, time-sorted.
    pub fn agreements(&self) -> Vec<&Event> {
        sorted_events(self.raw.events_of(ce::AGREE))
    }

    /// Flow/density trend events, time-sorted.
    pub fn trend_events(&self) -> Vec<&Event> {
        let mut v = self.raw.events_of(ce::FLOW_TREND);
        v.extend(self.raw.events_of(ce::DENSITY_TREND));
        sorted_events(v)
    }

    /// Number of input SDE facts inside this window.
    pub fn sde_count(&self) -> usize {
        self.raw.sde_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_datagen::scenario::{Scenario, ScenarioConfig};

    fn window() -> WindowConfig {
        WindowConfig::new(1800, 1800).unwrap()
    }

    #[test]
    fn runs_over_a_generated_scenario() {
        let scenario = Scenario::generate(ScenarioConfig::small(1800, 21)).unwrap();
        let mut rec = TrafficRecognizer::from_deployment(
            TrafficRulesConfig::default(),
            window(),
            &scenario.scats,
        )
        .unwrap();
        for sde in &scenario.sdes {
            rec.ingest(sde).unwrap();
        }
        let (_, end) = scenario.window();
        let result = rec.query(end).unwrap();
        assert!(result.sde_count() > 0);
        // The rush-hour scenario must produce at least some congestion
        // evidence from one of the sources.
        let evidence = result.congested_intersections().len()
            + result.bus_congestions().len()
            + result.disagreements().len()
            + result.agreements().len();
        assert!(evidence > 0, "no CEs recognised over a rush-hour scenario");
    }

    #[test]
    fn faulty_buses_become_noisy_in_adaptive_mode() {
        let mut cfg = ScenarioConfig::small(1800, 33);
        cfg.fleet.faulty_fraction = 0.5;
        let scenario = Scenario::generate(cfg).unwrap();
        let mut rec = TrafficRecognizer::from_deployment(
            TrafficRulesConfig::default(),
            window(),
            &scenario.scats,
        )
        .unwrap();
        for s in &scenario.sdes {
            rec.ingest(s).unwrap();
        }
        let (_, end) = scenario.window();
        let result = rec.query(end).unwrap();
        if result.disagreements().is_empty() {
            // The scenario happened to produce no close encounters; the
            // other tests cover the rule logic deterministically.
            return;
        }
        assert!(
            !result.noisy_buses().is_empty(),
            "disagreeing buses should be marked noisy under the pessimistic variant"
        );
        // Noisy buses are predominantly the faulty ones.
        let faulty: Vec<i64> =
            scenario.fleet.buses.iter().filter(|b| b.faulty).map(|b| b.id as i64).collect();
        let noisy_ids: Vec<i64> = result.noisy_buses().iter().map(|&(b, _)| b).collect();
        let hits = noisy_ids.iter().filter(|b| faulty.contains(b)).count();
        assert!(
            hits * 2 >= noisy_ids.len(),
            "noisy set should be dominated by faulty buses: {hits}/{}",
            noisy_ids.len()
        );
    }

    #[test]
    fn crowd_input_flows_into_recognition() {
        let intersections = [IntersectionInfo { id: 1, lon: -6.26, lat: 53.35 }];
        let mut rec =
            TrafficRecognizer::new(TrafficRulesConfig::default(), window(), &intersections, &[])
                .unwrap();
        rec.ingest_crowd(-6.26, 53.35, true, 100).unwrap();
        let result = rec.query(1800).unwrap();
        // The crowd event itself is an input; recognition just must accept it.
        assert_eq!(result.sde_count(), 1);
    }

    #[test]
    fn ingest_rejects_nothing_from_valid_scenarios() {
        let scenario = Scenario::generate(ScenarioConfig::small(600, 5)).unwrap();
        let mut rec = TrafficRecognizer::from_deployment(
            TrafficRulesConfig::static_mode(),
            window(),
            &scenario.scats,
        )
        .unwrap();
        for s in &scenario.sdes {
            rec.ingest(s).unwrap();
        }
        assert!(rec.buffered() > 0);
    }
}
