//! The atemporal `close/4` predicate.
//!
//! "`close` is an atemporal predicate computing the distance between two
//! points and comparing them against a threshold" (§4.3). Registered with
//! the engine as a builtin over `(LonB, LatB, Lon, Lat)`.

use insight_datagen::network::distance_m;
use insight_rtec::term::Term;

/// Returns the `close/4` implementation for a threshold in metres.
pub fn close_builtin(threshold_m: f64) -> impl Fn(&[Term]) -> bool + Send + Sync + 'static {
    move |args: &[Term]| {
        let nums: Option<Vec<f64>> = args.iter().map(Term::as_f64).collect();
        match nums.as_deref() {
            Some([lon_b, lat_b, lon, lat]) => {
                distance_m((*lon_b, *lat_b), (*lon, *lat)) <= threshold_m
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_points_within_threshold() {
        let close = close_builtin(300.0);
        // ~110 m apart in latitude.
        assert!(close(&[
            Term::float(-6.26),
            Term::float(53.3500),
            Term::float(-6.26),
            Term::float(53.3510),
        ]));
        // ~1.1 km apart.
        assert!(!close(&[
            Term::float(-6.26),
            Term::float(53.35),
            Term::float(-6.26),
            Term::float(53.36),
        ]));
    }

    #[test]
    fn identical_points_are_close() {
        let close = close_builtin(1.0);
        assert!(close(&[
            Term::float(-6.26),
            Term::float(53.35),
            Term::float(-6.26),
            Term::float(53.35),
        ]));
    }

    #[test]
    fn rejects_malformed_arguments() {
        let close = close_builtin(100.0);
        assert!(!close(&[Term::float(1.0)]), "wrong arity");
        assert!(!close(&[Term::sym("x"), Term::float(1.0), Term::float(1.0), Term::float(1.0)]));
    }
}
