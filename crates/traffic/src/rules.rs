//! The paper's CE rule-sets, expressed in the RTEC rule AST.
//!
//! [`build_ruleset`] assembles the full rule library for a
//! [`TrafficRulesConfig`]; the resulting [`RuleSet`] expects two relations
//! to be provided to the engine —
//!
//! * `scats_intersection(Int, LonInt, LatInt)` — the instrumented
//!   intersections and their coordinates, and
//! * `area(Lon, Lat)` — the areas of interest congestion is tracked for
//!   (typically the SCATS intersection locations, the paper's choice) —
//!
//! plus the `close/4` builtin of [`crate::geo`].

use crate::config::{NoisyVariant, RecognitionMode, TrafficRulesConfig};
use crate::sde::names;
use insight_rtec::dsl::{
    any, builtin, cmp, cnst, event_head, event_pat, fluent, fluent_pat, guard, happens, holds,
    not_holds, pat, relation, term_ne, val, RuleSet, RuleSetBuilder,
};
use insight_rtec::error::RtecError;
use insight_rtec::rule::{CmpOp, IntervalExpr, NumExpr, ValRef};
use insight_rtec::term::Term;

/// Names of the derived CEs and fluents.
pub mod ce {
    /// `delayIncrease(Bus, Lon', Lat', Lon, Lat)` derived event.
    pub const DELAY_INCREASE: &str = "delayIncrease";
    /// `scatsCongestion(Int, A, S) = true` simple fluent (rule-set 2).
    pub const SCATS_CONGESTION: &str = "scatsCongestion";
    /// `scatsIntCongestion(LonInt, LatInt) = true` statically-determined.
    pub const SCATS_INT_CONGESTION: &str = "scatsIntCongestion";
    /// `busCongestion(Lon, Lat) = true` simple fluent (rule-set 3 / 3′).
    pub const BUS_CONGESTION: &str = "busCongestion";
    /// `sourceDisagreement(LonInt, LatInt) = true` statically-determined.
    pub const SOURCE_DISAGREEMENT: &str = "sourceDisagreement";
    /// `disagree(Bus, LonInt, LatInt, Val)` derived event.
    pub const DISAGREE: &str = "disagree";
    /// `agree(Bus)` derived event.
    pub const AGREE: &str = "agree";
    /// `noisy(Bus) = true` simple fluent (rule-set 4 or 5).
    pub const NOISY: &str = "noisy";
    /// `noisyScats(Int) = true` — SCATS reliability (omitted in the paper).
    pub const NOISY_SCATS: &str = "noisyScats";
    /// `flowTrend(Int, A, S, Dir)` derived event.
    pub const FLOW_TREND: &str = "flowTrend";
    /// `densityTrend(Int, A, S, Dir)` derived event.
    pub const DENSITY_TREND: &str = "densityTrend";
    /// `busNearArea(Bus, Lon, Lat, Cong)` — internal: a bus emission close
    /// to an area of interest. Factors the expensive `move × gps × area ×
    /// close` join out of the `busCongestion` rules so it runs once per
    /// window instead of once per dependent rule.
    pub const BUS_NEAR_AREA: &str = "busNearArea";
    /// `busNearInt(Bus, LonInt, LatInt, Cong)` — internal: a bus emission
    /// close to a SCATS intersection, shared by the `disagree`/`agree`
    /// rules.
    pub const BUS_NEAR_INT: &str = "busNearInt";
    /// `citizenCongestion(Lon, Lat) = true` — extension fluent over
    /// classified micro-blogging reports.
    pub const CITIZEN_CONGESTION: &str = "citizenCongestion";
    /// `scatsApproachCongestion(Int, A) = true` — the approach level of the
    /// paper's "more structured intersection congestion definition that
    /// depends on approach congestion which in turn would depend on sensor
    /// congestion" (§4.3).
    pub const SCATS_APPROACH_CONGESTION: &str = "scatsApproachCongestion";
}

/// Relation names the engine must be provided with.
pub mod rel {
    /// `scats_intersection(Int, LonInt, LatInt)`.
    pub const SCATS_INTERSECTION: &str = "scats_intersection";
    /// `area(Lon, Lat)` — the areas of interest.
    pub const AREA: &str = "area";
    /// `scats_approach(Int, A)` — the instrumented approaches; only needed
    /// when `approach_congestion` is enabled.
    pub const SCATS_APPROACH: &str = "scats_approach";
    /// `scats_sensor_pair(Int, S1, S2)` — unordered sensor pairs per
    /// intersection; only needed when `intersection_congestion_n == 2`.
    pub const SCATS_SENSOR_PAIR: &str = "scats_sensor_pair";
}

/// Builds the complete rule set for the configuration.
pub fn build_ruleset(config: &TrafficRulesConfig) -> Result<RuleSet, RtecError> {
    let mut b = RuleSetBuilder::new();
    b.declare_event(names::MOVE, 4);
    b.declare_event(names::TRAFFIC, 5);
    b.declare_event(names::CROWD, 3);
    if config.citizen_reports {
        b.declare_event(names::CITIZEN_REPORT, 4);
    }
    b.declare_input_fluent(names::GPS, 5);
    b.declare_relation(rel::SCATS_INTERSECTION, 3);
    b.declare_relation(rel::AREA, 2);
    b.declare_builtin("close", 4);

    delay_increase(&mut b, config);
    scats_congestion(&mut b, config);
    match config.intersection_congestion_n {
        2 => {
            b.declare_relation(rel::SCATS_SENSOR_PAIR, 3);
            scats_int_congestion_n2(&mut b);
        }
        _ => scats_int_congestion(&mut b),
    }
    if config.approach_congestion {
        b.declare_relation(rel::SCATS_APPROACH, 2);
        scats_approach_congestion(&mut b);
    }
    trends(&mut b, config);

    match config.mode {
        RecognitionMode::Static => {
            bus_near(&mut b, ce::BUS_NEAR_AREA, rel::AREA);
            bus_congestion(&mut b, false, ce::BUS_NEAR_AREA);
        }
        RecognitionMode::SelfAdaptive(variant) => {
            bus_near(&mut b, ce::BUS_NEAR_INT, rel::SCATS_INTERSECTION);
            if config.shared_spatial_join {
                // Areas of interest == SCATS intersections: busCongestion
                // can reuse the busNearInt join.
                bus_congestion(&mut b, true, ce::BUS_NEAR_INT);
            } else {
                bus_near(&mut b, ce::BUS_NEAR_AREA, rel::AREA);
                bus_congestion(&mut b, true, ce::BUS_NEAR_AREA);
            }
            disagree_agree(&mut b);
            noisy(&mut b, variant, config.crowd_window_s);
        }
    }
    source_disagreement(&mut b);
    if config.scats_reliability {
        noisy_scats(&mut b);
    }
    if config.citizen_reports {
        citizen_congestion(&mut b);
    }

    b.build()
}

/// The instantaneous `delayIncrease` CE (§4.1).
fn delay_increase(b: &mut RuleSetBuilder, config: &TrafficRulesConfig) {
    let bus = b.var("di_Bus");
    let d1 = b.var("di_D1");
    let d2 = b.var("di_D2");
    let (lon1, lat1) = (b.var("di_Lon1"), b.var("di_Lat1"));
    let (lon2, lat2) = (b.var("di_Lon2"), b.var("di_Lat2"));
    let t1 = b.var("di_T1");
    let t2 = b.var("di_T2");
    b.derived_event(
        event_head(ce::DELAY_INCREASE, [pat(bus), pat(lon1), pat(lat1), pat(lon2), pat(lat2)]),
        t2,
        [
            happens(event_pat(names::MOVE, [pat(bus), any(), any(), pat(d1)]), t1),
            holds(
                fluent_pat(names::GPS, [pat(bus), pat(lon1), pat(lat1), any(), any()], val(true)),
                t1,
            ),
            happens(event_pat(names::MOVE, [pat(bus), any(), any(), pat(d2)]), t2),
            holds(
                fluent_pat(names::GPS, [pat(bus), pat(lon2), pat(lat2), any(), any()], val(true)),
                t2,
            ),
            guard(cmp(NumExpr::sub(d2.into(), d1.into()), CmpOp::Gt, config.delay_increase_d)),
            guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
            guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Lt, config.delay_increase_t)),
        ],
    );
}

/// Rule-set (2): `scatsCongestion(Int, A, S) = true`.
fn scats_congestion(b: &mut RuleSetBuilder, config: &TrafficRulesConfig) {
    let (int, a, s) = (b.var("sc_Int"), b.var("sc_A"), b.var("sc_S"));
    let (d, f) = (b.var("sc_D"), b.var("sc_F"));
    let head = || fluent(ce::SCATS_CONGESTION, [pat(int), pat(a), pat(s)], val(true));

    let t = b.var("sc_Ti");
    b.initiated(
        head(),
        t,
        [
            happens(event_pat(names::TRAFFIC, [pat(int), pat(a), pat(s), pat(d), pat(f)]), t),
            guard(cmp(d, CmpOp::Ge, config.density_upper)),
            guard(cmp(f, CmpOp::Le, config.flow_lower)),
        ],
    );
    let t = b.var("sc_Tt1");
    b.terminated(
        head(),
        t,
        [
            happens(event_pat(names::TRAFFIC, [pat(int), pat(a), pat(s), pat(d), pat(f)]), t),
            guard(cmp(d, CmpOp::Lt, config.density_upper)),
        ],
    );
    let t = b.var("sc_Tt2");
    b.terminated(
        head(),
        t,
        [
            happens(event_pat(names::TRAFFIC, [pat(int), pat(a), pat(s), pat(d), pat(f)]), t),
            guard(cmp(f, CmpOp::Gt, config.flow_lower)),
        ],
    );
}

/// `scatsIntCongestion(LonInt, LatInt) = true`: a SCATS intersection is
/// congested while at least one of its sensors is (the `n = 1` instance of
/// the paper's family of intersection-congestion definitions; §4.3).
fn scats_int_congestion(b: &mut RuleSetBuilder) {
    let int = b.var("sic_Int");
    let (lon, lat) = (b.var("sic_Lon"), b.var("sic_Lat"));
    b.static_fluent(
        fluent(ce::SCATS_INT_CONGESTION, [pat(lon), pat(lat)], val(true)),
        [relation(rel::SCATS_INTERSECTION, [pat(int), pat(lon), pat(lat)])],
        IntervalExpr::Fluent(fluent_pat(ce::SCATS_CONGESTION, [pat(int), any(), any()], val(true))),
    );
}

/// The shared spatial join: `busNear*(Bus, Lon, Lat, Cong)` happens when a
/// bus emission is close to a location of the given relation. Factoring
/// this join into one derived event makes every dependent rule (the
/// `busCongestion`, `disagree` and `agree` definitions) a cheap scan, which
/// is what keeps the self-adaptive overhead of Figure 4 small.
fn bus_near(b: &mut RuleSetBuilder, head_name: &str, relation_name: &str) {
    let prefix = format!("bn_{head_name}");
    let bus = b.var(&format!("{prefix}_Bus"));
    let (lon_b, lat_b) = (b.var(&format!("{prefix}_LonB")), b.var(&format!("{prefix}_LatB")));
    let (lon, lat) = (b.var(&format!("{prefix}_Lon")), b.var(&format!("{prefix}_Lat")));
    let cong = b.var(&format!("{prefix}_Cong"));
    let t = b.var(&format!("{prefix}_T"));
    let rel_args = if relation_name == rel::SCATS_INTERSECTION {
        vec![any(), pat(lon), pat(lat)]
    } else {
        vec![pat(lon), pat(lat)]
    };
    b.derived_event(
        event_head(head_name, [pat(bus), pat(lon), pat(lat), pat(cong)]),
        t,
        [
            happens(event_pat(names::MOVE, [pat(bus), any(), any(), any()]), t),
            holds(
                fluent_pat(
                    names::GPS,
                    [pat(bus), pat(lon_b), pat(lat_b), any(), pat(cong)],
                    val(true),
                ),
                t,
            ),
            relation(relation_name, rel_args),
            builtin(
                "close",
                [ValRef::Var(lon_b), ValRef::Var(lat_b), ValRef::Var(lon), ValRef::Var(lat)],
            ),
        ],
    );
}

/// Rule-set (3) / (3′): `busCongestion(Lon, Lat) = true` over the areas of
/// interest. With `filter_noisy` the rule-set (3′) condition
/// `not holdsAt(noisy(Bus) = true)` is added, discarding unreliable buses.
fn bus_congestion(b: &mut RuleSetBuilder, filter_noisy: bool, near_event: &str) {
    let bus = b.var("bc_Bus");
    let (lon, lat) = (b.var("bc_Lon"), b.var("bc_Lat"));
    let head = || fluent(ce::BUS_CONGESTION, [pat(lon), pat(lat)], val(true));

    for (flag, initiate) in [(1i64, true), (0i64, false)] {
        let t = b.var(if initiate { "bc_Ti" } else { "bc_Tt" });
        let mut body =
            vec![happens(event_pat(near_event, [pat(bus), pat(lon), pat(lat), cnst(flag)]), t)];
        if filter_noisy {
            body.push(not_holds(fluent_pat(ce::NOISY, [pat(bus)], val(true)), t));
        }
        if initiate {
            b.initiated(head(), t, body);
        } else {
            b.terminated(head(), t, body);
        }
    }
}

/// The `disagree(Bus, LonInt, LatInt, Val)` and `agree(Bus)` events (§4.3).
fn disagree_agree(b: &mut RuleSetBuilder) {
    let bus = b.var("da_Bus");
    let (lon, lat) = (b.var("da_Lon"), b.var("da_Lat"));

    // (flag, scats congested?, verdict): flag=1 & no scats congestion ->
    // disagree positive; flag=0 & congestion -> disagree negative;
    // matching combinations -> agree.
    let cases: [(i64, bool, Option<&str>); 4] = [
        (1, false, Some("positive")),
        (0, true, Some("negative")),
        (1, true, None),
        (0, false, None),
    ];
    for (i, (flag, scats_congested, verdict)) in cases.into_iter().enumerate() {
        let t = b.var(&format!("da_T{i}"));
        let mut body = vec![happens(
            event_pat(ce::BUS_NEAR_INT, [pat(bus), pat(lon), pat(lat), cnst(flag)]),
            t,
        )];
        let scats_pat = fluent_pat(ce::SCATS_INT_CONGESTION, [pat(lon), pat(lat)], val(true));
        body.push(if scats_congested { holds(scats_pat, t) } else { not_holds(scats_pat, t) });
        match verdict {
            Some(v) => {
                b.derived_event(
                    event_head(ce::DISAGREE, [pat(bus), pat(lon), pat(lat), cnst(Term::sym(v))]),
                    t,
                    body,
                );
            }
            None => {
                b.derived_event(event_head(ce::AGREE, [pat(bus)]), t, body);
            }
        }
    }
}

/// Rule-set (4) or (5): the `noisy(Bus)` fluent.
fn noisy(b: &mut RuleSetBuilder, variant: NoisyVariant, crowd_window_s: f64) {
    let bus = b.var("n_Bus");
    let (lon, lat) = (b.var("n_Lon"), b.var("n_Lat"));
    let head = || fluent(ce::NOISY, [pat(bus)], val(true));

    match variant {
        NoisyVariant::CrowdValidated => {
            // initiatedAt: disagree and the crowd sides with SCATS.
            let t = b.var("n_Ti");
            let t2 = b.var("n_Ti2");
            let bus_val = b.var("n_BusVal");
            let crowd_val = b.var("n_CrowdVal");
            b.initiated(
                head(),
                t,
                [
                    happens(
                        event_pat(ce::DISAGREE, [pat(bus), pat(lon), pat(lat), pat(bus_val)]),
                        t,
                    ),
                    happens(event_pat(names::CROWD, [pat(lon), pat(lat), pat(crowd_val)]), t2),
                    guard(term_ne(bus_val, crowd_val)),
                    guard(cmp(NumExpr::sub(t2.into(), t.into()), CmpOp::Gt, 0.0)),
                    guard(cmp(NumExpr::sub(t2.into(), t.into()), CmpOp::Lt, crowd_window_s)),
                ],
            );
        }
        NoisyVariant::Pessimistic => {
            // initiatedAt: any disagreement (SCATS trusted by default).
            let t = b.var("n_Ti");
            b.initiated(
                head(),
                t,
                [happens(event_pat(ce::DISAGREE, [pat(bus), any(), any(), any()]), t)],
            );
        }
    }

    // terminatedAt: source agreement.
    let t = b.var("n_Tt1");
    b.terminated(head(), t, [happens(event_pat(ce::AGREE, [pat(bus)]), t)]);

    // terminatedAt: the crowd proves the bus correct. Rule-set (4)
    // terminates at the disagreement time T; rule-set (5) at the crowd
    // answer time T′ — both as printed in the paper.
    let t = b.var("n_Tt2");
    let t2 = b.var("n_Tt2b");
    let v = b.var("n_Val");
    let head_time = match variant {
        NoisyVariant::CrowdValidated => t,
        NoisyVariant::Pessimistic => t2,
    };
    b.terminated(
        head(),
        head_time,
        [
            happens(event_pat(ce::DISAGREE, [pat(bus), pat(lon), pat(lat), pat(v)]), t),
            happens(event_pat(names::CROWD, [pat(lon), pat(lat), pat(v)]), t2),
            guard(cmp(NumExpr::sub(t2.into(), t.into()), CmpOp::Gt, 0.0)),
            guard(cmp(NumExpr::sub(t2.into(), t.into()), CmpOp::Lt, crowd_window_s)),
        ],
    );
}

/// `sourceDisagreement(LonInt, LatInt) = true` via
/// `relative_complement_all` (§4.3).
fn source_disagreement(b: &mut RuleSetBuilder) {
    let int = b.var("sd_Int");
    let (lon, lat) = (b.var("sd_Lon"), b.var("sd_Lat"));
    b.static_fluent(
        fluent(ce::SOURCE_DISAGREEMENT, [pat(lon), pat(lat)], val(true)),
        [relation(rel::SCATS_INTERSECTION, [pat(int), pat(lon), pat(lat)])],
        IntervalExpr::RelComp(
            Box::new(IntervalExpr::Fluent(fluent_pat(
                ce::BUS_CONGESTION,
                [pat(lon), pat(lat)],
                val(true),
            ))),
            vec![IntervalExpr::Fluent(fluent_pat(
                ce::SCATS_INT_CONGESTION,
                [pat(lon), pat(lat)],
                val(true),
            ))],
        ),
    );
}

/// SCATS reliability from crowd answers — "the formalisation is similar and
/// omitted to save space" (§4.3 end); reconstructed here.
fn noisy_scats(b: &mut RuleSetBuilder) {
    let int = b.var("ns_Int");
    let (lon, lat) = (b.var("ns_Lon"), b.var("ns_Lat"));
    let head = || fluent(ce::NOISY_SCATS, [pat(int)], val(true));
    let scats_pat = || fluent_pat(ce::SCATS_INT_CONGESTION, [pat(lon), pat(lat)], val(true));

    // Crowd contradicts the sensors → the intersection's sensors are noisy.
    for (i, (crowd_val, congested)) in
        [("positive", false), ("negative", true)].into_iter().enumerate()
    {
        let t = b.var(&format!("ns_Ti{i}"));
        let mut body = vec![
            happens(event_pat(names::CROWD, [pat(lon), pat(lat), cnst(Term::sym(crowd_val))]), t),
            relation(rel::SCATS_INTERSECTION, [pat(int), pat(lon), pat(lat)]),
        ];
        body.push(if congested { holds(scats_pat(), t) } else { not_holds(scats_pat(), t) });
        b.initiated(head(), t, body);
    }
    // Crowd confirms the sensors → reliability restored.
    for (i, (crowd_val, congested)) in
        [("positive", true), ("negative", false)].into_iter().enumerate()
    {
        let t = b.var(&format!("ns_Tt{i}"));
        let mut body = vec![
            happens(event_pat(names::CROWD, [pat(lon), pat(lat), cnst(Term::sym(crowd_val))]), t),
            relation(rel::SCATS_INTERSECTION, [pat(int), pat(lon), pat(lat)]),
        ];
        body.push(if congested { holds(scats_pat(), t) } else { not_holds(scats_pat(), t) });
        b.terminated(head(), t, body);
    }
}

/// The `n = 2` member of the family: a SCATS intersection is congested
/// while at least two of its sensors are *simultaneously* congested —
/// realised as the union over sensor pairs of the pairwise interval
/// intersections.
fn scats_int_congestion_n2(b: &mut RuleSetBuilder) {
    let int = b.var("sic2_Int");
    let (s1, s2) = (b.var("sic2_S1"), b.var("sic2_S2"));
    let (lon, lat) = (b.var("sic2_Lon"), b.var("sic2_Lat"));
    b.static_fluent(
        fluent(ce::SCATS_INT_CONGESTION, [pat(lon), pat(lat)], val(true)),
        [
            relation(rel::SCATS_INTERSECTION, [pat(int), pat(lon), pat(lat)]),
            relation(rel::SCATS_SENSOR_PAIR, [pat(int), pat(s1), pat(s2)]),
        ],
        IntervalExpr::Intersect(vec![
            IntervalExpr::Fluent(fluent_pat(
                ce::SCATS_CONGESTION,
                [pat(int), any(), pat(s1)],
                val(true),
            )),
            IntervalExpr::Fluent(fluent_pat(
                ce::SCATS_CONGESTION,
                [pat(int), any(), pat(s2)],
                val(true),
            )),
        ]),
    );
}

/// `scatsApproachCongestion(Int, A) = true`: an approach is congested while
/// at least one of its sensors is — the intermediate level of the paper's
/// structured intersection-congestion definition family.
fn scats_approach_congestion(b: &mut RuleSetBuilder) {
    let (int, a) = (b.var("sac_Int"), b.var("sac_A"));
    b.static_fluent(
        fluent(ce::SCATS_APPROACH_CONGESTION, [pat(int), pat(a)], val(true)),
        [relation(rel::SCATS_APPROACH, [pat(int), pat(a)])],
        IntervalExpr::Fluent(fluent_pat(
            ce::SCATS_CONGESTION,
            [pat(int), pat(a), any()],
            val(true),
        )),
    );
}

/// Extension: `citizenCongestion(Lon, Lat) = true` from classified
/// micro-blogging reports — the §1 Twitter-style source, handled like the
/// bus congestion flags: a positive report near an area of interest
/// initiates the fluent, a free-flow report terminates it.
fn citizen_congestion(b: &mut RuleSetBuilder) {
    let user = b.var("cc_User");
    let (lon_r, lat_r) = (b.var("cc_LonR"), b.var("cc_LatR"));
    let (lon, lat) = (b.var("cc_Lon"), b.var("cc_Lat"));
    let head = || fluent(ce::CITIZEN_CONGESTION, [pat(lon), pat(lat)], val(true));
    for (flag, initiate) in [(1i64, true), (0i64, false)] {
        let t = b.var(if initiate { "cc_Ti" } else { "cc_Tt" });
        let body = [
            happens(
                event_pat(names::CITIZEN_REPORT, [pat(user), pat(lon_r), pat(lat_r), cnst(flag)]),
                t,
            ),
            relation(rel::AREA, [pat(lon), pat(lat)]),
            builtin(
                "close",
                [ValRef::Var(lon_r), ValRef::Var(lat_r), ValRef::Var(lon), ValRef::Var(lat)],
            ),
        ];
        if initiate {
            b.initiated(head(), t, body);
        } else {
            b.terminated(head(), t, body);
        }
    }
}

/// Flow and density trend CEs over consecutive readings of one sensor —
/// the "traffic flow and density trends for proactive decision-making" of
/// §4.3.
fn trends(b: &mut RuleSetBuilder, config: &TrafficRulesConfig) {
    let (int, a, s) = (b.var("tr_Int"), b.var("tr_A"), b.var("tr_S"));
    let (d1, f1) = (b.var("tr_D1"), b.var("tr_F1"));
    let (d2, f2) = (b.var("tr_D2"), b.var("tr_F2"));

    let specs: [(&str, bool, bool); 4] = [
        (ce::FLOW_TREND, true, true),     // flow up
        (ce::FLOW_TREND, true, false),    // flow down
        (ce::DENSITY_TREND, false, true), // density up
        (ce::DENSITY_TREND, false, false),
    ];
    for (i, (name, use_flow, up)) in specs.into_iter().enumerate() {
        let t1 = b.var(&format!("tr_T1_{i}"));
        let t2 = b.var(&format!("tr_T2_{i}"));
        let delta = if use_flow { config.trend_flow_delta } else { config.trend_density_delta };
        let (hi, lo) = if use_flow { (f2, f1) } else { (d2, d1) };
        let (hi, lo) = if up { (hi, lo) } else { (lo, hi) };
        b.derived_event(
            event_head(
                name,
                [pat(int), pat(a), pat(s), cnst(Term::sym(if up { "up" } else { "down" }))],
            ),
            t2,
            [
                happens(
                    event_pat(names::TRAFFIC, [pat(int), pat(a), pat(s), pat(d1), pat(f1)]),
                    t1,
                ),
                happens(
                    event_pat(names::TRAFFIC, [pat(int), pat(a), pat(s), pat(d2), pat(f2)]),
                    t2,
                ),
                guard(cmp(NumExpr::sub(hi.into(), lo.into()), CmpOp::Ge, delta)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Le, config.trend_window_s)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_rtec::engine::Engine;
    use insight_rtec::event::{Event, FluentObs};
    use insight_rtec::interval::Interval;
    use insight_rtec::window::WindowConfig;

    const INT_LON: f64 = -6.2600;
    const INT_LAT: f64 = 53.3500;

    fn engine(config: &TrafficRulesConfig) -> Engine {
        let rs = build_ruleset(config).expect("rule set builds");
        let mut e = Engine::new(rs, WindowConfig::new(10_000, 10_000).unwrap());
        e.register_builtin("close", crate::geo::close_builtin(config.close_threshold_m)).unwrap();
        e.set_relation(
            rel::SCATS_INTERSECTION,
            vec![vec![Term::int(1), Term::float(INT_LON), Term::float(INT_LAT)]],
        )
        .unwrap();
        e.set_relation(rel::AREA, vec![vec![Term::float(INT_LON), Term::float(INT_LAT)]]).unwrap();
        e
    }

    fn bus_emission(
        e: &mut Engine,
        bus: i64,
        t: i64,
        lon: f64,
        lat: f64,
        congestion: i64,
        delay: i64,
    ) {
        e.add_event(Event::new(
            names::MOVE,
            [Term::int(bus), Term::int(10), Term::int(7), Term::int(delay)],
            t,
        ))
        .unwrap();
        e.add_obs(FluentObs::new(
            names::GPS,
            [
                Term::int(bus),
                Term::float(lon),
                Term::float(lat),
                Term::int(0),
                Term::int(congestion),
            ],
            true,
            t,
        ))
        .unwrap();
    }

    fn scats_reading(e: &mut Engine, t: i64, density: f64, flow: f64) {
        e.add_event(Event::new(
            names::TRAFFIC,
            [Term::int(1), Term::int(0), Term::int(5), Term::float(density), Term::float(flow)],
            t,
        ))
        .unwrap();
    }

    fn int_args() -> Vec<Term> {
        vec![Term::float(INT_LON), Term::float(INT_LAT)]
    }

    #[test]
    fn builds_both_modes() {
        let s = build_ruleset(&TrafficRulesConfig::static_mode()).unwrap();
        let a = build_ruleset(&TrafficRulesConfig::default()).unwrap();
        let (ssf, sev, sst) = s.rule_counts();
        let (asf, aev, ast) = a.rule_counts();
        assert!(asf > ssf, "adaptive adds noisy rules");
        assert!(aev > sev, "adaptive adds disagree/agree rules");
        assert_eq!(sst, ast, "same static fluents");
        let cfg = TrafficRulesConfig { scats_reliability: true, ..Default::default() };
        let r = build_ruleset(&cfg).unwrap();
        assert!(r.rule_counts().0 > asf, "scats reliability adds rules");
    }

    #[test]
    fn scats_congestion_follows_rule_set_2() {
        let mut e = engine(&TrafficRulesConfig::static_mode());
        // congested at 360 (D high, F low), cleared at 720 (D low).
        scats_reading(&mut e, 360, 100.0, 900.0);
        scats_reading(&mut e, 720, 40.0, 1700.0);
        let rec = e.query(10_000).unwrap();
        let ivs = rec
            .intervals_of(
                ce::SCATS_CONGESTION,
                &[Term::int(1), Term::int(0), Term::int(5)],
                &Term::truth(),
            )
            .unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(360, 720)]);
        // Intersection-level congestion mirrors its single congested sensor.
        let int_ivs =
            rec.intervals_of(ce::SCATS_INT_CONGESTION, &int_args(), &Term::truth()).unwrap();
        assert_eq!(int_ivs.as_slice(), &[Interval::span(360, 720)]);
    }

    #[test]
    fn high_density_high_flow_is_not_congestion() {
        // The fundamental diagram's conjunction: dense but flowing traffic
        // does not trigger rule-set (2).
        let mut e = engine(&TrafficRulesConfig::static_mode());
        scats_reading(&mut e, 360, 100.0, 1700.0);
        let rec = e.query(10_000).unwrap();
        assert!(rec.fluent_entries(ce::SCATS_CONGESTION).is_empty());
    }

    #[test]
    fn bus_congestion_rule_set_3() {
        let mut e = engine(&TrafficRulesConfig::static_mode());
        // Bus 1 close to the area reports congestion at 100; bus 2 clears it
        // at 400.
        bus_emission(&mut e, 1, 100, INT_LON + 0.0005, INT_LAT, 1, 0);
        bus_emission(&mut e, 2, 400, INT_LON, INT_LAT + 0.0005, 0, 0);
        // A far-away bus reporting congestion must not matter.
        bus_emission(&mut e, 3, 500, INT_LON + 0.1, INT_LAT, 1, 0);
        let rec = e.query(10_000).unwrap();
        let ivs = rec.intervals_of(ce::BUS_CONGESTION, &int_args(), &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(100, 400)]);
    }

    #[test]
    fn source_disagreement_is_relative_complement() {
        let mut e = engine(&TrafficRulesConfig::static_mode());
        // Buses say congested during [100, 700); SCATS says congested
        // during [360, 720).
        bus_emission(&mut e, 1, 100, INT_LON, INT_LAT, 1, 0);
        bus_emission(&mut e, 1, 700, INT_LON, INT_LAT, 0, 0);
        scats_reading(&mut e, 360, 100.0, 900.0);
        scats_reading(&mut e, 720, 40.0, 1700.0);
        let rec = e.query(10_000).unwrap();
        let ivs = rec.intervals_of(ce::SOURCE_DISAGREEMENT, &int_args(), &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(100, 360)]);
    }

    #[test]
    fn delay_increase_fires_on_sharp_growth() {
        let mut e = engine(&TrafficRulesConfig::static_mode());
        bus_emission(&mut e, 1, 100, INT_LON, INT_LAT, 0, 50);
        bus_emission(&mut e, 1, 130, INT_LON + 0.001, INT_LAT, 0, 400); // +350 in 30 s
        bus_emission(&mut e, 2, 100, INT_LON, INT_LAT, 0, 50);
        bus_emission(&mut e, 2, 130, INT_LON, INT_LAT, 0, 70); // +20: below `d`
        let rec = e.query(10_000).unwrap();
        let des = rec.events_of(ce::DELAY_INCREASE);
        assert_eq!(des.len(), 1);
        assert_eq!(des[0].args[0], Term::int(1));
        assert_eq!(des[0].time, 130);
    }

    #[test]
    fn disagree_and_agree_events() {
        let mut e = engine(&TrafficRulesConfig::default());
        // SCATS congested [360, 720).
        scats_reading(&mut e, 360, 100.0, 900.0);
        scats_reading(&mut e, 720, 40.0, 1700.0);
        // Bus says congested at 400 while SCATS agrees -> agree.
        bus_emission(&mut e, 1, 400, INT_LON, INT_LAT, 1, 0);
        // Bus says clear at 500 while SCATS says congested -> disagree negative.
        bus_emission(&mut e, 2, 500, INT_LON, INT_LAT, 0, 0);
        // Bus says congested at 800 while SCATS clear -> disagree positive.
        bus_emission(&mut e, 3, 800, INT_LON, INT_LAT, 1, 0);
        let rec = e.query(10_000).unwrap();
        let agrees = rec.events_of(ce::AGREE);
        assert_eq!(agrees.len(), 1);
        assert_eq!(agrees[0].args[0], Term::int(1));
        let disagrees = rec.events_of(ce::DISAGREE);
        assert_eq!(disagrees.len(), 2);
        let d2 = disagrees.iter().find(|d| d.args[0] == Term::int(2)).unwrap();
        assert_eq!(d2.args[3], Term::sym("negative"));
        let d3 = disagrees.iter().find(|d| d.args[0] == Term::int(3)).unwrap();
        assert_eq!(d3.args[3], Term::sym("positive"));
    }

    #[test]
    fn pessimistic_noisy_marks_on_disagreement_and_recovers_on_agreement() {
        let mut e = engine(&TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic));
        // SCATS clear the whole time; bus 1 claims congestion at 100
        // (disagree) then reports clear at 600 close to the (clear)
        // intersection (agree).
        scats_reading(&mut e, 50, 30.0, 1700.0);
        bus_emission(&mut e, 1, 100, INT_LON, INT_LAT, 1, 0);
        bus_emission(&mut e, 1, 600, INT_LON, INT_LAT, 0, 0);
        let rec = e.query(10_000).unwrap();
        let noisy = rec.intervals_of(ce::NOISY, &[Term::int(1)], &Term::truth()).unwrap();
        assert_eq!(noisy.as_slice(), &[Interval::span(100, 600)]);
    }

    #[test]
    fn rule_set_3_prime_discards_noisy_bus_reports() {
        let mut e = engine(&TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic));
        // SCATS clear; bus 1 reports congestion at 100 -> it becomes noisy
        // at 100, so its report must NOT create busCongestion... but note
        // the initiation and the noisy marking happen at the same instant:
        // rule (3') checks holdsAt(noisy) at T, and noisy starts at T
        // (half-open [100, ...)), so the very first disagreeing report is
        // already filtered.
        scats_reading(&mut e, 50, 30.0, 1700.0);
        bus_emission(&mut e, 1, 100, INT_LON, INT_LAT, 1, 0);
        bus_emission(&mut e, 1, 200, INT_LON, INT_LAT, 1, 0);
        let rec = e.query(10_000).unwrap();
        assert!(
            rec.intervals_of(ce::BUS_CONGESTION, &int_args(), &Term::truth()).is_none(),
            "noisy bus reports are discarded"
        );
    }

    #[test]
    fn crowd_validated_noisy_requires_crowd_confirmation() {
        let mut e = engine(&TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated));
        scats_reading(&mut e, 50, 30.0, 1700.0);
        // Bus 1 disagrees (positive) at 100; the only crowd answer arrives
        // 700 s later — outside the 600 s crowd window — so under rule-set
        // (4) bus 1 stays reliable.
        bus_emission(&mut e, 1, 100, INT_LON, INT_LAT, 1, 0);
        // Bus 2 disagrees at 750 and the crowd sides with SCATS (negative,
        // i.e. no congestion) at 800 -> bus 2 becomes noisy.
        bus_emission(&mut e, 2, 750, INT_LON, INT_LAT, 1, 0);
        e.add_event(crate::sde::crowd_event(INT_LON, INT_LAT, false, 800)).unwrap();
        let rec = e.query(10_000).unwrap();
        assert!(rec.intervals_of(ce::NOISY, &[Term::int(1)], &Term::truth()).is_none());
        // The crowd answer (negative) contradicts bus 2's claim (positive),
        // so no termination rule fires: bus 2 stays noisy.
        let noisy2 = rec.intervals_of(ce::NOISY, &[Term::int(2)], &Term::truth()).unwrap();
        assert_eq!(noisy2.as_slice(), &[Interval::open_from(750)]);
    }

    #[test]
    fn crowd_validated_noisy_cleared_when_crowd_proves_bus_right() {
        let mut e = engine(&TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated));
        scats_reading(&mut e, 50, 30.0, 1700.0);
        // Bus disagrees (positive) at 100; crowd sides with SCATS at 150
        // -> noisy from 100. Bus disagrees again at 500; crowd now sides
        // with the bus (positive) at 550 -> cleared at 500 (rule-set 4
        // terminates at the disagreement time T).
        bus_emission(&mut e, 1, 100, INT_LON, INT_LAT, 1, 0);
        e.add_event(crate::sde::crowd_event(INT_LON, INT_LAT, false, 150)).unwrap();
        bus_emission(&mut e, 1, 500, INT_LON, INT_LAT, 1, 0);
        e.add_event(crate::sde::crowd_event(INT_LON, INT_LAT, true, 550)).unwrap();
        let rec = e.query(10_000).unwrap();
        let noisy = rec.intervals_of(ce::NOISY, &[Term::int(1)], &Term::truth()).unwrap();
        assert_eq!(noisy.as_slice(), &[Interval::span(100, 500)]);
    }

    #[test]
    fn trend_events_fire_on_consecutive_readings() {
        let mut e = engine(&TrafficRulesConfig::static_mode());
        scats_reading(&mut e, 360, 30.0, 800.0);
        scats_reading(&mut e, 720, 80.0, 1400.0); // +50 density, +600 flow
        scats_reading(&mut e, 1080, 20.0, 700.0); // -60 density, -700 flow
        let rec = e.query(10_000).unwrap();
        let flows = rec.events_of(ce::FLOW_TREND);
        assert_eq!(flows.len(), 2);
        assert!(flows.iter().any(|f| f.args[3] == Term::sym("up") && f.time == 720));
        assert!(flows.iter().any(|f| f.args[3] == Term::sym("down") && f.time == 1080));
        let densities = rec.events_of(ce::DENSITY_TREND);
        assert_eq!(densities.len(), 2);
    }

    fn scats_reading_for(
        e: &mut Engine,
        sensor: i64,
        approach: i64,
        t: i64,
        density: f64,
        flow: f64,
    ) {
        e.add_event(Event::new(
            names::TRAFFIC,
            [
                Term::int(1),
                Term::int(approach),
                Term::int(sensor),
                Term::float(density),
                Term::float(flow),
            ],
            t,
        ))
        .unwrap();
    }

    #[test]
    fn n2_intersection_congestion_requires_two_simultaneous_sensors() {
        let cfg = TrafficRulesConfig {
            intersection_congestion_n: 2,
            ..TrafficRulesConfig::static_mode()
        };
        let mut e = engine(&cfg);
        e.set_relation(
            rel::SCATS_SENSOR_PAIR,
            vec![vec![Term::int(1), Term::int(5), Term::int(6)]],
        )
        .unwrap();
        // Sensor 5 congested [360, 1440); sensor 6 congested [720, 1800).
        scats_reading_for(&mut e, 5, 0, 360, 100.0, 900.0);
        scats_reading_for(&mut e, 5, 0, 1440, 30.0, 1700.0);
        scats_reading_for(&mut e, 6, 1, 720, 100.0, 900.0);
        scats_reading_for(&mut e, 6, 1, 1800, 30.0, 1700.0);
        let rec = e.query(10_000).unwrap();
        // n=2: congested only while BOTH sensors are.
        let ivs = rec.intervals_of(ce::SCATS_INT_CONGESTION, &int_args(), &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(720, 1440)]);
    }

    #[test]
    fn n1_intersection_congestion_is_union_of_sensors() {
        let mut e = engine(&TrafficRulesConfig::static_mode());
        scats_reading_for(&mut e, 5, 0, 360, 100.0, 900.0);
        scats_reading_for(&mut e, 5, 0, 1440, 30.0, 1700.0);
        scats_reading_for(&mut e, 6, 1, 720, 100.0, 900.0);
        scats_reading_for(&mut e, 6, 1, 1800, 30.0, 1700.0);
        let rec = e.query(10_000).unwrap();
        let ivs = rec.intervals_of(ce::SCATS_INT_CONGESTION, &int_args(), &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(360, 1800)]);
    }

    #[test]
    fn approach_congestion_mirrors_sensor_congestion() {
        let mut cfg = TrafficRulesConfig::static_mode();
        cfg.approach_congestion = true;
        let mut e = engine(&cfg);
        e.set_relation(rel::SCATS_APPROACH, vec![vec![Term::int(1), Term::int(0)]]).unwrap();
        scats_reading(&mut e, 360, 100.0, 900.0);
        scats_reading(&mut e, 720, 40.0, 1700.0);
        let rec = e.query(10_000).unwrap();
        let ivs = rec
            .intervals_of(
                ce::SCATS_APPROACH_CONGESTION,
                &[Term::int(1), Term::int(0)],
                &Term::truth(),
            )
            .unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(360, 720)]);
        // An approach with no sensors stays absent.
        assert_eq!(rec.fluent_entries(ce::SCATS_APPROACH_CONGESTION).len(), 1);
    }

    #[test]
    fn citizen_congestion_extension() {
        let mut cfg = TrafficRulesConfig::static_mode();
        cfg.citizen_reports = true;
        let mut e = engine(&cfg);
        let report = |user: i64, t: i64, flag: i64| {
            Event::new(
                names::CITIZEN_REPORT,
                [Term::int(user), Term::float(INT_LON), Term::float(INT_LAT), Term::int(flag)],
                t,
            )
        };
        e.add_event(report(1, 100, 1)).unwrap();
        e.add_event(report(2, 500, 0)).unwrap();
        // A far-away positive report must not matter.
        e.add_event(Event::new(
            names::CITIZEN_REPORT,
            [Term::int(3), Term::float(INT_LON + 0.2), Term::float(INT_LAT), Term::int(1)],
            600,
        ))
        .unwrap();
        let rec = e.query(10_000).unwrap();
        let ivs = rec.intervals_of(ce::CITIZEN_CONGESTION, &int_args(), &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[Interval::span(100, 500)]);
    }

    #[test]
    fn citizen_rules_absent_by_default() {
        let rs = build_ruleset(&TrafficRulesConfig::default()).unwrap();
        assert!(!rs
            .derived_fluents()
            .contains(&insight_rtec::term::Symbol::new(ce::CITIZEN_CONGESTION)));
    }

    #[test]
    fn traffic_ruleset_pretty_prints() {
        let rs = build_ruleset(&TrafficRulesConfig::default()).unwrap();
        let text = rs.pretty();
        assert!(text.contains("initiatedAt(scatsCongestion("));
        assert!(text.contains("relative_complement_all("));
        assert!(text.contains("happensAt(disagree("));
    }

    #[test]
    fn noisy_scats_reconstruction() {
        let mut cfg = TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic);
        cfg.scats_reliability = true;
        let mut e = engine(&cfg);
        // SCATS clear, crowd says congested at 200 -> sensors noisy from 200.
        scats_reading(&mut e, 50, 30.0, 1700.0);
        e.add_event(crate::sde::crowd_event(INT_LON, INT_LAT, true, 200)).unwrap();
        // Later the SCATS go congested and the crowd confirms at 800 ->
        // reliability restored.
        scats_reading(&mut e, 700, 100.0, 900.0);
        e.add_event(crate::sde::crowd_event(INT_LON, INT_LAT, true, 800)).unwrap();
        let rec = e.query(10_000).unwrap();
        let ns = rec.intervals_of(ce::NOISY_SCATS, &[Term::int(1)], &Term::truth()).unwrap();
        assert_eq!(ns.as_slice(), &[Interval::span(200, 800)]);
    }
}
