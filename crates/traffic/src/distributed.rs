//! Region-distributed recognition (§7.1).
//!
//! "SCATS sensors are placed into the intersections of four geographical
//! areas … We distributed CE recognition accordingly" — one engine per
//! region, each computing the CEs of its region's SCATS intersections and of
//! the buses currently traversing that region. Queries run the engines on
//! parallel threads (scoped threads), and the recognition time of
//! a query is the maximum over the engines — exactly the quantity Figure 4
//! plots.

use crate::config::TrafficRulesConfig;
use crate::recognizer::{IntersectionInfo, TrafficRecognition, TrafficRecognizer};
use insight_datagen::regions::Region;
use insight_datagen::scats::ScatsDeployment;
use insight_datagen::stream::Sde;
use insight_rtec::error::RtecError;
use insight_rtec::time::Time;
use insight_rtec::window::WindowConfig;

/// One recogniser per SCATS region.
pub struct DistributedRecognizer {
    partitions: Vec<(Region, TrafficRecognizer)>,
}

/// The result of a distributed query.
#[derive(Debug)]
pub struct DistributedRecognition {
    /// Per-region results.
    pub per_region: Vec<(Region, TrafficRecognition)>,
    /// Wall-clock recognition time of the slowest region (the distributed
    /// recognition time).
    pub max_region_time: std::time::Duration,
    /// Wall-clock recognition time summed over regions (the sequential
    /// equivalent).
    pub total_cpu_time: std::time::Duration,
}

impl DistributedRecognition {
    /// Total SDEs across regions for this window.
    pub fn sde_count(&self) -> usize {
        self.per_region.iter().map(|(_, r)| r.sde_count()).sum()
    }
}

impl DistributedRecognizer {
    /// Partitions a deployment into the four regions and builds one
    /// recogniser each. Regions without intersections are omitted.
    pub fn from_deployment(
        config: TrafficRulesConfig,
        window: WindowConfig,
        scats: &ScatsDeployment,
    ) -> Result<DistributedRecognizer, RtecError> {
        let mut partitions = Vec::new();
        for region in Region::ALL {
            let infos: Vec<IntersectionInfo> = scats
                .intersections()
                .iter()
                .filter(|i| i.region == region)
                .map(|i| IntersectionInfo { id: i.id as i64, lon: i.lon, lat: i.lat })
                .collect();
            if infos.is_empty() {
                continue;
            }
            partitions.push((region, TrafficRecognizer::new(config.clone(), window, &infos, &[])?));
        }
        Ok(DistributedRecognizer { partitions })
    }

    /// Number of active regions.
    pub fn regions(&self) -> usize {
        self.partitions.len()
    }

    /// Enables or disables incremental (delta-aware) evaluation on every
    /// region engine.
    pub fn set_incremental(&mut self, on: bool) {
        for (_, rec) in &mut self.partitions {
            rec.set_incremental(on);
        }
    }

    /// Enables or disables parallel stratum evaluation on every region
    /// engine.
    pub fn set_parallel_strata(&mut self, on: bool) {
        for (_, rec) in &mut self.partitions {
            rec.set_parallel_strata(on);
        }
    }

    /// Switches every region engine to (or from) compiled evaluation. All
    /// regions run the same rule library, so the plan is compiled **once**
    /// and the one `Arc` is shared across the replicas — region-local data
    /// (relations, window state) stays per-engine.
    pub fn set_compiled(&mut self, on: bool) -> Result<(), RtecError> {
        if !on {
            for (_, rec) in &mut self.partitions {
                rec.set_compiled(false);
            }
            return Ok(());
        }
        let mut shared = None;
        for (_, rec) in &mut self.partitions {
            match &shared {
                None => {
                    rec.set_compiled(true);
                    shared = rec.compiled_plan().cloned();
                }
                Some(plan) => rec.set_compiled_plan(std::sync::Arc::clone(plan))?,
            }
        }
        Ok(())
    }

    /// Routes one SDE to the engine of its region. SDEs of regions without
    /// an engine are dropped (mirrors sensors outside any partition).
    pub fn ingest(&mut self, sde: &Sde) -> Result<(), RtecError> {
        let region = sde.region();
        for (r, rec) in &mut self.partitions {
            if *r == region {
                return rec.ingest(sde);
            }
        }
        Ok(())
    }

    /// Routes a crowd answer to the region of its location.
    pub fn ingest_crowd(
        &mut self,
        lon: f64,
        lat: f64,
        congested: bool,
        time: Time,
    ) -> Result<(), RtecError> {
        let region = Region::of(lon, lat);
        for (r, rec) in &mut self.partitions {
            if *r == region {
                return rec.ingest_crowd(lon, lat, congested, time);
            }
        }
        Ok(())
    }

    /// Runs recognition at `q` on all regions in parallel.
    pub fn query(&mut self, q: Time) -> Result<DistributedRecognition, RtecError> {
        let results: Vec<(Region, Result<TrafficRecognition, RtecError>, std::time::Duration)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .partitions
                    .iter_mut()
                    .map(|(region, rec)| {
                        let region = *region;
                        scope.spawn(move || {
                            let start = std::time::Instant::now();
                            let result = rec.query(q);
                            (region, result, start.elapsed())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("region thread panicked")).collect()
            });

        let mut per_region = Vec::with_capacity(results.len());
        let mut max_region_time = std::time::Duration::ZERO;
        let mut total_cpu_time = std::time::Duration::ZERO;
        for (region, result, elapsed) in results {
            max_region_time = max_region_time.max(elapsed);
            total_cpu_time += elapsed;
            per_region.push((region, result?));
        }
        Ok(DistributedRecognition { per_region, max_region_time, total_cpu_time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_datagen::scenario::{Scenario, ScenarioConfig};

    #[test]
    fn partitions_cover_regions_with_sensors() {
        let scenario = Scenario::generate(ScenarioConfig::small(900, 13)).unwrap();
        let d = DistributedRecognizer::from_deployment(
            TrafficRulesConfig::default(),
            WindowConfig::new(900, 900).unwrap(),
            &scenario.scats,
        )
        .unwrap();
        assert!(d.regions() >= 1 && d.regions() <= 4);
    }

    #[test]
    fn distributed_query_matches_ingestion() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 17)).unwrap();
        let mut d = DistributedRecognizer::from_deployment(
            TrafficRulesConfig::default(),
            WindowConfig::new(1200, 1200).unwrap(),
            &scenario.scats,
        )
        .unwrap();
        for sde in &scenario.sdes {
            d.ingest(sde).unwrap();
        }
        let (_, end) = scenario.window();
        let rec = d.query(end).unwrap();
        assert_eq!(rec.per_region.len(), d.regions());
        assert!(rec.sde_count() > 0);
        assert!(rec.max_region_time <= rec.total_cpu_time);
        // A second query strictly later works too.
        let rec2 = d.query(end + 600).unwrap();
        assert_eq!(rec2.per_region.len(), d.regions());
    }

    #[test]
    fn compiled_replicas_share_one_plan_and_match_interpreted() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 17)).unwrap();
        let build = || {
            DistributedRecognizer::from_deployment(
                TrafficRulesConfig::default(),
                WindowConfig::new(600, 600).unwrap(),
                &scenario.scats,
            )
            .unwrap()
        };
        let mut interp = build();
        let mut comp = build();
        comp.set_compiled(true).unwrap();

        // Every region engine holds the same Arc allocation.
        let first = comp.partitions[0].1.compiled_plan().unwrap().clone();
        for (_, rec) in &comp.partitions {
            let plan = rec.compiled_plan().expect("every region runs compiled");
            assert!(std::sync::Arc::ptr_eq(plan, &first), "regions must share one plan allocation");
        }

        for sde in &scenario.sdes {
            interp.ingest(sde).unwrap();
            comp.ingest(sde).unwrap();
        }
        let (_, end) = scenario.window();
        for q in [end, end + 600] {
            let ra = interp.query(q).unwrap();
            let rb = comp.query(q).unwrap();
            assert_eq!(ra.per_region.len(), rb.per_region.len());
            for ((reg_a, rec_a), (reg_b, rec_b)) in ra.per_region.iter().zip(&rb.per_region) {
                assert_eq!(reg_a, reg_b);
                assert_eq!(rec_a.sde_count(), rec_b.sde_count());
                assert_eq!(
                    rec_a.congested_intersections(),
                    rec_b.congested_intersections(),
                    "region {reg_a:?} diverges at q={q}"
                );
                assert_eq!(rec_a.bus_congestions(), rec_b.bus_congestions());
                assert_eq!(rec_a.noisy_buses(), rec_b.noisy_buses());
            }
        }
    }

    #[test]
    fn crowd_routing_does_not_error_for_uncovered_regions() {
        let scenario = Scenario::generate(ScenarioConfig::small(600, 19)).unwrap();
        let mut d = DistributedRecognizer::from_deployment(
            TrafficRulesConfig::default(),
            WindowConfig::new(600, 600).unwrap(),
            &scenario.scats,
        )
        .unwrap();
        // A location far outside every partition: silently ignored.
        d.ingest_crowd(0.0, 0.0, true, 100).unwrap();
        // A location inside some partition: accepted.
        let i = &scenario.scats.intersections()[0];
        d.ingest_crowd(i.lon, i.lat, true, 100).unwrap();
    }
}
