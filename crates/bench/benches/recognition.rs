//! Criterion bench behind Figure 4: recognition cost vs working-memory size
//! and mode, on a reduced scenario so `cargo bench` stays fast. The
//! `fig4_recognition` binary runs the paper-scale version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insight_bench::time_recognition;
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_traffic::{NoisyVariant, TrafficRulesConfig};

fn bench_recognition(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::small(2400, 3);
    cfg.fleet.n_buses = 60;
    cfg.n_scats_sensors = 80;
    let scenario = Scenario::generate(cfg).expect("scenario generates");

    let mut group = c.benchmark_group("recognition");
    group.sample_size(10);
    for wm in [600i64, 1200, 1800] {
        group.bench_with_input(BenchmarkId::new("static", wm), &wm, |b, &wm| {
            b.iter(|| {
                time_recognition(&scenario, TrafficRulesConfig::static_mode(), wm, wm, 1)
                    .expect("recognition runs")
            })
        });
        group.bench_with_input(BenchmarkId::new("self-adaptive", wm), &wm, |b, &wm| {
            b.iter(|| {
                time_recognition(
                    &scenario,
                    TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic),
                    wm,
                    wm,
                    1,
                )
                .expect("recognition runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recognition);
criterion_main!(benches);
