//! Microbench of the RTEC interval algebra — the inner loop of
//! statically-determined fluents like `sourceDisagreement`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insight_rtec::interval::{Interval, IntervalList};
use std::hint::black_box;

fn list(n: usize, offset: i64) -> IntervalList {
    IntervalList::from_intervals(
        (0..n).map(|i| Interval::span(offset + (i as i64) * 10, offset + (i as i64) * 10 + 6)),
    )
}

fn bench_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_algebra");
    for n in [100usize, 1000] {
        let a = list(n, 0);
        let b2 = list(n, 3);
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bch, _| {
            bch.iter(|| black_box(a.union(&b2)))
        });
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bch, _| {
            bch.iter(|| black_box(a.intersect(&b2)))
        });
        group.bench_with_input(BenchmarkId::new("relative_complement", n), &n, |bch, _| {
            bch.iter(|| black_box(IntervalList::relative_complement_all(&a, [&b2])))
        });
        let inits: Vec<i64> = (0..n as i64).map(|i| i * 10).collect();
        let terms: Vec<i64> = (0..n as i64).map(|i| i * 10 + 6).collect();
        group.bench_with_input(BenchmarkId::new("from_points", n), &n, |bch, _| {
            bch.iter(|| black_box(IntervalList::from_points(&inits, &terms, false, 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algebra);
criterion_main!(benches);
