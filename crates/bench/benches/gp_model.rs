//! Criterion bench behind Figure 9: GP kernel construction and posterior
//! computation as a function of graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insight_gp::graph::Graph;
use insight_gp::kernel::{Kernel, RegularizedLaplacian};
use insight_gp::regression::GpRegression;
use std::hint::black_box;

fn bench_gp(c: &mut Criterion) {
    let kernel = RegularizedLaplacian::new(3.0, 1.0).unwrap();

    let mut group = c.benchmark_group("gp");
    group.sample_size(10);
    for side in [8usize, 14, 20] {
        let graph = Graph::grid(side, side);
        let n = graph.len();
        let observations: Vec<(usize, f64)> =
            (0..n).step_by(3).map(|v| (v, ((v % 13) as f64) * 100.0)).collect();

        group.bench_with_input(BenchmarkId::new("kernel", n), &graph, |b, g| {
            b.iter(|| black_box(kernel.covariance(g).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("fit_predict", n), &graph, |b, g| {
            b.iter(|| {
                let gp = GpRegression::fit(g, &kernel, &observations, 0.1, true).unwrap();
                black_box(gp.predict_unobserved().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gp);
criterion_main!(benches);
