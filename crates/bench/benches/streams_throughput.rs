//! Microbench of the Streams middleware: item throughput through a
//! filter → enrich → queue → count topology — the volume dimension the
//! paper's architecture claims to scale on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use insight_streams::item::DataItem;
use insight_streams::processor::{Context, FnProcessor};
use insight_streams::runtime::Runtime;
use insight_streams::sink::CountSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};

fn run_pipeline(items: Vec<DataItem>) -> u64 {
    let mut t = Topology::new();
    t.add_source("in", VecSource::new(items));
    t.add_queue("q", 1024);
    t.process("enrich")
        .input(Input::Stream("in".into()))
        .processor(FnProcessor::new(|item: DataItem, _ctx: &mut Context| {
            Ok((item.get_i64("n").unwrap_or(0) % 3 != 0).then_some(item))
        }))
        .processor(FnProcessor::new(|mut item: DataItem, _ctx: &mut Context| {
            let n = item.get_i64("n").unwrap_or(0);
            item.set("double", n * 2);
            Ok(Some(item))
        }))
        .output(Output::Queue("q".into()))
        .done();
    let sink = CountSink::shared();
    t.process("count")
        .input(Input::Queue("q".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    Runtime::new(t).run().expect("pipeline runs");
    sink.count()
}

fn bench_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("filter_enrich_count", n), &n, |b, &n| {
            b.iter(|| {
                let items: Vec<DataItem> =
                    (0..n).map(|i| DataItem::new().with("n", i as i64)).collect();
                run_pipeline(items)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
