//! Criterion bench behind Figures 5–6: online EM event processing
//! throughput and query execution engine task latency sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insight_crowd::engine::{QueryExecutionEngine, Worker, WorkerId};
use insight_crowd::latency::ConnectionType;
use insight_crowd::model::{CrowdQuery, LabelSet, SimulatedParticipant};
use insight_crowd::online_em::OnlineEm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_online_em(c: &mut Criterion) {
    let labels = LabelSet::traffic_default();
    let cohort = SimulatedParticipant::paper_cohort();
    let mut rng = StdRng::seed_from_u64(4);
    // Pre-draw 1000 events worth of answers.
    let events: Vec<Vec<(usize, usize)>> = (0..1000usize)
        .map(|t| {
            cohort
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.answer(t % 4, &labels, &mut rng).unwrap()))
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("online_em");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("process_events", n), &n, |b, &n| {
            b.iter(|| {
                let mut em = OnlineEm::paper_default(cohort.len());
                let prior = labels.uniform_prior();
                for answers in events.iter().take(n) {
                    black_box(em.process(&prior, answers).unwrap());
                }
                em
            })
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut engine = QueryExecutionEngine::new();
    for i in 0..50u64 {
        engine.register(Worker {
            id: WorkerId(i),
            lon: -6.26 + (i as f64) * 1e-3,
            lat: 53.35,
            connection: ConnectionType::ALL[(i % 3) as usize],
            avg_comp_ms: 100.0,
        });
    }
    let query = CrowdQuery {
        question: "Congestion?".into(),
        answers: vec!["yes".into(), "no".into()],
        lon: -6.26,
        lat: 53.35,
        deadline_ms: None,
    };
    let selected: Vec<WorkerId> = (0..50).map(WorkerId).collect();

    c.bench_function("engine/execute_50_workers", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            black_box(
                engine
                    .execute(&query, &selected, |id| Some((id.0 % 2) as usize), &mut rng)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_online_em, bench_engine);
criterion_main!(benches);
