//! Shared harness utilities for the figure-regeneration binaries and the
//! Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index); the helpers here
//! keep their measurement protocol consistent.

use insight_datagen::scenario::Scenario;
use insight_rtec::window::WindowConfig;
use insight_traffic::{DistributedRecognizer, TrafficRulesConfig};
use std::time::Duration;

/// The result of timing recognition at a sequence of query times.
#[derive(Debug, Clone)]
pub struct RecognitionTiming {
    /// Working-memory size used (seconds).
    pub wm: i64,
    /// Mean engine input facts per window (a bus record contributes both a
    /// `move` event and a `gps` observation).
    pub mean_sdes: f64,
    /// Mean dataset records per window — the paper's "12,500 SDEs per
    /// 10 min" axis counts records.
    pub mean_records: f64,
    /// Mean wall-clock recognition time per query (max over the parallel
    /// region engines — the distributed recognition time of Figure 4).
    pub mean_time: Duration,
    /// Mean summed (sequential-equivalent) CPU time per query.
    pub mean_cpu_time: Duration,
    /// Queries measured.
    pub queries: usize,
}

/// Ingests the scenario and measures recognition at `n_queries` query times
/// whose windows are fully populated: the first query fires once a whole
/// working memory of data is available.
pub fn time_recognition(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    wm: i64,
    step: i64,
    n_queries: usize,
) -> Result<RecognitionTiming, Box<dyn std::error::Error>> {
    let window = WindowConfig::new(wm, step)?;
    let mut rec = DistributedRecognizer::from_deployment(rules, window, &scenario.scats)?;
    let (start, end) = scenario.window();

    let mut sde_idx = 0usize;
    let mut total_sdes = 0usize;
    let mut total_records = 0usize;
    let mut total_time = Duration::ZERO;
    let mut total_cpu = Duration::ZERO;
    let mut queries = 0usize;

    let mut q = start + wm;
    while queries < n_queries && q <= end {
        while sde_idx < scenario.sdes.len() && scenario.sdes[sde_idx].arrival <= q {
            rec.ingest(&scenario.sdes[sde_idx])?;
            sde_idx += 1;
        }
        let result = rec.query(q)?;
        total_sdes += result.sde_count();
        total_records += scenario.sdes_between(q - wm, q).filter(|s| s.arrival <= q).count();
        total_time += result.max_region_time;
        total_cpu += result.total_cpu_time;
        queries += 1;
        q += step;
    }
    if queries == 0 {
        return Err("scenario shorter than one working memory".into());
    }
    Ok(RecognitionTiming {
        wm,
        mean_sdes: total_sdes as f64 / queries as f64,
        mean_records: total_records as f64 / queries as f64,
        mean_time: total_time / queries as u32,
        mean_cpu_time: total_cpu / queries as u32,
        queries,
    })
}

/// Formats a duration as fractional seconds for result tables.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Writes experiment output both to stdout and to a results file under
/// `target/experiments/`.
pub struct ResultsWriter {
    path: std::path::PathBuf,
    buffer: String,
}

impl ResultsWriter {
    /// Creates a writer for the named experiment.
    pub fn new(name: &str) -> ResultsWriter {
        ResultsWriter {
            path: std::path::PathBuf::from(format!("target/experiments/{name}.txt")),
            buffer: String::new(),
        }
    }

    /// Prints a line to stdout and records it for the results file.
    pub fn line(&mut self, text: impl AsRef<str>) {
        println!("{}", text.as_ref());
        self.buffer.push_str(text.as_ref());
        self.buffer.push('\n');
    }

    /// Flushes the recorded lines to the results file.
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&self.path, self.buffer)?;
        Ok(self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_datagen::scenario::ScenarioConfig;

    #[test]
    fn timing_protocol_runs_on_small_scenario() {
        let scenario = Scenario::generate(ScenarioConfig::small(1500, 4)).unwrap();
        let t =
            time_recognition(&scenario, TrafficRulesConfig::static_mode(), 600, 300, 2).unwrap();
        assert_eq!(t.queries, 2);
        assert!(t.mean_sdes > 0.0);
        assert!(t.mean_cpu_time >= t.mean_time);
    }

    #[test]
    fn too_short_scenario_errors() {
        let scenario = Scenario::generate(ScenarioConfig::small(300, 4)).unwrap();
        assert!(
            time_recognition(&scenario, TrafficRulesConfig::static_mode(), 6000, 300, 1).is_err()
        );
    }

    #[test]
    fn results_writer_persists() {
        let mut w = ResultsWriter::new("selftest");
        w.line("hello");
        let path = w.finish().unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello\n");
    }
}
