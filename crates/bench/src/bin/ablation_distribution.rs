//! Ablation: value of region-partitioned recognition.
//!
//! The paper distributes recognition over Dublin's four SCATS regions, one
//! processor each (§7.1). This ablation compares the distributed
//! recognition time (max over parallel engines) against the
//! sequential-equivalent time (sum over engines) as the number of active
//! partitions varies — the speed-up the four-way distribution buys.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin ablation_distribution [--quick]
//! ```

use insight_bench::{secs, ResultsWriter};
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_rtec::window::WindowConfig;
use insight_traffic::recognizer::{IntersectionInfo, TrafficRecognizer};
use insight_traffic::{DistributedRecognizer, TrafficRulesConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut out = ResultsWriter::new("ablation_distribution");
    out.line("=== Ablation: 1 engine vs 4 region-partitioned engines ===");

    let duration = if quick { 1800 } else { 3600 };
    let cfg = if quick {
        let mut c = ScenarioConfig::small(duration, 11);
        c.fleet.n_buses = 60;
        c.n_scats_sensors = 80;
        c
    } else {
        ScenarioConfig::dublin_jan_2013(duration, 11)
    };
    let scenario = Scenario::generate(cfg)?;
    let wm = duration - 300;
    let window = WindowConfig::new(wm, 300)?;
    let rules = TrafficRulesConfig::static_mode();
    let (start, _) = scenario.window();
    let q = start + wm;

    // Single-engine baseline: all intersections in one recogniser.
    let infos: Vec<IntersectionInfo> = scenario
        .scats
        .intersections()
        .iter()
        .map(|i| IntersectionInfo { id: i.id as i64, lon: i.lon, lat: i.lat })
        .collect();
    let mut single = TrafficRecognizer::new(rules.clone(), window, &infos, &[])?;
    for sde in &scenario.sdes {
        if sde.arrival <= q {
            single.ingest(sde)?;
        }
    }
    let t0 = Instant::now();
    let single_result = single.query(q)?;
    let single_time = t0.elapsed();

    // Four-way distributed.
    let mut distributed = DistributedRecognizer::from_deployment(rules, window, &scenario.scats)?;
    for sde in &scenario.sdes {
        if sde.arrival <= q {
            distributed.ingest(sde)?;
        }
    }
    let result = distributed.query(q)?;

    out.line(format!(
        "scenario: {} SDEs in one {}-minute window; {} sensors",
        single_result.sde_count(),
        wm / 60,
        scenario.scats.len()
    ));
    out.line(String::new());
    out.line(format!("{:<28} {:>14} {:>14}", "configuration", "wall time (s)", "CPU time (s)"));
    out.line(format!(
        "{:<28} {:>14.3} {:>14.3}",
        "1 engine (all regions)",
        secs(single_time),
        secs(single_time)
    ));
    out.line(format!(
        "{:<28} {:>14.3} {:>14.3}",
        format!("{} engines (parallel)", distributed.regions()),
        secs(result.max_region_time),
        secs(result.total_cpu_time)
    ));
    let speedup = secs(single_time) / secs(result.max_region_time).max(1e-9);
    out.line(String::new());
    out.line(format!("distribution speed-up (wall): {speedup:.2}x"));
    out.line("expectation: near-linear gains as long as regions carry comparable load;");
    out.line("the per-engine work also shrinks superlinearly for join-heavy rules since");
    out.line("each engine matches buses only against its own region's intersections.");
    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
