//! Figure 9: traffic flow estimates by Gaussian Process regression.
//!
//! "The SCATS locations are mapped to their nearest neighbours within this
//! street network. The sensor readings are aggregated within fixed time
//! intervals. The hyperparameters are chosen in advance using grid search
//! within the interval [0, …, 10]. … the Gaussian Process estimate is
//! computed for the unobserved locations … High values obtain a red colour
//! while low values obtain green colour."
//!
//! The harness additionally reports held-out RMSE against non-structural
//! baselines, quantifying the value of the graph kernel.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin fig9_gp [--quick]
//! ```

use insight_bench::ResultsWriter;
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_datagen::stream::SdeBody;
use insight_gp::graph::Graph;
use insight_gp::gridsearch::GridSearch;
use insight_gp::kernel::{Kernel, RbfKernel};
use insight_gp::regression::{rmse, GpRegression};
use insight_gp::render::{render_ascii, render_ppm};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut out = ResultsWriter::new("fig9_gp");
    out.line("=== Figure 9: GP traffic-flow estimates ===");

    // A paper-scale scenario supplies the network and the SCATS readings.
    let mut cfg = if quick {
        let mut c = ScenarioConfig::small(1800, 9);
        c.n_scats_sensors = 60;
        c
    } else {
        ScenarioConfig::dublin_jan_2013(1800, 9)
    };
    // The GP is evaluated at the height of the morning rush.
    cfg.start_of_day = 8 * 3600;
    let scenario = Scenario::generate(cfg)?;
    let graph = Graph::new(scenario.network.junctions().to_vec(), scenario.network.segments())?;
    out.line(format!(
        "network: {} junctions; {} SCATS sensors on {} intersections",
        scenario.network.len(),
        scenario.scats.len(),
        scenario.scats.intersections().len()
    ));

    // Aggregate the scenario's SCATS flow readings per intersection over a
    // fixed interval (the last 12 minutes of the run), then map to nearest
    // junctions.
    let (_, end) = scenario.window();
    let mut sums: HashMap<usize, (f64, usize)> = HashMap::new();
    for sde in scenario.sdes_between(end - 720, end) {
        if let SdeBody::Scats(s) = &sde.body {
            if let Some(v) = graph.nearest_vertex(s.lon, s.lat) {
                let e = sums.entry(v).or_insert((0.0, 0));
                e.0 += s.flow;
                e.1 += 1;
            }
        }
    }
    let observations: Vec<(usize, f64)> =
        sums.iter().map(|(&v, &(sum, n))| (v, sum / n as f64)).collect();
    out.line(format!(
        "aggregated readings at {} observed junctions ({:.0} % coverage)",
        observations.len(),
        100.0 * observations.len() as f64 / graph.len() as f64
    ));

    // Grid search α, β ∈ [0, 10].
    let search = GridSearch::default().run(&graph, &observations)?;
    out.line(format!(
        "grid search ({} candidates): alpha = {}, beta = {}, hold-out RMSE {:.1} veh/h",
        search.evaluated.len(),
        search.best.alpha,
        search.best.beta,
        search.best_rmse
    ));

    // Ground truth for evaluation: the true flow of the field at the
    // aggregation midpoint.
    let t_eval = end - 360;
    let truth: Vec<f64> = (0..graph.len()).map(|v| scenario.field.flow(v, t_eval)).collect();

    let gp = GpRegression::fit(&graph, &search.best, &observations, 0.1, true)?;
    let posterior = gp.predict_unobserved()?;
    let truth_pairs: Vec<(usize, f64)> = posterior.targets.iter().map(|&v| (v, truth[v])).collect();
    let gp_err = rmse(&posterior, &truth_pairs).unwrap();

    // Baselines: global mean and a coordinate-RBF GP (non-structural).
    let mean_flow = observations.iter().map(|&(_, f)| f).sum::<f64>() / observations.len() as f64;
    let mean_err =
        (truth_pairs.iter().map(|&(_, f)| (f - mean_flow) * (f - mean_flow)).sum::<f64>()
            / truth_pairs.len() as f64)
            .sqrt();
    let rbf = RbfKernel::new(0.01, 200_000.0)?;
    let rbf_gp = GpRegression::fit(&graph, &rbf as &dyn Kernel, &observations, 0.1, true)?;
    let rbf_posterior = rbf_gp.predict_unobserved()?;
    let rbf_err = rmse(&rbf_posterior, &truth_pairs).unwrap();

    // Alternative graph kernel: diffusion exp(−βL) (Smola & Kondor, the
    // paper's reference [27]).
    let diffusion = insight_gp::kernel::DiffusionKernel::new(2.0, 50_000.0)?;
    let diff_gp = GpRegression::fit(&graph, &diffusion as &dyn Kernel, &observations, 0.1, true)?;
    let diff_err = rmse(&diff_gp.predict_unobserved()?, &truth_pairs).unwrap();

    out.line(String::new());
    out.line("held-out flow RMSE at unobserved junctions (vehicles/hour):");
    out.line(format!("  GP, regularized Laplacian kernel: {gp_err:>8.1}"));
    out.line(format!("  GP, diffusion kernel exp(-2L):    {diff_err:>8.1}"));
    out.line(format!("  GP, coordinate RBF (no graph):    {rbf_err:>8.1}"));
    out.line(format!("  global mean baseline:             {mean_err:>8.1}"));

    // Render the full estimate map.
    let all = gp.predict_all()?;
    let values: Vec<(usize, f64)> =
        all.targets.iter().copied().zip(all.mean.iter().copied()).collect();
    std::fs::create_dir_all("target/experiments")?;
    let img = "target/experiments/fig9_gp_estimates.ppm";
    std::fs::write(img, render_ppm(&graph, &values, 720, 520, 2))?;
    out.line(String::new());
    out.line(format!("estimate map rendered to {img} (green = low flow, red = high)"));
    out.line("ASCII preview (0 = low flow … 9 = high):");
    out.line(render_ascii(&graph, &values, 72, 22));

    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
