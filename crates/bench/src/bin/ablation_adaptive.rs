//! Ablation: the value of self-adaptive recognition.
//!
//! Compares congestion recognition accuracy across the paper's three
//! designs as the fraction of faulty buses grows:
//!
//! * rule-set (3) — static: every bus trusted;
//! * rule-sets (3′)+(5) — pessimistic: any disagreement silences a bus;
//! * rule-sets (3′)+(4) — crowd-validated: disagreement plus a crowd
//!   verdict against the bus silences it (crowd answers simulated from the
//!   ground truth with 90 % accuracy).
//!
//! Accuracy is measured against the scenario's ground truth: a recognised
//! `busCongestion` interval at an area counts as a true positive when the
//! area was actually congested at the interval's start.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin ablation_adaptive
//! ```

use insight_bench::ResultsWriter;
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_rtec::window::WindowConfig;
use insight_traffic::{DistributedRecognizer, NoisyVariant, RecognitionMode, TrafficRulesConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Outcome {
    true_pos: usize,
    false_pos: usize,
}

fn evaluate(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    crowd_accuracy: f64,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let step = 300i64;
    let mut rec = DistributedRecognizer::from_deployment(
        rules.clone(),
        WindowConfig::new(900, step)?,
        &scenario.scats,
    )?;
    let mut rng = StdRng::seed_from_u64(77);
    let (start, end) = scenario.window();
    let mut sde_idx = 0usize;
    let mut outcome = Outcome { true_pos: 0, false_pos: 0 };
    let mut q = start + step;
    while q <= end {
        while sde_idx < scenario.sdes.len() && scenario.sdes[sde_idx].arrival <= q {
            rec.ingest(&scenario.sdes[sde_idx])?;
            sde_idx += 1;
        }
        let result = rec.query(q)?;
        for (_, r) in &result.per_region {
            for ((lon, lat), ivs) in r.bus_congestions() {
                for iv in ivs.iter().filter(|iv| iv.start() > q - step) {
                    if scenario.truth_congested(lon, lat, iv.start()) {
                        outcome.true_pos += 1;
                    } else {
                        outcome.false_pos += 1;
                    }
                }
            }
        }
        // Crowd feedback loop for the crowd-validated variant: verdicts for
        // the open disagreements arrive before the next window.
        if matches!(rules.mode, RecognitionMode::SelfAdaptive(NoisyVariant::CrowdValidated)) {
            let locations: Vec<(f64, f64)> =
                result.per_region.iter().flat_map(|(_, r)| r.open_disagreements()).collect();
            for (lon, lat) in locations {
                let truth = scenario.truth_congested(lon, lat, q);
                let verdict = if rng.random::<f64>() < crowd_accuracy { truth } else { !truth };
                rec.ingest_crowd(lon, lat, verdict, q + 1)?;
            }
        }
        q += step;
    }
    Ok(outcome)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = ResultsWriter::new("ablation_adaptive");
    out.line("=== Ablation: static (3) vs pessimistic (3'+5) vs crowd-validated (3'+4) ===");
    out.line("bus-congestion interval onsets checked against ground truth; crowd 90 % accurate");
    out.line(String::new());
    out.line(format!(
        "{:>10} {:<18} {:>8} {:>8} {:>12}",
        "faulty %", "mode", "TP", "FP", "precision"
    ));

    for faulty in [0.0f64, 0.2, 0.4] {
        let mut cfg = ScenarioConfig::small(2700, 2024);
        cfg.fleet.n_buses = 40;
        cfg.fleet.faulty_fraction = faulty;
        let scenario = Scenario::generate(cfg)?;

        let modes: [(&str, TrafficRulesConfig); 3] = [
            ("static", TrafficRulesConfig::static_mode()),
            ("pessimistic", TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic)),
            ("crowd-validated", TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated)),
        ];
        for (name, rules) in modes {
            let o = evaluate(&scenario, rules, 0.9)?;
            let precision = if o.true_pos + o.false_pos > 0 {
                o.true_pos as f64 / (o.true_pos + o.false_pos) as f64
            } else {
                f64::NAN
            };
            out.line(format!(
                "{:>10.0} {:<18} {:>8} {:>8} {:>12.2}",
                faulty * 100.0,
                name,
                o.true_pos,
                o.false_pos,
                precision
            ));
        }
    }

    out.line(String::new());
    out.line("reading: static mode collapses as faulty buses increase. The pessimistic");
    out.line("variant (5) silences a bus on its *first* disagreement, maximising precision");
    out.line("at a heavy recall cost (honest buses disagreeing at threshold boundaries are");
    out.line("silenced too). The crowd-validated variant (4) keeps buses trusted until a");
    out.line("verdict arrives, preserving recall — but each faulty bus's first report per");
    out.line("location lands before the feedback loop closes, so its precision under many");
    out.line("faulty buses approaches the static mode's. The variants span a");
    out.line("precision/recall trade-off rather than dominating each other.");
    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
