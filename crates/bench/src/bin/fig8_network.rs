//! Figures 7–8: the street network and the SCATS sensor locations.
//!
//! The paper shows the OSM map of Dublin (Fig. 7), the derived street
//! network with SCATS locations as black dots (Fig. 8). This harness
//! generates the procedural substitute, reports its statistics, and renders
//! the network + sensor map as a PPM image.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin fig8_network
//! ```

use insight_bench::ResultsWriter;
use insight_datagen::network::{NetworkConfig, StreetNetwork};
use insight_datagen::regions::Region;
use insight_datagen::scats::ScatsDeployment;
use insight_gp::graph::Graph;
use insight_gp::render::render_ppm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = ResultsWriter::new("fig8_network");
    out.line("=== Figures 7-8: street network and SCATS locations ===");

    let cfg = NetworkConfig::dublin_default();
    let network = StreetNetwork::generate(&cfg, 1)?;
    let scats = ScatsDeployment::place(&network, 966, 0.04, 1)?;

    out.line(format!(
        "street network: {} junctions, {} segments, average degree {:.2}, connected: {}",
        network.len(),
        network.segments().len(),
        network.average_degree(),
        network.is_connected()
    ));
    let (x0, y0, x1, y1) = network.bbox();
    out.line(format!("bounding box: lon [{x0}, {x1}], lat [{y0}, {y1}]"));
    out.line(format!(
        "SCATS deployment: {} sensors on {} intersections",
        scats.len(),
        scats.intersections().len()
    ));

    out.line(String::new());
    out.line("sensors per region (the four recognition partitions of §7.1):");
    for region in Region::ALL {
        let intersections = scats.intersections().iter().filter(|i| i.region == region).count();
        let sensors = scats
            .intersections()
            .iter()
            .filter(|i| i.region == region)
            .map(|i| i.sensors.len())
            .sum::<usize>();
        out.line(format!("  {region:<8} {intersections:>5} intersections, {sensors:>5} sensors"));
    }

    // Render: all junctions in green (low value), instrumented junctions in
    // red (high value) — black-dot semantics of Fig. 8 via the value ramp.
    let graph = Graph::new(network.junctions().to_vec(), network.segments())?;
    let mut values: Vec<(usize, f64)> = (0..network.len()).map(|v| (v, 0.0)).collect();
    for i in scats.intersections() {
        values[i.junction] = (i.junction, 1.0);
    }
    std::fs::create_dir_all("target/experiments")?;
    let ppm = render_ppm(&graph, &values, 720, 520, 2);
    let img = "target/experiments/fig8_network.ppm";
    std::fs::write(img, ppm)?;
    out.line(String::new());
    out.line(format!(
        "map rendered to {img} (red dots = instrumented junctions, green = uninstrumented)"
    ));

    // CSV of sensor locations for external plotting.
    let mut csv = String::from("sensor,intersection,approach,lon,lat,region\n");
    for i in scats.intersections() {
        for &s in &i.sensors {
            csv.push_str(&format!("{s},{},{},{:.6},{:.6},{}\n", i.id, 0, i.lon, i.lat, i.region));
        }
    }
    let csv_path = "target/experiments/fig8_scats_locations.csv";
    std::fs::write(csv_path, csv)?;
    out.line(format!("sensor locations exported to {csv_path}"));

    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
