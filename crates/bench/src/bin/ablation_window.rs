//! Ablation: working memory larger than the step vs equal to the step.
//!
//! Section 4.2 / Figure 2 of the paper argue that when SDEs arrive with
//! delays it is "preferable to make WM longer than the step", so that SDEs
//! occurring before the previous query but arriving after it are amended
//! into the results rather than lost. This ablation quantifies that design
//! choice: under a delaying mediator, how many congestion intervals does
//! each configuration recognise relative to a zero-delay oracle?
//!
//! ```sh
//! cargo run --release -p insight-bench --bin ablation_window
//! ```

use insight_bench::ResultsWriter;
use insight_datagen::mediator::MediatorConfig;
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_rtec::window::WindowConfig;
use insight_traffic::{DistributedRecognizer, TrafficRulesConfig};

/// Runs recognition over the scenario and measures *congestion coverage*:
/// the set of (location, 30 s bucket) pairs some recognised congestion
/// interval covers, unioned over all queries. Late SDEs that are lost
/// (WM = step) leave their buckets uncovered; amended SDEs (WM > step)
/// recover them at a later query.
fn congestion_coverage(
    scenario: &Scenario,
    wm: i64,
    step: i64,
) -> Result<usize, Box<dyn std::error::Error>> {
    use std::collections::HashSet;
    let mut rec = DistributedRecognizer::from_deployment(
        TrafficRulesConfig::static_mode(),
        WindowConfig::new(wm, step)?,
        &scenario.scats,
    )?;
    let (start, end) = scenario.window();
    let mut sde_idx = 0usize;
    let mut covered: HashSet<(i64, i64, i64)> = HashSet::new();
    let mut q = start + step;
    while q <= end {
        while sde_idx < scenario.sdes.len() && scenario.sdes[sde_idx].arrival <= q {
            rec.ingest(&scenario.sdes[sde_idx])?;
            sde_idx += 1;
        }
        let result = rec.query(q)?;
        for (_, r) in &result.per_region {
            for ((lon, lat), ivs) in
                r.congested_intersections().into_iter().chain(r.bus_congestions())
            {
                let key = ((lon * 1e6) as i64, (lat * 1e6) as i64);
                for iv in ivs.iter() {
                    let iv_end = iv.end().unwrap_or(q).min(q);
                    let mut bucket = iv.start() / 30;
                    while bucket * 30 < iv_end {
                        covered.insert((key.0, key.1, bucket));
                        bucket += 1;
                    }
                }
            }
        }
        q += step;
    }
    Ok(covered.len())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = ResultsWriter::new("ablation_window");
    out.line("=== Ablation: WM > step vs WM = step under mediator delays ===");

    let step = 120i64;
    let delays = [0i64, 60, 180, 300];
    out.line("coverage = congested (location, 30 s) cells recognised across all queries");
    out.line(String::new());
    out.line(format!(
        "{:>12} {:>16} {:>16} {:>12}",
        "delay max(s)", "WM=step", "WM=3*step", "lost (%)"
    ));
    for &max_delay in &delays {
        let mut cfg = ScenarioConfig::small(2400, 5);
        cfg.fleet.n_buses = 40;
        cfg.mediator =
            MediatorConfig { max_delay_s: max_delay, drop_probability: 0.0, thinning: 1 };
        let scenario = Scenario::generate(cfg)?;

        let narrow = congestion_coverage(&scenario, step, step)?;
        let wide = congestion_coverage(&scenario, 3 * step, step)?;
        let lost =
            if wide > 0 { 100.0 * (wide.saturating_sub(narrow)) as f64 / wide as f64 } else { 0.0 };
        out.line(format!("{max_delay:>12} {narrow:>16} {wide:>16} {lost:>12.1}"));
    }

    out.line(String::new());
    out.line("expectation: with no delay both configurations cover the same congested");
    out.line("cells; as delays grow, WM = step loses SDEs arriving after their window");
    out.line("while WM > step amends them in (the Figure 2 design).");
    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
