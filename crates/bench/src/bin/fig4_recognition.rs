//! Figure 4: complex event recognition performance.
//!
//! "Figure 4 displays the average CE recognition times in CPU seconds. The
//! working memory ranges from 10 min, including on average 12,500 SDEs, to
//! 110 minutes, including 152,000 SDEs. … self-adaptive CE recognition has
//! a minimal overhead compared to static recognition \[and\] RTEC performs
//! real-time CE recognition in both settings."
//!
//! Protocol: the paper-scale Dublin scenario (942 buses, 966 SCATS sensors,
//! four region-parallel engines, step = 31 s); for each working-memory size
//! the mean recognition time over fully populated windows is reported for
//! both modes.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin fig4_recognition [--quick]
//! ```

use insight_bench::{secs, time_recognition, ResultsWriter};
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_traffic::{NoisyVariant, TrafficRulesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    // Working-memory sweep in minutes, as on the paper's x-axis.
    let wm_minutes: &[i64] = if quick { &[10, 30, 50] } else { &[10, 30, 50, 70, 90, 110] };
    let duration = wm_minutes.last().unwrap() * 60 + 600;
    let step = 31; // the paper annotates "31 sec" as the recognition step
    let n_queries = if quick { 3 } else { 5 };

    let mut out = ResultsWriter::new("fig4_recognition");
    out.line("=== Figure 4: event recognition performance ===");
    out.line(format!(
        "scenario: dublin_jan_2013 preset, duration {duration} s, step {step} s, {n_queries} queries per point"
    ));
    out.line("generating paper-scale scenario (942 buses, 966 sensors)…");
    let scenario = Scenario::generate(ScenarioConfig::dublin_jan_2013(duration, 1))?;
    out.line(format!(
        "  {} SDEs total ({:.1}/s aggregate — the paper's rate is ~21/s)",
        scenario.sdes.len(),
        scenario.sde_rate()
    ));

    out.line(String::new());
    out.line(format!(
        "{:>8} {:>12} {:>16} {:>20} {:>16}",
        "WM min", "SDEs/window", "static (s)", "self-adaptive (s)", "overhead (%)"
    ));

    for &minutes in wm_minutes {
        let wm = minutes * 60;
        let static_t =
            time_recognition(&scenario, TrafficRulesConfig::static_mode(), wm, step, n_queries)?;
        let adaptive_t = time_recognition(
            &scenario,
            TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic),
            wm,
            step,
            n_queries,
        )?;
        let overhead = 100.0 * (secs(adaptive_t.mean_time) - secs(static_t.mean_time))
            / secs(static_t.mean_time);
        out.line(format!(
            "{:>8} {:>12.0} {:>16.3} {:>20.3} {:>16.1}",
            minutes,
            static_t.mean_records,
            secs(static_t.mean_time),
            secs(adaptive_t.mean_time),
            overhead
        ));
    }

    out.line(String::new());
    out.line("shape checks (paper: both curves grow with WM, stay well under real time,");
    out.line("and the self-adaptive overhead is minimal).");
    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
