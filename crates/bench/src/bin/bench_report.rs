//! Performance report for the two PR-level optimisations: incremental
//! (delta-aware) windowed recognition and batched queue transfer.
//!
//! The recognition benchmark sweeps the window-overlap ratio step/WM over
//! {1, 1/2, 1/4, 1/8} and measures the mean per-query recognition time with
//! incremental evaluation on and off. Ratio 1 means disjoint windows (no
//! reusable work — incremental mode must not regress); ratio 1/8 means 7/8
//! of each window is shared with the previous query (maximal reuse). Full
//! re-evaluation is the engine's behaviour before the incremental rewrite,
//! so the "full" column doubles as the pre-PR baseline.
//!
//! The streams benchmark pushes a fixed item count through a bounded queue
//! with a producer thread and measures throughput for per-item transfer
//! versus `send_batch`/`recv_batch` at several batch sizes. An ingest sweep
//! then A/Bs the flat inline-attribute `DataItem` (and its zero-copy JSON
//! codec) against the pre-flat-map representation — an `Arc<BTreeMap>` with
//! heap-string values, rebuilt in this binary so both arms run on the same
//! host — reporting items/s and allocations/item from the counting global
//! allocator.
//!
//! The shard-scaling benchmark runs the full Dublin pipeline end to end
//! under the threaded runtime, sweeping the replica count of the two
//! partitioned stages (RTEC sharded by `region`, crowd tasks sharded by
//! `(query_time, region)`) from 1 up to the core count — always including
//! the 4-replica point — and reports SDEs/s. A second A/B toggles parallel
//! stratum evaluation inside a single RTEC engine against the serial
//! reference order. Wall-clock speedup from sharding requires real cores;
//! the report records the host's core count alongside the numbers.
//!
//! Results are written to `BENCH_recognition.json`, `BENCH_streams.json`
//! and `BENCH_parallel.json` in the current directory (run from the repo
//! root) and printed as tables.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin bench_report [--quick] [--check]
//! ```
//!
//! `--check` exits non-zero if either optimisation *regresses* by more than
//! 25% against its reference path — a CI smoke guard, deliberately lenient
//! to tolerate noisy shared runners.

use insight_bench::ResultsWriter;
use insight_core::pipeline::{build_pipeline_with, PipelineOptions};
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_rtec::window::WindowConfig;
use insight_streams::alloc::{allocation_count, CountingAllocator};
use insight_streams::intern::Key;
use insight_streams::item::DataItem;
use insight_streams::metrics::MetricsRegistry;
use insight_streams::queue::queue;
use insight_streams::runtime::Runtime;
use insight_traffic::{TrafficRecognizer, TrafficRulesConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The ingest sweep's allocations/item column needs the real allocator
/// hook; the counter costs one relaxed increment per allocation, noise the
/// wall-clock columns absorb.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One step/WM ratio measured in both evaluation modes.
struct RatioPoint {
    label: &'static str,
    ratio: f64,
    step: i64,
    queries: usize,
    full_ms: f64,
    incremental_ms: f64,
    /// Incremental evaluation through the pre-compiled execution plan.
    compiled_ms: f64,
    /// Mean window-cycle allocation count per query on the compiled arm
    /// (retained-buffer capacity growth + solver-scratch growth; includes
    /// the cold start, so steady state is better read from `allocs_last`).
    allocs_per_window: f64,
    /// Window-cycle allocation count of the first measured query — the cold
    /// start that sizes the retained tables.
    allocs_first: u64,
    /// Window-cycle allocation count of the *last* measured query. On a
    /// synthetic steady-state stream this is 0 (the zero-alloc tests pin
    /// that); on real traffic the working set keeps evolving, so the check
    /// asserts decay from `allocs_first` instead of strict zero.
    allocs_last: u64,
    /// Mean per-query time spent refilling and re-indexing the retained
    /// stores (compiled arm).
    cache_rebuild_ms: f64,
}

impl RatioPoint {
    fn speedup(&self) -> f64 {
        if self.incremental_ms > 0.0 {
            self.full_ms / self.incremental_ms
        } else {
            f64::INFINITY
        }
    }

    /// Compiled-plan speedup over the interpreted incremental engine at the
    /// same settings.
    fn compiled_speedup(&self) -> f64 {
        if self.compiled_ms > 0.0 {
            self.incremental_ms / self.compiled_ms
        } else {
            f64::INFINITY
        }
    }
}

/// One queue batch size and its measured throughput.
struct BatchPoint {
    batch: usize,
    elapsed_ms: f64,
    items_per_sec: f64,
}

/// Plumbing costs of one partitioned pipeline run, extracted from the
/// metrics snapshot: time spent inside the synthesized partitioner and
/// merge stages, producer time lost blocking on full queues, and the item
/// traffic (data + watermarks) entering the merge stages.
struct Overhead {
    partition_ms: f64,
    merge_ms: f64,
    queue_stall_ms: f64,
    merge_in_items: u64,
}

/// One replica count of the partitioned pipeline stages and its measured
/// end-to-end run time plus overhead breakdown.
struct ShardPoint {
    replicas: usize,
    elapsed_ms: f64,
    sdes_per_sec: f64,
    overhead: Overhead,
}

/// One checkpoint cadence of the supervised pipeline and its measured
/// end-to-end run time (cadence 0 = checkpointing off, the baseline).
struct RecoveryPoint {
    label: &'static str,
    cadence: usize,
    elapsed_ms: f64,
    sdes_per_sec: f64,
    checkpoints: u64,
    /// Minimum over reps of (this arm − the same rep's cadence-off arm):
    /// the barriers' cost with common-mode scheduler noise cancelled,
    /// clamped at zero.
    paired_delta_ms: f64,
}

/// One measured recognition sweep: wall-clock mean plus the compiled data
/// plane's allocation and cache-maintenance accounting.
struct MeasuredRun {
    mean_ms: f64,
    queries: usize,
    /// Mean `QueryTiming::window_allocations` per query (cold start
    /// included).
    allocs_per_window: f64,
    /// `window_allocations` of the first measured query (cold start).
    allocs_first: u64,
    /// `window_allocations` of the last measured query (steady state).
    allocs_last: u64,
    /// Mean `QueryTiming::cache_rebuild` per query, in ms.
    cache_rebuild_ms: f64,
}

/// Mean per-query wall-clock recognition time (ms) over `n_queries` fully
/// populated windows, with incremental evaluation, parallel stratum
/// evaluation and the pre-compiled execution plan toggled as requested.
fn mean_query_ms(
    scenario: &Scenario,
    wm: i64,
    step: i64,
    n_queries: usize,
    incremental: bool,
    parallel_strata: bool,
    compiled: bool,
) -> Result<MeasuredRun, Box<dyn std::error::Error>> {
    let window = WindowConfig::new(wm, step)?;
    let mut rec =
        TrafficRecognizer::from_deployment(TrafficRulesConfig::default(), window, &scenario.scats)?;
    rec.set_incremental(incremental);
    rec.set_parallel_strata(parallel_strata);
    rec.set_compiled(compiled);
    let (start, end) = scenario.window();

    let mut sde_idx = 0usize;
    let mut total_ms = 0.0f64;
    let mut queries = 0usize;
    let mut total_allocs = 0u64;
    let mut allocs_first = 0u64;
    let mut allocs_last = 0u64;
    let mut total_rebuild_ms = 0.0f64;
    let mut q = start + wm;
    while queries < n_queries && q <= end {
        while sde_idx < scenario.sdes.len() && scenario.sdes[sde_idx].arrival <= q {
            rec.ingest(&scenario.sdes[sde_idx])?;
            sde_idx += 1;
        }
        let t = Instant::now();
        let r = rec.query(q)?;
        total_ms += t.elapsed().as_secs_f64() * 1e3;
        total_allocs += r.raw.timing.window_allocations;
        if queries == 0 {
            allocs_first = r.raw.timing.window_allocations;
        }
        allocs_last = r.raw.timing.window_allocations;
        total_rebuild_ms += r.raw.timing.cache_rebuild.as_secs_f64() * 1e3;
        queries += 1;
        q += step;
    }
    if queries == 0 {
        return Err("scenario shorter than one working memory".into());
    }
    Ok(MeasuredRun {
        mean_ms: total_ms / queries as f64,
        queries,
        allocs_per_window: total_allocs as f64 / queries as f64,
        allocs_first,
        allocs_last,
        cache_rebuild_ms: total_rebuild_ms / queries as f64,
    })
}

/// Pushes `n` items through a bounded queue with a producer thread; the
/// consumer drains on the calling thread. `batch == 1` uses the per-item
/// `send`/`recv` path, larger batches use `send_batch`/`recv_batch`.
fn queue_throughput_ms(n: usize, capacity: usize, batch: usize) -> f64 {
    let (tx, mut rx) = queue(capacity, 1);
    let t = Instant::now();
    let producer = std::thread::spawn(move || {
        if batch <= 1 {
            for i in 0..n {
                tx.send(DataItem::new().with("n", i as i64));
            }
        } else {
            let mut chunk = Vec::with_capacity(batch);
            for i in 0..n {
                chunk.push(DataItem::new().with("n", i as i64));
                if chunk.len() == batch {
                    tx.send_batch(std::mem::take(&mut chunk));
                }
            }
            if !chunk.is_empty() {
                tx.send_batch(chunk);
            }
        }
        tx.finish();
    });
    let mut received = 0usize;
    if batch <= 1 {
        while rx.recv().is_some() {
            received += 1;
        }
    } else {
        while let Some(items) = rx.recv_batch(batch) {
            received += items.len();
        }
    }
    producer.join().expect("producer thread panicked");
    assert_eq!(received, n, "queue dropped items");
    t.elapsed().as_secs_f64() * 1e3
}

/// Wall-clock time (ms) of one end-to-end threaded run of the Dublin
/// pipeline with `replicas` replicas of both partitioned stages, plus the
/// partition/merge/queue overhead breakdown from the run's metrics.
/// Topology construction is excluded; only `Runtime::run` is timed.
fn pipeline_run_ms(
    scenario: &Scenario,
    window: WindowConfig,
    replicas: usize,
) -> Result<(f64, Overhead), Box<dyn std::error::Error>> {
    let options = PipelineOptions {
        rtec_replicas: replicas,
        crowd_replicas: replicas,
        ..PipelineOptions::standard()
    };
    let (topology, sink) =
        build_pipeline_with(scenario, TrafficRulesConfig::default(), window, &options)?;
    let metrics = Arc::new(MetricsRegistry::new());
    let t = Instant::now();
    Runtime::new(topology).with_metrics(metrics.clone()).run()?;
    let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!sink.items().is_empty(), "pipeline produced no recognitions");

    let snap = metrics.snapshot();
    let mut partition_ns = 0u64;
    let mut merge_ns = 0u64;
    for (name, stage) in &snap.stages {
        if name.ends_with("[part]") {
            partition_ns += stage.process_ns.sum_ns;
        } else if name.ends_with("[merge]") {
            merge_ns += stage.process_ns.sum_ns;
        }
    }
    if std::env::var_os("BENCH_DEBUG").is_some() {
        let mut stages: Vec<_> = snap.stages.iter().collect();
        stages.sort_by(|a, b| a.0.cmp(b.0));
        for (name, stage) in stages {
            eprintln!(
                "    [debug] stage {name}: {:.3} ms process, {} in / {} out",
                stage.process_ns.sum_ns as f64 / 1e6,
                stage.items_in,
                stage.items_out
            );
        }
    }
    let mut stall_ns = 0u64;
    let mut merge_in_items = 0u64;
    for (name, q) in &snap.queues {
        stall_ns += q.stall_ns;
        if q.stall_ns > 0 && std::env::var_os("BENCH_DEBUG").is_some() {
            eprintln!(
                "    [debug] queue {name}: {} stalls, {:.3} ms",
                q.send_stalls,
                q.stall_ns as f64 / 1e6
            );
        }
        if name.ends_with("[merge:q]") {
            merge_in_items += q.sent;
        }
    }
    let overhead = Overhead {
        partition_ms: partition_ns as f64 / 1e6,
        merge_ms: merge_ns as f64 / 1e6,
        queue_stall_ms: stall_ns as f64 / 1e6,
        merge_in_items,
    };
    Ok((elapsed_ms, overhead))
}

/// Wall-clock time (ms) of one end-to-end threaded run of the Dublin
/// pipeline under explicit [`PipelineOptions`] (recovery knobs included),
/// plus the full metrics snapshot for checkpoint/recovery counters.
fn supervised_run_ms(
    scenario: &Scenario,
    window: WindowConfig,
    options: &PipelineOptions,
) -> Result<(f64, insight_streams::metrics::MetricsSnapshot), Box<dyn std::error::Error>> {
    let (topology, sink) =
        build_pipeline_with(scenario, TrafficRulesConfig::default(), window, options)?;
    let metrics = Arc::new(MetricsRegistry::new());
    let t = Instant::now();
    Runtime::new(topology).with_metrics(metrics.clone()).run()?;
    let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!sink.items().is_empty(), "pipeline produced no recognitions");
    Ok((elapsed_ms, metrics.snapshot()))
}

/// Best of `reps` runs — throughput microbenchmarks want the least-noisy
/// sample, not the mean.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

// ---- ingest sweep: item representation + JSON A/B --------------------------

/// One ingest-path operation measured on one representation arm.
struct IngestPoint {
    op: &'static str,
    arm: &'static str,
    elapsed_ms: f64,
    items_per_sec: f64,
    allocs_per_item: f64,
}

/// The pre-flat-map value representation: heap strings for every string
/// value. The fields are never read back — the arm exists to pay the old
/// representation's build/allocation cost, not to be queried.
#[derive(Clone)]
#[allow(dead_code)]
enum RefValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

/// The pre-flat-map item representation: a shared B-tree keyed by the
/// interned key. Kept here as the reference arm so the sweep measures the
/// representation change itself, in one binary, on the same host — not two
/// checkouts against each other. Like the old `DataItem`, every insert goes
/// through `Key::new` (both arms pay the interner equally).
#[derive(Clone)]
struct RefItem {
    attrs: Arc<BTreeMap<Key, RefValue>>,
}

impl RefItem {
    fn new() -> RefItem {
        RefItem { attrs: Arc::new(BTreeMap::new()) }
    }

    fn with(mut self, key: &str, value: RefValue) -> RefItem {
        Arc::make_mut(&mut self.attrs).insert(Key::new(key), value);
        self
    }
}

/// A bus-schema-shaped item (12 attributes, the widest feed schema) on the
/// flat representation.
fn flat_bus_item(n: i64) -> DataItem {
    DataItem::new()
        .with("time", n)
        .with("arrival", n + 17)
        .with("region", "central")
        .with("kind", "bus")
        .with("bus", 33000 + n)
        .with("line", n % 60)
        .with("operator", 7i64)
        .with("delay", 120i64)
        .with("lon", -6.26 + n as f64 * 1e-6)
        .with("lat", 53.35)
        .with("direction", n % 2)
        .with("congestion", n % 3 == 0)
}

/// The same item on the reference representation.
fn ref_bus_item(n: i64) -> RefItem {
    RefItem::new()
        .with("time", RefValue::Int(n))
        .with("arrival", RefValue::Int(n + 17))
        .with("region", RefValue::Str("central".to_string()))
        .with("kind", RefValue::Str("bus".to_string()))
        .with("bus", RefValue::Int(33000 + n))
        .with("line", RefValue::Int(n % 60))
        .with("operator", RefValue::Int(7))
        .with("delay", RefValue::Int(120))
        .with("lon", RefValue::Float(-6.26 + n as f64 * 1e-6))
        .with("lat", RefValue::Float(53.35))
        .with("direction", RefValue::Int(n % 2))
        .with("congestion", RefValue::Bool(n % 3 == 0))
}

/// Times `n` iterations of `f` and counts their allocations, returning an
/// [`IngestPoint`]. Single measurement per call — wrap in [`best_of`]-style
/// repetition by taking the fastest rep's wall clock while keeping the
/// (deterministic) allocation count from the first.
fn ingest_point(
    op: &'static str,
    arm: &'static str,
    n: usize,
    reps: usize,
    mut f: impl FnMut(i64),
) -> IngestPoint {
    let mut elapsed_ms = f64::INFINITY;
    let mut allocs_per_item = f64::NAN;
    for rep in 0..reps {
        let allocs_before = allocation_count();
        let t = Instant::now();
        for i in 0..n {
            f(i as i64);
        }
        elapsed_ms = elapsed_ms.min(t.elapsed().as_secs_f64() * 1e3);
        // The allocation count is deterministic; take the last rep so
        // one-off warm-up allocations (interner, buffer growth) fall out.
        if rep + 1 == reps {
            allocs_per_item = (allocation_count() - allocs_before) as f64 / n as f64;
        }
    }
    IngestPoint {
        op,
        arm,
        elapsed_ms,
        items_per_sec: n as f64 / (elapsed_ms / 1e3),
        allocs_per_item,
    }
}

fn write_json(path: &str, body: &str) -> std::io::Result<()> {
    std::fs::write(path, body)?;
    eprintln!("wrote {path}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let profile = if quick { "quick" } else { "standard" };

    // ---- recognition: incremental vs full re-evaluation --------------------
    let wm: i64 = if quick { 480 } else { 1200 };
    let n_queries = if quick { 4 } else { 6 };
    // Enough data for the widest sweep: WM plus n_queries steps at ratio 1.
    let duration = wm + wm * n_queries as i64 + 120;
    let mut out = ResultsWriter::new("bench_report");
    out.line(format!("=== bench_report ({profile} profile) ==="));
    out.line(format!(
        "recognition: WM {wm} s, {n_queries} queries per point, scenario small/{duration} s"
    ));
    let scenario = Scenario::generate(ScenarioConfig::small(duration, 7))?;
    out.line(format!("  {} SDEs total", scenario.sdes.len()));
    out.line(String::new());
    out.line(format!(
        "{:>9} {:>8} {:>9} {:>12} {:>14} {:>9} {:>13} {:>9} {:>9} {:>12}",
        "step/WM",
        "step s",
        "queries",
        "full (ms)",
        "incr (ms)",
        "speedup",
        "compiled (ms)",
        "c-speedup",
        "allocs/w",
        "rebuild (ms)"
    ));

    // Warm-up: the first evaluation of a fresh process pays one-off costs
    // (lazy allocator pools, page faults on the engine's tables) that
    // otherwise land entirely on the first measured point and read as a
    // phantom regression there.
    let _ = mean_query_ms(&scenario, wm, wm, n_queries, false, false, false)?;
    let _ = mean_query_ms(&scenario, wm, wm, n_queries, true, false, false)?;
    let _ = mean_query_ms(&scenario, wm, wm, n_queries, true, false, true)?;

    let ratios: &[(&'static str, i64)] = &[("1", 1), ("1/2", 2), ("1/4", 4), ("1/8", 8)];
    let mut points = Vec::new();
    for &(label, den) in ratios {
        let step = wm / den;
        let full = mean_query_ms(&scenario, wm, step, n_queries, false, false, false)?;
        let incr = mean_query_ms(&scenario, wm, step, n_queries, true, false, false)?;
        let compiled = mean_query_ms(&scenario, wm, step, n_queries, true, false, true)?;
        let p = RatioPoint {
            label,
            ratio: 1.0 / den as f64,
            step,
            queries: full.queries,
            full_ms: full.mean_ms,
            incremental_ms: incr.mean_ms,
            compiled_ms: compiled.mean_ms,
            allocs_per_window: compiled.allocs_per_window,
            allocs_first: compiled.allocs_first,
            allocs_last: compiled.allocs_last,
            cache_rebuild_ms: compiled.cache_rebuild_ms,
        };
        out.line(format!(
            "{:>9} {:>8} {:>9} {:>12.3} {:>14.3} {:>8.2}x {:>13.3} {:>8.2}x {:>9.1} {:>12.3}",
            p.label,
            p.step,
            p.queries,
            p.full_ms,
            p.incremental_ms,
            p.speedup(),
            p.compiled_ms,
            p.compiled_speedup(),
            p.allocs_per_window,
            p.cache_rebuild_ms
        ));
        points.push(p);
    }

    let mut rec_json = String::new();
    write!(
        rec_json,
        "{{\n  \"benchmark\": \"incremental_recognition\",\n  \"profile\": \"{profile}\",\n  \
         \"baseline\": \"full per-window re-evaluation (engine behaviour before the incremental rewrite)\",\n  \
         \"scenario\": {{\"preset\": \"small\", \"duration_s\": {duration}, \"sdes\": {}}},\n  \
         \"wm_s\": {wm},\n  \"points\": [\n",
        scenario.sdes.len()
    )?;
    for (i, p) in points.iter().enumerate() {
        writeln!(
            rec_json,
            "    {{\"step_over_wm\": \"{}\", \"ratio\": {}, \"step_s\": {}, \"queries\": {}, \
             \"full_ms\": {:.3}, \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \
             \"compiled_ms\": {:.3}, \"compiled_speedup\": {:.3}, \
             \"allocs_per_window\": {:.1}, \"allocs_first\": {}, \"allocs_last\": {}, \
             \"cache_rebuild_ms\": {:.3}}}{}",
            p.label,
            p.ratio,
            p.step,
            p.queries,
            p.full_ms,
            p.incremental_ms,
            p.speedup(),
            p.compiled_ms,
            p.compiled_speedup(),
            p.allocs_per_window,
            p.allocs_first,
            p.allocs_last,
            p.cache_rebuild_ms,
            if i + 1 < points.len() { "," } else { "" }
        )?;
    }
    rec_json.push_str("  ]\n}\n");
    write_json("BENCH_recognition.json", &rec_json)?;

    // ---- streams: per-item vs batched queue transfer ------------------------
    let items = if quick { 50_000 } else { 200_000 };
    let capacity = 1024;
    let reps = if quick { 3 } else { 5 };
    out.line(String::new());
    out.line(format!("streams: {items} items through a capacity-{capacity} queue, best of {reps}"));
    out.line(format!(
        "{:>11} {:>13} {:>14} {:>9}",
        "batch size", "elapsed (ms)", "items/s", "speedup"
    ));

    let mut batch_points = Vec::new();
    for &batch in &[1usize, 4, 16, 64] {
        let elapsed_ms = best_of(reps, || queue_throughput_ms(items, capacity, batch));
        let items_per_sec = items as f64 / (elapsed_ms / 1e3);
        batch_points.push(BatchPoint { batch, elapsed_ms, items_per_sec });
    }
    let unbatched_ms = batch_points[0].elapsed_ms;
    for p in &batch_points {
        out.line(format!(
            "{:>11} {:>13.2} {:>14.0} {:>8.2}x",
            p.batch,
            p.elapsed_ms,
            p.items_per_sec,
            unbatched_ms / p.elapsed_ms
        ));
    }

    // ---- ingest sweep: flat inline items + zero-copy JSON vs the old
    // representation, measured in-binary on the same host ---------------------
    let ingest_items = if quick { 20_000 } else { 100_000 };
    out.line(String::new());
    out.line(format!(
        "ingest sweep: {ingest_items} bus-schema items (12 attrs), best of {reps}, \
         allocations counted by the global allocator hook"
    ));
    out.line(format!(
        "{:>11} {:>15} {:>13} {:>14} {:>13}",
        "op", "arm", "elapsed (ms)", "items/s", "allocs/item"
    ));

    let mut ingest_points = Vec::new();
    ingest_points.push(ingest_point("build", "flat", ingest_items, reps, |n| {
        std::hint::black_box(flat_bus_item(n));
    }));
    ingest_points.push(ingest_point("build", "btreemap-ref", ingest_items, reps, |n| {
        std::hint::black_box(ref_bus_item(n));
    }));
    let lines: Vec<String> = (0..ingest_items as i64).map(|n| flat_bus_item(n).to_json()).collect();
    ingest_points.push(ingest_point("parse", "flat", ingest_items, reps, |n| {
        std::hint::black_box(DataItem::from_json(&lines[n as usize]).expect("line parses"));
    }));
    ingest_points.push(ingest_point("parse", "btreemap-ref", ingest_items, reps, |n| {
        // The old parse path: a fresh `String`-keyed B-tree per item.
        std::hint::black_box(
            insight_streams::json::parse_object(&lines[n as usize]).expect("line parses"),
        );
    }));
    let flat_items: Vec<DataItem> = (0..ingest_items as i64).map(flat_bus_item).collect();
    let mut buf = String::with_capacity(1024);
    ingest_points.push(ingest_point("serialize", "reused-buffer", ingest_items, reps, |n| {
        buf.clear();
        flat_items[n as usize].to_json_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    ingest_points.push(ingest_point("serialize", "fresh-string", ingest_items, reps, |n| {
        std::hint::black_box(flat_items[n as usize].to_json());
    }));
    drop((lines, flat_items));
    for p in &ingest_points {
        out.line(format!(
            "{:>11} {:>15} {:>13.2} {:>14.0} {:>13.2}",
            p.op, p.arm, p.elapsed_ms, p.items_per_sec, p.allocs_per_item
        ));
    }
    let ingest_pair = |op: &str| {
        let flat = ingest_points
            .iter()
            .find(|p| p.op == op && p.arm == "flat")
            .expect("flat arm measured");
        let reference = ingest_points
            .iter()
            .find(|p| p.op == op && p.arm == "btreemap-ref")
            .expect("reference arm measured");
        (flat, reference)
    };
    for op in ["build", "parse"] {
        let (flat, reference) = ingest_pair(op);
        out.line(format!(
            "  {op}: {:.1}x fewer allocations, {:.2}x throughput vs the old representation",
            reference.allocs_per_item / flat.allocs_per_item.max(1e-9),
            flat.items_per_sec / reference.items_per_sec
        ));
    }

    let mut str_json = String::new();
    write!(
        str_json,
        "{{\n  \"benchmark\": \"queue_batching\",\n  \"profile\": \"{profile}\",\n  \
         \"items\": {items},\n  \"capacity\": {capacity},\n  \"reps\": {reps},\n  \"points\": [\n"
    )?;
    for (i, p) in batch_points.iter().enumerate() {
        writeln!(
            str_json,
            "    {{\"batch_size\": {}, \"elapsed_ms\": {:.3}, \"items_per_sec\": {:.0}, \
             \"speedup_vs_unbatched\": {:.3}}}{}",
            p.batch,
            p.elapsed_ms,
            p.items_per_sec,
            unbatched_ms / p.elapsed_ms,
            if i + 1 < batch_points.len() { "," } else { "" }
        )?;
    }
    write!(
        str_json,
        "  ],\n  \"ingest\": {{\n    \"items\": {ingest_items},\n    \"reps\": {reps},\n    \
         \"schema\": \"bus (12 attrs)\",\n    \"reference\": \"Arc<BTreeMap> + heap-string values \
         (pre-flat-map representation)\",\n    \"points\": [\n"
    )?;
    for (i, p) in ingest_points.iter().enumerate() {
        writeln!(
            str_json,
            "      {{\"op\": \"{}\", \"arm\": \"{}\", \"elapsed_ms\": {:.3}, \
             \"items_per_sec\": {:.0}, \"allocs_per_item\": {:.3}}}{}",
            p.op,
            p.arm,
            p.elapsed_ms,
            p.items_per_sec,
            p.allocs_per_item,
            if i + 1 < ingest_points.len() { "," } else { "" }
        )?;
    }
    str_json.push_str("    ]\n  }\n}\n");
    write_json("BENCH_streams.json", &str_json)?;

    // ---- shard-parallel stages: replica scaling + strata A/B ----------------
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Sweep 1..=cores, but always include the 4-replica point so the report
    // is comparable across hosts; cap at 8 (the RTEC stage shards by the 4
    // regions, so scaling flattens well before that).
    let max_replicas = cores.clamp(4, 8);
    let pipe_duration: i64 = if quick { 1200 } else { 2400 };
    // Even the quick profile needs best-of-5: the shard points are compared
    // against each other (monotonicity check below), so a single noisy run
    // is not enough, and at ~10 ms per run the minimum of 5 is what it
    // takes to keep scheduler noise under the check's guard bands.
    let pipe_reps = 5;
    let pipe_window = WindowConfig::new(600, 300)?;
    let pipe_scenario = Scenario::generate(ScenarioConfig::small(pipe_duration, 7))?;
    let n_sdes = pipe_scenario.sdes.len();
    out.line(String::new());
    out.line(format!(
        "shard scaling: Dublin pipeline end to end, {n_sdes} SDEs, WM 600 s / step 300 s, \
         best of {pipe_reps}, {cores} core(s)"
    ));
    out.line(format!(
        "{:>9} {:>13} {:>12} {:>9} {:>11}",
        "replicas", "elapsed (ms)", "SDEs/s", "speedup", "eff/core"
    ));

    // Warm-up for the same reason as the recognition sweep: the first
    // pipeline run of the process pays one-off costs that would otherwise
    // inflate the single-replica baseline every other point is divided by.
    let _ = pipeline_run_ms(&pipe_scenario, pipe_window, 1)?;

    // Interleave the reps round-robin over the replica counts instead of
    // running each point's reps back to back: a sustained load spike on the
    // host then costs every point one rep rather than wiping out all reps of
    // whichever point it happened to land on, which is what the best-of-reps
    // minimum needs to stay comparable across points.
    let mut best_elapsed: Vec<Option<f64>> = vec![None; max_replicas];
    let mut best_overhead: Vec<Option<Overhead>> = (0..max_replicas).map(|_| None).collect();
    for _ in 0..pipe_reps {
        for replicas in 1..=max_replicas {
            let (elapsed, overhead) = pipeline_run_ms(&pipe_scenario, pipe_window, replicas)?;
            let e = &mut best_elapsed[replicas - 1];
            if e.is_none_or(|b| elapsed < b) {
                *e = Some(elapsed);
            }
            // The overhead breakdown is tracked independently of the elapsed
            // minimum: the stage timers are wall-clock brackets, so a
            // preemption landing inside a bracketed section charges the whole
            // descheduled quantum (several ms on a busy 1-core host) to that
            // stage even in a rep whose end-to-end time was the fastest. The
            // minimum overhead across reps is the intrinsic plumbing cost the
            // guard band is meant to bound.
            let sum = |o: &Overhead| o.partition_ms + o.merge_ms + o.queue_stall_ms;
            let slot = &mut best_overhead[replicas - 1];
            if slot.as_ref().is_none_or(|b| sum(&overhead) < sum(b)) {
                *slot = Some(overhead);
            }
        }
    }
    let mut shard_points = Vec::new();
    for (i, elapsed) in best_elapsed.into_iter().enumerate() {
        let elapsed_ms = elapsed.expect("at least one rep");
        let overhead = best_overhead[i].take().expect("at least one rep");
        let sdes_per_sec = n_sdes as f64 / (elapsed_ms / 1e3);
        shard_points.push(ShardPoint { replicas: i + 1, elapsed_ms, sdes_per_sec, overhead });
    }
    let serial_pipeline_ms = shard_points[0].elapsed_ms;
    // Per-core efficiency divides the speedup by the cores a shard shape can
    // actually use — extra replicas on a starved host are not "wasted cores".
    let usable = |replicas: usize| replicas.min(cores) as f64;
    for p in &shard_points {
        let speedup = serial_pipeline_ms / p.elapsed_ms;
        out.line(format!(
            "{:>9} {:>13.1} {:>12.0} {:>8.2}x {:>11.2}",
            p.replicas,
            p.elapsed_ms,
            p.sdes_per_sec,
            speedup,
            speedup / usable(p.replicas)
        ));
    }

    out.line(String::new());
    out.line("shard overhead breakdown (cleanest rep per point):");
    out.line(format!(
        "{:>9} {:>11} {:>11} {:>12} {:>12}",
        "replicas", "part (ms)", "merge (ms)", "stalls (ms)", "merge items"
    ));
    for p in &shard_points {
        out.line(format!(
            "{:>9} {:>11.2} {:>11.2} {:>12.2} {:>12}",
            p.replicas,
            p.overhead.partition_ms,
            p.overhead.merge_ms,
            p.overhead.queue_stall_ms,
            p.overhead.merge_in_items
        ));
    }

    // Parallel vs serial stratum evaluation inside one engine, incremental
    // mode on in both arms. Reuses the recognition scenario at the 1/4
    // overlap ratio.
    // Both arms are only a couple of milliseconds, so they get the same
    // best-of-reps treatment as the shard sweep — a single pair of runs
    // regularly differs by more than the check's guard band on pure noise.
    let ab_step = wm / 4;
    let mut serial_strata_ms = f64::INFINITY;
    let mut parallel_strata_ms = f64::INFINITY;
    let mut ab_queries = 0usize;
    let (spawned_before, dispatched_before) = insight_rtec::pool::stats();
    for _ in 0..pipe_reps {
        let serial = mean_query_ms(&scenario, wm, ab_step, n_queries, true, false, false)?;
        let parallel = mean_query_ms(&scenario, wm, ab_step, n_queries, true, true, false)?;
        serial_strata_ms = serial_strata_ms.min(serial.mean_ms);
        parallel_strata_ms = parallel_strata_ms.min(parallel.mean_ms);
        ab_queries = serial.queries;
    }
    let (spawned_after, dispatched_after) = insight_rtec::pool::stats();
    // The persistent pool spawns at most cores-1 threads once per process;
    // before it, every window spawned a scoped thread per stratum. The
    // deltas across the parallel arm are the direct evidence.
    let pool_spawned = spawned_after - spawned_before;
    let pool_dispatched = dispatched_after - dispatched_before;
    out.line(String::new());
    out.line(format!(
        "strata A/B ({ab_queries} queries, WM {wm} s / step {ab_step} s): serial {serial_strata_ms:.3} ms, \
         parallel {parallel_strata_ms:.3} ms, speedup {:.2}x",
        serial_strata_ms / parallel_strata_ms
    ));
    out.line(format!(
        "  worker pool: {pool_spawned} thread(s) spawned, {pool_dispatched} task(s) dispatched \
         across the parallel arm (inline fallback on 1 core)"
    ));

    let mut par_json = String::new();
    write!(
        par_json,
        "{{\n  \"benchmark\": \"shard_scaling\",\n  \"profile\": \"{profile}\",\n  \
         \"cores\": {cores},\n  \
         \"scenario\": {{\"preset\": \"small\", \"duration_s\": {pipe_duration}, \"sdes\": {n_sdes}}},\n  \
         \"window\": {{\"wm_s\": 600, \"step_s\": 300}},\n  \
         \"reps\": {pipe_reps},\n  \"points\": [\n"
    )?;
    for (i, p) in shard_points.iter().enumerate() {
        let speedup = serial_pipeline_ms / p.elapsed_ms;
        writeln!(
            par_json,
            "    {{\"replicas\": {}, \"elapsed_ms\": {:.3}, \"sdes_per_sec\": {:.0}, \
             \"speedup_vs_1\": {:.3}, \"efficiency_per_core\": {:.3}, \
             \"partition_ms\": {:.3}, \"merge_ms\": {:.3}, \"queue_stall_ms\": {:.3}, \
             \"merge_in_items\": {}}}{}",
            p.replicas,
            p.elapsed_ms,
            p.sdes_per_sec,
            speedup,
            speedup / usable(p.replicas),
            p.overhead.partition_ms,
            p.overhead.merge_ms,
            p.overhead.queue_stall_ms,
            p.overhead.merge_in_items,
            if i + 1 < shard_points.len() { "," } else { "" }
        )?;
    }
    write!(
        par_json,
        "  ],\n  \"strata_ab\": {{\"queries\": {ab_queries}, \"wm_s\": {wm}, \"step_s\": {ab_step}, \
         \"serial_ms\": {serial_strata_ms:.3}, \"parallel_ms\": {parallel_strata_ms:.3}, \
         \"speedup\": {:.3}, \
         \"pool\": {{\"threads_spawned\": {pool_spawned}, \"tasks_dispatched\": {pool_dispatched}}}}}\n}}\n",
        serial_strata_ms / parallel_strata_ms
    )?;
    write_json("BENCH_parallel.json", &par_json)?;

    // ---- crash recovery: checkpoint overhead + recovery latency -------------
    // Two costs, reported separately because they have different knobs:
    //
    // * *supervision* — arming `FaultPolicy::Restart` logs every input item
    //   (one clone per supervised worker pass) so a crashed worker can be
    //   replayed; this is paid regardless of cadence, measured as the
    //   cadence-off arm against the unsupervised baseline;
    // * *checkpointing* — the barriers themselves (engine snapshots, store
    //   writes, log truncation), measured as each cadence against the
    //   cadence-off arm. Cadence 1000 is the default recommended in the
    //   README; the check below holds its cost to ≤5%.
    let recovery_reps = pipe_reps + 2;
    // The sweep runs the *plain* (1-replica) topology: checkpoint cost is a
    // property of the barrier/snapshot machinery, not of the shard shape,
    // and single workers keep the 1-core scheduler noise far below the 5%
    // band. It also needs a longer stream than the shard sweep so each
    // worker consumes well past the default cadence and barriers actually
    // fire.
    let plain =
        |base: PipelineOptions| PipelineOptions { rtec_replicas: 1, crowd_replicas: 1, ..base };
    let recovery_duration: i64 = if quick { 4800 } else { 9600 };
    let recovery_scenario = Scenario::generate(ScenarioConfig::small(recovery_duration, 7))?;
    let n_recovery_sdes = recovery_scenario.sdes.len();
    out.line(String::new());
    out.line(format!(
        "crash recovery: plain Dublin pipeline, {n_recovery_sdes} SDEs, WM 600 s / step 300 s, \
         best of {recovery_reps}"
    ));
    out.line(format!(
        "{:>13} {:>13} {:>12} {:>10} {:>16} {:>7}",
        "cadence", "elapsed (ms)", "SDEs/s", "vs unsup", "ckpt cost (ms)", "ckpts"
    ));
    let cadences: &[(&'static str, usize)] = &[("off", 0), ("1k", 1_000), ("10k", 10_000)];
    let mut best_unsupervised = f64::INFINITY;
    let mut best: Vec<Option<(f64, u64)>> = vec![None; cadences.len()];
    // Checkpoint overhead is a couple of milliseconds against scheduler
    // noise of the same order, so it is measured as a *paired* difference:
    // each rep runs the cadence-off arm and every cadence arm back to back,
    // and a load spike that inflates one inflates the other, cancelling in
    // the per-rep delta. The minimum delta over reps is the cleanest
    // observation of the barriers' true cost.
    let mut best_delta: Vec<f64> = vec![f64::INFINITY; cadences.len()];
    for _ in 0..recovery_reps {
        let (unsupervised, _) = supervised_run_ms(
            &recovery_scenario,
            pipe_window,
            &plain(PipelineOptions::standard()),
        )?;
        best_unsupervised = best_unsupervised.min(unsupervised);
        let mut rep_off = f64::INFINITY;
        for (i, &(_, cadence)) in cadences.iter().enumerate() {
            // An unset cadence under restart supervision now defaults to
            // `DEFAULT_RESTART_CADENCE`, so the off arm disables barriers
            // explicitly with a cadence the stream can never reach.
            let effective = if cadence == 0 { usize::MAX } else { cadence };
            let options = plain(PipelineOptions::recovering(effective, 2));
            let (elapsed, snap) = supervised_run_ms(&recovery_scenario, pipe_window, &options)?;
            let checkpoints: u64 = snap.stages.values().map(|s| s.checkpoints).sum();
            if cadence == 0 {
                rep_off = elapsed;
            }
            best_delta[i] = best_delta[i].min(elapsed - rep_off);
            let slot = &mut best[i];
            if slot.is_none_or(|(b, _)| elapsed < b) {
                *slot = Some((elapsed, checkpoints));
            }
        }
    }
    let mut recovery_points = Vec::new();
    for (i, &(label, cadence)) in cadences.iter().enumerate() {
        let (elapsed_ms, checkpoints) = best[i].expect("at least one rep");
        recovery_points.push(RecoveryPoint {
            label,
            cadence,
            elapsed_ms,
            sdes_per_sec: n_recovery_sdes as f64 / (elapsed_ms / 1e3),
            checkpoints,
            paired_delta_ms: best_delta[i].max(0.0),
        });
    }
    let supervised_off_ms = recovery_points[0].elapsed_ms;
    out.line(format!(
        "{:>13} {:>13.1} {:>12.0} {:>9.1}% {:>16} {:>7}",
        "unsupervised",
        best_unsupervised,
        n_recovery_sdes as f64 / (best_unsupervised / 1e3),
        0.0,
        "-",
        0
    ));
    for p in &recovery_points {
        out.line(format!(
            "{:>13} {:>13.1} {:>12.0} {:>9.1}% {:>9.2} ({:.1}%) {:>7}",
            p.label,
            p.elapsed_ms,
            p.sdes_per_sec,
            (p.elapsed_ms / best_unsupervised - 1.0) * 100.0,
            p.paired_delta_ms,
            p.paired_delta_ms / supervised_off_ms * 100.0,
            p.checkpoints
        ));
    }

    // Recovery latency: kill an RTEC worker halfway through the stream and
    // measure how long the supervisor takes to rebuild, restore and replay
    // it back to the pre-fault position (the stage's recovery_ns counter).
    let kill_at = (n_recovery_sdes / 2).max(1) as u64;
    let mut recovery_ms = f64::INFINITY;
    let mut replayed_items = 0u64;
    let mut killed_elapsed_ms = f64::INFINITY;
    for _ in 0..recovery_reps {
        let switch = insight_streams::chaos::KillSwitch::new();
        let options = PipelineOptions {
            kill_rtec_at: Some((kill_at, switch.clone())),
            ..plain(PipelineOptions::recovering(1_000, 2))
        };
        let (elapsed, snap) = supervised_run_ms(&recovery_scenario, pipe_window, &options)?;
        assert!(switch.fired(), "the injected kill never struck");
        let rtec = snap.rollup_stages().remove("rtec").expect("rtec stage reported");
        assert!(rtec.combined.restores > 0, "the supervisor restored the killed worker");
        let rep_recovery_ms = rtec.combined.recovery_ns as f64 / 1e6;
        if rep_recovery_ms < recovery_ms {
            recovery_ms = rep_recovery_ms;
            replayed_items = rtec.combined.replayed_items;
        }
        killed_elapsed_ms = killed_elapsed_ms.min(elapsed);
    }
    out.line(String::new());
    out.line(format!(
        "recovery latency: kill at SDE {kill_at}, cadence 1k — restore+replay {recovery_ms:.3} ms \
         ({replayed_items} item(s) replayed), killed run {killed_elapsed_ms:.1} ms end to end"
    ));

    let mut rcv_json = String::new();
    write!(
        rcv_json,
        "{{\n  \"benchmark\": \"crash_recovery\",\n  \"profile\": \"{profile}\",\n  \
         \"scenario\": {{\"preset\": \"small\", \"duration_s\": {recovery_duration}, \"sdes\": {n_recovery_sdes}}},\n  \
         \"window\": {{\"wm_s\": 600, \"step_s\": 300}},\n  \"reps\": {recovery_reps},\n  \
         \"unsupervised_ms\": {best_unsupervised:.3},\n  \
         \"checkpoint_overhead\": [\n"
    )?;
    for (i, p) in recovery_points.iter().enumerate() {
        writeln!(
            rcv_json,
            "    {{\"cadence\": \"{}\", \"checkpoint_every\": {}, \"elapsed_ms\": {:.3}, \
             \"sdes_per_sec\": {:.0}, \"overhead_vs_unsupervised\": {:.4}, \
             \"paired_checkpoint_cost_ms\": {:.3}, \
             \"overhead_vs_checkpoint_off\": {:.4}, \"checkpoints\": {}}}{}",
            p.label,
            p.cadence,
            p.elapsed_ms,
            p.sdes_per_sec,
            p.elapsed_ms / best_unsupervised - 1.0,
            p.paired_delta_ms,
            p.paired_delta_ms / supervised_off_ms,
            p.checkpoints,
            if i + 1 < recovery_points.len() { "," } else { "" }
        )?;
    }
    write!(
        rcv_json,
        "  ],\n  \"recovery\": {{\"kill_at_sde\": {kill_at}, \"checkpoint_every\": 1000, \
         \"recovery_ms\": {recovery_ms:.3}, \"replayed_items\": {replayed_items}, \
         \"killed_run_ms\": {killed_elapsed_ms:.3}}}\n}}\n"
    )?;
    write_json("BENCH_recovery.json", &rcv_json)?;

    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());

    if check {
        let mut failures = Vec::new();
        for p in &points {
            if p.incremental_ms > p.full_ms * 1.25 {
                failures.push(format!(
                    "recognition regression at step/WM={}: incremental {:.3} ms vs full {:.3} ms",
                    p.label, p.incremental_ms, p.full_ms
                ));
            }
        }
        // The compiled plan must at least hold its own against the
        // interpreter where incremental reuse is highest (step/WM = 1/8, the
        // paper's overlapping-window regime); the band absorbs scheduler
        // noise on loaded hosts, the committed BENCH_recognition.json
        // carries the real numbers.
        for p in points.iter().filter(|p| p.label == "1/8") {
            if p.compiled_ms > p.incremental_ms * 1.25 {
                failures.push(format!(
                    "compiled-plan regression at step/WM={}: compiled {:.3} ms vs interpreted \
                     {:.3} ms",
                    p.label, p.compiled_ms, p.incremental_ms
                ));
            }
        }
        // The slot-indexed data plane must hold its measured win over the
        // pre-slot compiled path at disjoint windows. The committed
        // BENCH_recognition.json before the rework carried 10.511 ms at
        // step/WM = 1 on the standard profile; the floor demands at least
        // the 10% improvement the rework measured, minus the usual noise
        // band on loaded hosts. The quick profile runs a different window
        // size, so the absolute floor only applies to the standard sweep.
        if !quick {
            const PRE_SLOT_RATIO1_MS: f64 = 10.511;
            for p in points.iter().filter(|p| p.label == "1") {
                let floor = PRE_SLOT_RATIO1_MS * 0.90;
                if p.compiled_ms > floor * 1.25 {
                    failures.push(format!(
                        "slot-state regression at step/WM={}: compiled {:.3} ms vs the \
                         {floor:.3} ms floor (pre-slot baseline {PRE_SLOT_RATIO1_MS} ms - 10%)",
                        p.label, p.compiled_ms
                    ));
                }
            }
        }
        // Window-cycle allocations must decay sharply after the cold start:
        // the first query sizes the retained tables, later queries allocate
        // only for genuinely new working-set entries (Dublin traffic keeps
        // introducing vehicles and areas, so strict zero only holds on the
        // synthetic steady-state stream the zero-alloc tests pin). A last
        // window allocating half the cold start or more means the retained
        // state is being rebuilt instead of reused.
        for p in &points {
            if p.allocs_last.saturating_mul(2) >= p.allocs_first.max(1) {
                failures.push(format!(
                    "window-cycle allocations did not decay at step/WM={}: cold start {} vs \
                     last window {} (mean {:.1}/window over the sweep)",
                    p.label, p.allocs_first, p.allocs_last, p.allocs_per_window
                ));
            }
        }
        for p in &batch_points[1..] {
            if p.elapsed_ms > unbatched_ms * 1.25 {
                failures.push(format!(
                    "batching regression at batch={}: {:.2} ms vs per-item {:.2} ms",
                    p.batch, p.elapsed_ms, unbatched_ms
                ));
            }
        }
        // The flat representation's claim is its allocation contract, which
        // the counting allocator measures deterministically: building or
        // parsing a bus-schema item must allocate at least 5x less than the
        // old Arc<BTreeMap> representation (the measured ratios are far
        // higher — the floor only catches a representation regression).
        // Wall clock gets the file-wide lenient band: the flat arm must not
        // be slower than the reference beyond noise. Serializing into a warm
        // reused buffer must stay allocation-free.
        for op in ["build", "parse"] {
            let (flat, reference) = ingest_pair(op);
            let ratio = reference.allocs_per_item / flat.allocs_per_item.max(1e-9);
            if ratio < 5.0 {
                failures.push(format!(
                    "ingest {op} allocation regression: flat {:.2} allocs/item vs reference \
                     {:.2} (ratio {ratio:.1}x < 5x floor)",
                    flat.allocs_per_item, reference.allocs_per_item
                ));
            }
            if flat.elapsed_ms > reference.elapsed_ms * 1.25 {
                failures.push(format!(
                    "ingest {op} wall-clock regression: flat {:.2} ms vs reference {:.2} ms \
                     (> 25%)",
                    flat.elapsed_ms, reference.elapsed_ms
                ));
            }
        }
        for p in ingest_points.iter().filter(|p| p.arm == "reused-buffer") {
            if p.allocs_per_item >= 0.01 {
                failures.push(format!(
                    "ingest serialize regression: reused-buffer arm allocates \
                     {:.3}/item (want ~0)",
                    p.allocs_per_item
                ));
            }
        }
        // Sharding must be a genuine speedup wherever parallel hardware
        // exists. On a single-core host the replicas time-slice one CPU, so
        // the best any shard shape can do is break even minus the partition
        // plumbing; there the criterion is that this plumbing stays small —
        // a floor on the speedup plus the explicit overhead guard below,
        // with the breakdown table as the evidence trail.
        // The 1-core floor carries ~0.05 of noise margin on top of the
        // ~0.85-0.90x a clean run measures: the bench container shows
        // multi-second load spikes that inflate every rep in a window, which
        // best-of-reps cannot dodge. The committed BENCH_parallel.json is
        // regenerated from a clean passing run and carries the real numbers;
        // this band only has to catch genuine regressions, not noise.
        let shard_floor = if cores > 1 { 1.0 } else { 0.75 };
        for p in &shard_points[1..] {
            let speedup = serial_pipeline_ms / p.elapsed_ms;
            if speedup < shard_floor {
                failures.push(format!(
                    "shard regression at replicas={}: speedup {:.3}x below the {:.2} floor \
                     ({:.1} ms vs single-replica {:.1} ms on {} core(s))",
                    p.replicas, speedup, shard_floor, p.elapsed_ms, serial_pipeline_ms, cores
                ));
            }
        }
        // The partition plumbing itself (stamping, merge) must stay well
        // under the guard band relative to the whole run — this is what the
        // per-core-efficiency fix is measured by on any host. Producer queue
        // stalls are reported in the table but *not* counted as plumbing:
        // a blocked producer is backpressure doing its job (it burns no CPU
        // and the consumer keeps draining), and on the bounded `sde` queue
        // the feeds spend most of the run parked by design.
        for p in &shard_points[1..] {
            let overhead_ms = p.overhead.partition_ms + p.overhead.merge_ms;
            if overhead_ms > p.elapsed_ms * 0.25 {
                failures.push(format!(
                    "partition overhead at replicas={}: {:.2} ms of {:.1} ms elapsed (> 25%)",
                    p.replicas, overhead_ms, p.elapsed_ms
                ));
            }
        }
        // Scaling must also be monotonic: adding a replica may buy nothing
        // (no spare cores) but must never make the pipeline slower. A 5%
        // band absorbs scheduler noise that best-of-reps cannot. On a
        // single core the 1→2 step is not a scaling step at all — it is the
        // unsharded→sharded transition, whose fixed plumbing cost is what
        // the floor and the overhead guard above already bound — so there
        // the comparison runs among the sharded points only, and the band
        // widens to 10% for the same load-spike noise as the floor above.
        let monotonic_from = if cores > 1 { 0 } else { 1 };
        let monotonic_band = if cores > 1 { 0.95 } else { 0.90 };
        for w in shard_points[monotonic_from..].windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let (sa, sb) = (serial_pipeline_ms / a.elapsed_ms, serial_pipeline_ms / b.elapsed_ms);
            if sb < sa * monotonic_band {
                failures.push(format!(
                    "shard scaling not monotonic: speedup {:.3}x at {} replicas but {:.3}x at {}",
                    sa, a.replicas, sb, b.replicas
                ));
            }
        }
        // Parallel strata must not be a slowdown: ≥ 1.0x on real cores, and
        // within measurement noise of break-even on a single core, where the
        // pool runs every stratum inline — the spawn/dispatch counters prove
        // no thread churn is left to pay for. Clean 1-core runs measure
        // 1.00-1.04x; the 0.95 floor is the same load-spike margin as the
        // shard floor above.
        let strata_speedup = serial_strata_ms / parallel_strata_ms;
        let strata_floor = if cores > 1 { 1.0 } else { 0.95 };
        if strata_speedup < strata_floor {
            failures.push(format!(
                "parallel strata regression: {parallel_strata_ms:.3} ms vs serial \
                 {serial_strata_ms:.3} ms (speedup {strata_speedup:.3}x < {strata_floor:.2} \
                 on {cores} core(s))"
            ));
        }
        if cores == 1 && (pool_spawned > 0 || pool_dispatched > 0) {
            failures.push(format!(
                "strata pool spawned {pool_spawned} thread(s) / dispatched {pool_dispatched} \
                 task(s) on a 1-core host — the inline fallback did not engage"
            ));
        }
        // Checkpointing at the default cadence must cost at most 5% of
        // throughput on top of the armed supervisor, measured by the paired
        // per-rep delta (common-mode noise cancelled — see the sweep above).
        for p in recovery_points.iter().filter(|p| p.cadence == 1_000) {
            if p.paired_delta_ms > supervised_off_ms * 0.05 {
                failures.push(format!(
                    "checkpoint overhead at cadence {}: {:.2} ms paired cost on a {:.1} ms \
                     run ({:+.1}% > 5%)",
                    p.cadence,
                    p.paired_delta_ms,
                    supervised_off_ms,
                    p.paired_delta_ms / supervised_off_ms * 100.0
                ));
            }
        }
        // The supervision cost itself (per-item input logging) gets the
        // file-wide lenient band: it guards against an accidental extra
        // clone in the hot path, not against noise.
        if supervised_off_ms > best_unsupervised * 1.25 {
            failures.push(format!(
                "supervision regression: {supervised_off_ms:.1} ms armed vs \
                 {best_unsupervised:.1} ms unsupervised (> 25%)"
            ));
        }
        // A recovery must actually have been measured, and must not cost
        // more than the whole killed run.
        if !recovery_ms.is_finite() || recovery_ms <= 0.0 {
            failures.push(format!("no recovery latency measured (got {recovery_ms} ms)"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("check passed: no regression beyond the 25% guard band");
    }
    Ok(())
}
