//! Figure 5: online EM estimation of participant quality.
//!
//! "We simulated 10 participants … using p = {0.05, 0.15, 0.2, 0.25, 0.25,
//! 0.38, 0.4, 0.5, 0.75, 0.9} as their respective error probabilities.
//! There are 4 possible answers. … We initialize each p_i to 0.25. All
//! participants were queried about each sensor disagreement. … the estimated
//! values converge to the true value … After processing approximately 100
//! calls, the ordering of the participants by quality is more or less
//! correct, except for participants whose error probabilities are close.
//! Most of the time (94 %) the posterior probability distribution is very
//! peaked."
//!
//! ```sh
//! cargo run --release -p insight-bench --bin fig5_estimation
//! ```

use insight_bench::ResultsWriter;
use insight_crowd::batch_em::{BatchEm, RecordedEvent};
use insight_crowd::model::{LabelSet, SimulatedParticipant};
use insight_crowd::online_em::OnlineEm;
use insight_crowd::stats::{EstimationTrace, PeakednessTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let labels = LabelSet::traffic_default();
    let cohort = SimulatedParticipant::paper_cohort();
    let true_p: Vec<f64> = cohort.iter().map(|p| p.p_err).collect();
    let mut em = OnlineEm::paper_default(cohort.len());
    let mut trace = EstimationTrace::new(cohort.len());
    let mut peaked = PeakednessTracker::paper_default();
    let mut rng = StdRng::seed_from_u64(14);

    let total_queries = 1000;
    let mut recorded: Vec<RecordedEvent> = Vec::with_capacity(total_queries);
    for t in 0..total_queries {
        let truth = t % labels.len();
        let answers: Vec<(usize, usize)> = cohort
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.answer(truth, &labels, &mut rng).unwrap()))
            .collect();
        let outcome = em.process(&labels.uniform_prior(), &answers)?;
        peaked.record(outcome.confidence);
        trace.snapshot(em.estimates());
        recorded.push(RecordedEvent { prior: labels.uniform_prior(), answers });
    }
    // The batch reference the online algorithm approximates (the paper
    // explains why batch EM cannot run on the live stream).
    let batch = BatchEm::paper_default().run(&recorded, cohort.len())?;

    let mut out = ResultsWriter::new("fig5_estimation");
    out.line("=== Figure 5: estimation of participant quality (online EM) ===");
    out.line(format!(
        "10 participants, 4 answers, p_i initialised to 0.25, {total_queries} disagreement events"
    ));

    out.line(String::new());
    out.line("estimates p̂_i after N queries (top panel of Figure 5), plus the batch-EM");
    out.line("reference computed offline over the full data set:");
    let checkpoints = [10usize, 50, 100, 200, 500, 1000];
    let mut header = format!("{:>4} {:>7}", "i", "true");
    for c in checkpoints {
        header.push_str(&format!(" {c:>8}"));
    }
    header.push_str(&format!(" {:>8}", "batch"));
    out.line(header);
    for (i, &p) in true_p.iter().enumerate() {
        let mut row = format!("{i:>4} {p:>7.2}");
        for c in checkpoints {
            row.push_str(&format!(" {:>8.3}", trace.series[i][c - 1]));
        }
        row.push_str(&format!(" {:>8.3}", batch.p_hat[i]));
        out.line(row);
    }
    out.line(format!(
        "batch EM converged in {} iterations; max |online − batch| = {:.3}",
        batch.iterations,
        true_p
            .iter()
            .enumerate()
            .map(|(i, _)| (trace.final_estimate(i).unwrap() - batch.p_hat[i]).abs())
            .fold(0.0f64, f64::max)
    ));

    out.line(String::new());
    out.line("relative estimation error (p̂−p)/p after N queries (bottom panel):");
    let mut header = format!("{:>4} {:>7}", "i", "true");
    for c in checkpoints {
        header.push_str(&format!(" {c:>8}"));
    }
    out.line(header);
    for (i, &p) in true_p.iter().enumerate() {
        let mut row = format!("{i:>4} {p:>7.2}");
        for c in checkpoints {
            row.push_str(&format!(" {:>8.2}", trace.relative_error(i, c - 1, p).unwrap()));
        }
        out.line(row);
    }

    // Ordering recovery at ~100 queries, tolerating the paper's near-ties
    // (participants 2-3 at 0.2/0.25 and 6-7 at 0.38/0.4... actually 0.4/0.5;
    // the paper names 2-3 and 6-7 as confusable).
    let mut trace_at_100 = EstimationTrace::new(cohort.len());
    trace_at_100.snapshot(&trace.series.iter().map(|s| s[99]).collect::<Vec<f64>>());
    out.line(String::new());
    out.line(format!(
        "ordering correct after 100 queries (near-ties within 0.06 tolerated): {}",
        trace_at_100.ordering_correct(&true_p, 0.06)
    ));
    out.line(format!(
        "posteriors with one label above 0.99: {:.1} % (paper: ~94 %)",
        peaked.fraction().unwrap() * 100.0
    ));
    out.line(format!(
        "final max |p̂−p| across participants: {:.3}",
        true_p
            .iter()
            .enumerate()
            .map(|(i, &p)| (trace.final_estimate(i).unwrap() - p).abs())
            .fold(0.0f64, f64::max)
    ));

    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
