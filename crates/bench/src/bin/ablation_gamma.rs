//! Ablation: the step-size schedule of the online EM.
//!
//! The paper prints "γ_t = t/(t+1)" — a schedule that *increases* towards 1
//! and violates the stochastic-approximation conditions it quotes
//! (Σγ² < ∞). This ablation compares the literal schedule against the
//! running-mean schedule `1/(t+1)` (our default) and the polynomial family,
//! measuring final estimation error and trajectory stability over the
//! Figure 5 protocol.
//!
//! ```sh
//! cargo run --release -p insight-bench --bin ablation_gamma
//! ```

use insight_bench::ResultsWriter;
use insight_crowd::model::{LabelSet, SimulatedParticipant};
use insight_crowd::online_em::OnlineEm;
use insight_crowd::schedule::GammaSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Quality {
    final_mae: f64,
    trajectory_wobble: f64,
}

fn run(schedule: GammaSchedule, seed: u64) -> Quality {
    let labels = LabelSet::traffic_default();
    let cohort = SimulatedParticipant::paper_cohort();
    let mut em = OnlineEm::new(cohort.len(), labels.clone(), 0.25, schedule).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prev = em.estimates().to_vec();
    let mut wobble = 0.0;
    let horizon = 1000;
    for t in 0..horizon {
        let truth = t % labels.len();
        let answers: Vec<(usize, usize)> = cohort
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.answer(truth, &labels, &mut rng).unwrap()))
            .collect();
        em.process(&labels.uniform_prior(), &answers).expect("valid event");
        if t >= horizon / 2 {
            // Tail wobble: average absolute step of the estimates.
            wobble += em.estimates().iter().zip(&prev).map(|(a, b)| (a - b).abs()).sum::<f64>()
                / cohort.len() as f64;
        }
        prev.copy_from_slice(em.estimates());
    }
    let final_mae =
        em.estimates().iter().zip(cohort.iter()).map(|(est, p)| (est - p.p_err).abs()).sum::<f64>()
            / cohort.len() as f64;
    Quality { final_mae, trajectory_wobble: wobble / (horizon / 2) as f64 }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = ResultsWriter::new("ablation_gamma");
    out.line("=== Ablation: online EM step-size schedules (Figure 5 protocol) ===");
    out.line(String::new());
    out.line(format!("{:<26} {:>12} {:>18}", "schedule", "final MAE", "tail wobble/step"));

    let schedules: [(&str, GammaSchedule); 4] = [
        ("1/(t+1) (running mean)", GammaSchedule::RunningMean),
        ("t/(t+1) (paper literal)", GammaSchedule::PaperLiteral),
        ("t^-0.7 (polynomial)", GammaSchedule::Polynomial(0.7)),
        ("constant 0.05", GammaSchedule::Constant(0.05)),
    ];
    for (name, schedule) in schedules {
        // Average over three seeds.
        let runs: Vec<Quality> = (0..3).map(|s| run(schedule, 100 + s)).collect();
        let mae = runs.iter().map(|q| q.final_mae).sum::<f64>() / runs.len() as f64;
        let wob = runs.iter().map(|q| q.trajectory_wobble).sum::<f64>() / runs.len() as f64;
        out.line(format!("{name:<26} {mae:>12.4} {wob:>18.5}"));
    }

    out.line(String::new());
    out.line("expectation: the running-mean schedule converges (small MAE, vanishing");
    out.line("wobble); the literal t/(t+1) schedule keeps chasing the last event and");
    out.line("never settles — evidence the paper's formula is a typo for 1/(t+1).");
    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
