//! Figure 6: crowdsourcing query execution engine latency.
//!
//! "The presented times are averages over 10 executions of crowdsourcing
//! tasks for each connection type. … the latency to trigger a task … ranges
//! from 38 to 55 ms. … a Push Notification … takes 467 ms on a 2G
//! connection, while the 3G and WiFi connections only need 169 ms and
//! 184 ms. … the communication time … 2G … 423 ms while the 3G network
//! takes 171 ms and the WiFi connection 182 ms. … even in case that only
//! the 2G network is available the end-to-end latency would need less than
//! a second."
//!
//! ```sh
//! cargo run --release -p insight-bench --bin fig6_latency
//! ```

use insight_bench::ResultsWriter;
use insight_crowd::engine::{QueryExecutionEngine, Worker, WorkerId};
use insight_crowd::latency::ConnectionType;
use insight_crowd::model::CrowdQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executions = 10; // as in the paper
    let mut rng = StdRng::seed_from_u64(66);
    let mut out = ResultsWriter::new("fig6_latency");
    out.line("=== Figure 6: query execution engine latency ===");
    out.line(format!(
        "averages over {executions} crowdsourcing task executions per connection type"
    ));
    out.line(String::new());
    out.line(format!(
        "{:<6} {:>14} {:>20} {:>20} {:>14}",
        "conn", "trigger (ms)", "push notif. (ms)", "communication (ms)", "total (ms)"
    ));

    let query = CrowdQuery {
        question: "Is there a traffic congestion at this intersection?".into(),
        answers: vec!["yes".into(), "no".into()],
        lon: -6.26,
        lat: 53.35,
        deadline_ms: None,
    };

    let mut paper = std::collections::HashMap::new();
    paper.insert("2G", (467.0, 423.0));
    paper.insert("3G", (169.0, 171.0));
    paper.insert("WiFi", (184.0, 182.0));

    for connection in ConnectionType::ALL {
        let mut engine = QueryExecutionEngine::new();
        engine.register(Worker {
            id: WorkerId(0),
            lon: -6.26,
            lat: 53.35,
            connection,
            avg_comp_ms: 120.0,
        });
        let (mut trig, mut push, mut comm) = (0.0, 0.0, 0.0);
        for _ in 0..executions {
            let exec = engine.execute(&query, &[WorkerId(0)], |_| Some(0), &mut rng)?;
            let mean = exec.mean_latency().expect("one answering worker");
            trig += mean.trigger_ms;
            push += mean.push_ms;
            comm += mean.comm_ms;
        }
        let n = executions as f64;
        out.line(format!(
            "{:<6} {:>14.0} {:>20.0} {:>20.0} {:>14.0}",
            connection.name(),
            trig / n,
            push / n,
            comm / n,
            (trig + push + comm) / n
        ));
    }

    out.line(String::new());
    out.line("paper reference means — push: 2G 467 / 3G 169 / WiFi 184 ms;");
    out.line(
        "communication: 2G 423 / 3G 171 / WiFi 182 ms; trigger 38–55 ms (network-independent).",
    );
    out.line("shape: 2G ≈ 2.5x slower on both network steps, end-to-end < 1 s everywhere.");
    let path = out.finish()?;
    eprintln!("results saved to {}", path.display());
    Ok(())
}
