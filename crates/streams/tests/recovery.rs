//! Integration tests for checkpoint/restore and the crash-recovery
//! supervisor.
//!
//! The contract under test: a stage supervised with
//! [`FaultPolicy::Restart`] that checkpoints every `n` items and is killed
//! mid-stream must produce output byte-identical to a kill-free run — the
//! rebuilt chain restores the latest barrier, silently replays the logged
//! suffix and re-runs the faulted item. `Retry` composes with checkpoints
//! too: a stateful processor that mutated before faulting is rolled back to
//! the pre-item snapshot, so the retry applies the item exactly once.

use insight_streams::chaos::{KillAt, KillSwitch};
use insight_streams::checkpoint::{Checkpointable, StateBlob};
use insight_streams::error::StreamsError;
use insight_streams::fault::FaultPolicy;
use insight_streams::item::DataItem;
use insight_streams::processor::{Context, Processor};
use insight_streams::replay::ReplayRuntime;
use insight_streams::runtime::Runtime;
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};
use std::collections::HashSet;
use std::time::Duration;

/// A running prefix sum: the canonical "state the supervisor must not lose".
/// Emits `total` (the sum including the current item) alongside each input.
#[derive(Default)]
struct PrefixSum {
    total: i64,
}

impl Processor for PrefixSum {
    fn process(
        &mut self,
        mut item: DataItem,
        _: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        self.total += item.get_i64("n").unwrap_or(0);
        item.set("total", self.total);
        Ok(Some(item))
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

impl Checkpointable for PrefixSum {
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        blob.set("total", self.total);
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        self.total = blob.require_i64("total")?;
        Ok(())
    }
}

fn numbered(range: std::ops::RangeInclusive<i64>) -> Vec<DataItem> {
    range.map(|n| DataItem::new().with("n", n)).collect()
}

/// `(n, total)` pairs in sink order.
fn totals(sink: &CollectSink) -> Vec<(i64, i64)> {
    sink.items().iter().map(|i| (i.get_i64("n").unwrap(), i.get_i64("total").unwrap())).collect()
}

fn prefix_sums(range: std::ops::RangeInclusive<i64>) -> Vec<(i64, i64)> {
    let mut total = 0;
    range
        .map(|n| {
            total += n;
            (n, total)
        })
        .collect()
}

/// Single supervised stage: `KillAt` (chaos) in front of `PrefixSum`
/// (state), both rebuildable from factories, feeding a pass-through
/// collector so outputs cross a queue edge.
fn killable_topology(
    kill_at: u64,
    switch: &KillSwitch,
    checkpoint_every: usize,
    policy: FaultPolicy,
    sink: &CollectSink,
) -> Topology {
    let kill_switch = switch.clone();
    let mut t = Topology::new();
    t.add_source("in", VecSource::new(numbered(1..=40)));
    t.add_queue("out", 8);
    t.process("stage")
        .input(Input::Stream("in".into()))
        .processor_factory(move || Box::new(KillAt::with_switch(kill_at, kill_switch.clone())))
        .processor_factory(|| Box::<PrefixSum>::default())
        .checkpoint_every(checkpoint_every)
        .fault_policy(policy)
        .output(Output::Queue("out".into()))
        .done();
    t.process("collect")
        .input(Input::Queue("out".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    t
}

#[test]
fn restart_recovers_a_kill_and_matches_the_kill_free_run() {
    let expected = prefix_sums(1..=40);
    for kill_at in [1u64, 10, 39] {
        let switch = KillSwitch::new();
        let sink = CollectSink::shared();
        let t = killable_topology(
            kill_at,
            &switch,
            1,
            FaultPolicy::Restart { max: 1, from_checkpoint: true },
            &sink,
        );
        let rt = Runtime::new(t);
        let metrics = rt.metrics();
        rt.run().unwrap();
        assert!(switch.fired(), "kill_at={kill_at}: the injected kill must fire");
        assert_eq!(totals(&sink), expected, "kill_at={kill_at}: recovered output diverged");
        let stage = metrics.stage("stage");
        assert_eq!(stage.restores.get(), 1, "kill_at={kill_at}: exactly one recovery");
        assert!(stage.checkpoints.get() > 0, "kill_at={kill_at}: barriers were taken");
    }
}

#[test]
fn restart_replays_the_logged_suffix_at_coarse_cadence() {
    // Barrier every 8 items, kill on item 14: the log holds items 9..=13,
    // all of which must be replayed (outputs discarded) before the faulted
    // item re-runs.
    let switch = KillSwitch::new();
    let sink = CollectSink::shared();
    let t = killable_topology(
        14,
        &switch,
        8,
        FaultPolicy::Restart { max: 1, from_checkpoint: true },
        &sink,
    );
    let rt = Runtime::new(t);
    let metrics = rt.metrics();
    rt.run().unwrap();
    assert!(switch.fired());
    assert_eq!(totals(&sink), prefix_sums(1..=40));
    let stage = metrics.stage("stage");
    assert_eq!(stage.restores.get(), 1);
    assert_eq!(stage.replayed_items.get(), 5, "items 9..=13 sit between barrier and kill");
    assert!(stage.recovery_ns.get() > 0, "recovery wall-clock is metered");
}

#[test]
fn restart_recovery_is_deterministic_under_the_replay_scheduler() {
    let expected = prefix_sums(1..=40);
    for seed in [0u64, 77, 777] {
        let switch = KillSwitch::new();
        let sink = CollectSink::shared();
        let t = killable_topology(
            10,
            &switch,
            4,
            FaultPolicy::Restart { max: 1, from_checkpoint: true },
            &sink,
        );
        ReplayRuntime::new(t, seed).run().unwrap();
        assert!(switch.fired(), "seed={seed}");
        assert_eq!(totals(&sink), expected, "seed={seed}: recovered output diverged");
    }
}

#[test]
fn restart_budget_exhaustion_escalates_the_fault() {
    // `max: 0` means the stage may never restart: the first kill is fatal
    // and the run surfaces the fault instead of wedging.
    let switch = KillSwitch::new();
    let sink = CollectSink::shared();
    let t = killable_topology(
        10,
        &switch,
        1,
        FaultPolicy::Restart { max: 0, from_checkpoint: true },
        &sink,
    );
    let err = Runtime::new(t).run().unwrap_err();
    assert!(
        err.to_string().contains("injected kill"),
        "the original fault must escalate, got: {err}"
    );
}

#[test]
fn restart_recovers_a_killed_replica_in_a_sharded_stage() {
    // Four-way sharded prefix sums (per-shard state via the replica shell):
    // kill one replica mid-stream and the merged output must still match
    // the kill-free baseline, under the threaded and replay runtimes alike.
    let build = |kill_at: u64, switch: &KillSwitch, sink: &CollectSink| {
        let kill_switch = switch.clone();
        let mut t = Topology::new();
        let items: Vec<DataItem> =
            (1..=60i64).map(|n| DataItem::new().with("n", n).with("key", n % 7)).collect();
        t.add_source("in", VecSource::new(items));
        t.add_queue("out", 8);
        t.process("stage")
            .input(Input::Stream("in".into()))
            .replicas(4)
            .partition_by(["key"])
            .processor_factory(move || Box::new(KillAt::with_switch(kill_at, kill_switch.clone())))
            .processor_factory(|| Box::<PrefixSum>::default())
            .checkpoint_every(1)
            .fault_policy(FaultPolicy::Restart { max: 2, from_checkpoint: true })
            .output(Output::Queue("out".into()))
            .done();
        t.process("collect")
            .input(Input::Queue("out".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        t
    };
    let baseline_sink = CollectSink::shared();
    Runtime::new(build(0, &KillSwitch::new(), &baseline_sink)).run().unwrap();
    let baseline = totals(&baseline_sink);
    assert_eq!(baseline.len(), 60, "baseline covers every input");

    let threaded_switch = KillSwitch::new();
    let threaded_sink = CollectSink::shared();
    Runtime::new(build(9, &threaded_switch, &threaded_sink)).run().unwrap();
    assert!(threaded_switch.fired());
    assert_eq!(totals(&threaded_sink), baseline, "threaded recovery diverged");

    for seed in [0u64, 77, 777] {
        let switch = KillSwitch::new();
        let sink = CollectSink::shared();
        ReplayRuntime::new(build(9, &switch, &sink), seed).run().unwrap();
        assert!(switch.fired(), "seed={seed}");
        assert_eq!(totals(&sink), baseline, "seed={seed}: replayed recovery diverged");
    }
}

/// A process that arms from-checkpoint restart but never sets a cadence
/// still takes barriers: the runtime substitutes
/// [`insight_streams::runtime::DEFAULT_RESTART_CADENCE`] so the replay log
/// cannot grow with the stream. With 2500 inputs and a kill at 2100 the
/// barriers sit at 1000 and 2000, so recovery replays 99 items — not 2099.
#[test]
fn restart_without_a_cadence_gets_the_default_and_bounds_the_log() {
    assert_eq!(insight_streams::runtime::DEFAULT_RESTART_CADENCE, 1000);
    let switch = KillSwitch::new();
    let kill_switch = switch.clone();
    let sink = CollectSink::shared();
    let mut t = Topology::new();
    t.add_source("in", VecSource::new(numbered(1..=2500)));
    t.add_queue("out", 8);
    t.process("stage")
        .input(Input::Stream("in".into()))
        .processor_factory(move || Box::new(KillAt::with_switch(2100, kill_switch.clone())))
        .processor_factory(|| Box::<PrefixSum>::default())
        // No .checkpoint_every(..): the default cadence must engage.
        .fault_policy(FaultPolicy::Restart { max: 1, from_checkpoint: true })
        .output(Output::Queue("out".into()))
        .done();
    t.process("collect")
        .input(Input::Queue("out".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let rt = Runtime::new(t);
    let metrics = rt.metrics();
    rt.run().unwrap();
    assert!(switch.fired());
    assert_eq!(totals(&sink), prefix_sums(1..=2500));
    let stage = metrics.stage("stage");
    assert_eq!(stage.checkpoints.get(), 2, "default cadence: barriers at 1000 and 2000");
    assert_eq!(stage.restores.get(), 1);
    assert_eq!(stage.replayed_items.get(), 99, "items 2001..=2099 sit between barrier and kill");
}

/// Satellite regression: a stateful processor that mutates *before* faulting
/// must not double-apply the item across a retry. With `checkpoint_every(1)`
/// the supervisor restores the pre-item snapshot before each re-attempt.
#[test]
fn retry_restores_checkpointed_state_so_items_apply_exactly_once() {
    struct FlakySum {
        total: i64,
        faulted: HashSet<i64>,
    }
    impl Processor for FlakySum {
        fn process(
            &mut self,
            mut item: DataItem,
            _: &mut Context,
        ) -> Result<Option<DataItem>, StreamsError> {
            let n = item.get_i64("n").unwrap();
            // State mutates first — the failure mode the checkpoint restore
            // exists to roll back.
            self.total += n;
            if n % 3 == 0 && self.faulted.insert(n) {
                return Err(StreamsError::ServiceError {
                    detail: format!("transient fault after applying n={n}"),
                });
            }
            item.set("total", self.total);
            Ok(Some(item))
        }
        fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
            Some(self)
        }
    }
    impl Checkpointable for FlakySum {
        fn snapshot(&mut self) -> StateBlob {
            let mut blob = StateBlob::new();
            blob.set("total", self.total);
            blob
        }
        fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
            self.total = blob.require_i64("total")?;
            Ok(())
        }
    }

    let sink = CollectSink::shared();
    let mut t = Topology::new();
    // Start at n=1 so a checkpoint exists before the first fault (n=3).
    t.add_source("in", VecSource::new(numbered(1..=12)));
    t.process("sum")
        .input(Input::Stream("in".into()))
        .processor(FlakySum { total: 0, faulted: HashSet::new() })
        .checkpoint_every(1)
        .fault_policy(FaultPolicy::Retry { attempts: 2, backoff: Duration::ZERO })
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let rt = Runtime::new(t);
    let metrics = rt.metrics();
    rt.run().unwrap();
    assert_eq!(totals(&sink), prefix_sums(1..=12), "a retried item must apply exactly once");
    let stage = metrics.stage("sum");
    assert_eq!(stage.retries.get(), 4, "n = 3, 6, 9, 12 each fault once");
    assert_eq!(stage.restores.get(), 4, "each retry restored the pre-item snapshot");
}
