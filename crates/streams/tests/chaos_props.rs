//! Property tests for deterministic chaos injection.
//!
//! Whatever the rate combination, [`ChaosSource`] must obey the accounting
//! identity `emitted + dropped = input + duplicated` (delays and corruption
//! only reorder or rewrite, never create or lose items), and the same
//! [`ChaosConfig`] must always inject the same faults at the same positions.

use insight_streams::chaos::{ChaosConfig, ChaosSource};
use insight_streams::item::DataItem;
use insight_streams::source::{Source, VecSource};
use proptest::prelude::*;

fn numbered(n: i64) -> VecSource {
    VecSource::new((0..n).map(|i| DataItem::new().with("n", i)))
}

fn drain(src: &mut ChaosSource) -> Vec<DataItem> {
    let mut out = Vec::new();
    while let Some(item) = src.next_item().expect("chaos source never errors") {
        out.push(item);
    }
    out
}

/// Arbitrary rate combination, including the degenerate corners (all zero,
/// all one). Tuples are nested because the shim caps tuple strategies at
/// five elements.
fn arb_cfg() -> impl Strategy<Value = ChaosConfig> {
    ((any::<u64>(), 0.0f64..=1.0, 0.0f64..=1.0), (0.0f64..=1.0, 1usize..6, 0.0f64..=1.0)).prop_map(
        |((seed, drop_rate, duplicate_rate), (delay_rate, delay_max, corrupt_rate))| ChaosConfig {
            seed,
            drop_rate,
            duplicate_rate,
            delay_rate,
            delay_max,
            corrupt_rate,
            ..ChaosConfig::default()
        },
    )
}

proptest! {
    #[test]
    fn accounting_identity_holds_for_every_rate_combo(
        cfg in arb_cfg(),
        n in 0i64..200,
    ) {
        let mut src = ChaosSource::new(numbered(n), cfg);
        let out = drain(&mut src);
        let stats = src.stats();
        // Drops remove, duplicates add, delays and corruption only
        // reorder/rewrite: every input item is accounted for.
        prop_assert_eq!(
            out.len() as u64 + stats.dropped.get(),
            n as u64 + stats.duplicated.get(),
            "emitted + dropped = input + duplicated (n={}, delayed={})",
            n,
            stats.delayed.get(),
        );
        // Stream-level chaos never touches the injector-only counters.
        prop_assert_eq!(stats.errors.get() + stats.panics.get(), 0);
        // Delayed items are all eventually released: the end-of-stream flush
        // leaves nothing held back.
        prop_assert!(stats.delayed.get() <= n as u64 + stats.duplicated.get());
    }

    #[test]
    fn identical_seeds_produce_identical_traces(
        cfg in arb_cfg(),
        n in 0i64..200,
    ) {
        let run = |cfg: ChaosConfig| {
            let mut src = ChaosSource::new(numbered(n), cfg);
            let out = drain(&mut src);
            let stats = src.stats();
            (
                out,
                (
                    stats.dropped.get(),
                    stats.duplicated.get(),
                    stats.delayed.get(),
                    stats.corrupted.get(),
                ),
            )
        };
        let (items_a, stats_a) = run(cfg.clone());
        let (items_b, stats_b) = run(cfg);
        prop_assert_eq!(items_a, items_b, "same config → same emitted trace");
        prop_assert_eq!(stats_a, stats_b, "same config → same fault counters");
    }
}
