//! Differential property tests for the flat attribute map.
//!
//! `DataItem` stores attributes in a sorted flat vector with inline
//! capacity (spilling to the heap only past [`INLINE_ATTRS`] entries). The
//! reference model is the representation it replaced: a `BTreeMap` keyed by
//! the attribute name. Any random operation sequence must leave both with
//! the same contents, the same lookup answers, and the same (sorted)
//! iteration order — including sequences that cross the inline→spill
//! boundary in either direction of length.

use insight_streams::item::{DataItem, Value, INLINE_ATTRS};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A fixed key pool wider than the inline capacity, so random sequences
/// cross the spill boundary; the pool also keeps the process-global key
/// interner bounded under proptest.
const KEYS: [&str; 18] = [
    "a",
    "arrival",
    "bus",
    "congestion",
    "delay",
    "density",
    "direction",
    "flow",
    "intersection",
    "kind",
    "lat",
    "line",
    "lon",
    "operator",
    "region",
    "sensor",
    "time",
    "zz",
];

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, Value),
    Remove(usize),
    Get(usize),
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1.0e9..1.0e9f64).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
        // Lengths straddle the inline small-string boundary (22 bytes).
        proptest::collection::vec(0u8..27, 0..40usize).prop_map(|bytes| {
            let s: String =
                bytes.into_iter().map(|b| if b == 26 { ' ' } else { (b'a' + b) as char }).collect();
            Value::from(s)
        }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..KEYS.len(), value_strategy()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (0..KEYS.len()).prop_map(Op::Remove),
        1 => (0..KEYS.len()).prop_map(Op::Get),
    ]
}

proptest! {
    /// Every operation sequence leaves the flat map and the `BTreeMap`
    /// model observationally identical.
    #[test]
    fn flat_map_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut item = DataItem::new();
        let mut model: BTreeMap<&str, Value> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    item.set(KEYS[k], v.clone());
                    model.insert(KEYS[k], v);
                }
                Op::Remove(k) => {
                    let got = item.remove(KEYS[k]);
                    let want = model.remove(KEYS[k]);
                    prop_assert_eq!(got, want, "remove({}) disagrees", KEYS[k]);
                }
                Op::Get(k) => {
                    prop_assert_eq!(item.get(KEYS[k]), model.get(KEYS[k]), "get({})", KEYS[k]);
                }
            }
            prop_assert_eq!(item.len(), model.len());
            prop_assert_eq!(item.is_empty(), model.is_empty());
        }
        // Iteration order is the model's sorted order, pairwise equal.
        let got: Vec<(&str, &Value)> = item.iter().collect();
        let want: Vec<(&str, &Value)> = model.iter().map(|(k, v)| (*k, v)).collect();
        prop_assert_eq!(got, want, "iteration order or contents diverged");
        for k in KEYS {
            prop_assert_eq!(item.contains(k), model.contains_key(k));
        }
    }

    /// Walking the length up across the spill boundary and back down keeps
    /// lookups and order intact at every step (spill is one-way storage,
    /// but contents must behave as if it never happened).
    #[test]
    fn spill_boundary_roundtrip(extra in 1usize..6, seed_vals in proptest::collection::vec(any::<i64>(), 18)) {
        let n = INLINE_ATTRS + extra;
        let mut item = DataItem::new();
        let mut model: BTreeMap<&str, Value> = BTreeMap::new();
        // Grow past the boundary…
        for (i, k) in KEYS.iter().take(n).enumerate() {
            item.set(*k, seed_vals[i]);
            model.insert(k, Value::Int(seed_vals[i]));
            prop_assert_eq!(item.len(), model.len());
        }
        // …then shrink back below it, checking after every removal.
        for k in KEYS.iter().take(n) {
            prop_assert_eq!(item.remove(k), model.remove(k));
            let got: Vec<(&str, &Value)> = item.iter().collect();
            let want: Vec<(&str, &Value)> = model.iter().map(|(k, v)| (*k, v)).collect();
            prop_assert_eq!(got, want);
        }
        prop_assert!(item.is_empty());
    }
}
