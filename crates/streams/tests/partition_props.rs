//! Property tests for keyed shard-parallel stages.
//!
//! The partition protocol (`P[part]` → replicas → `P[merge]`) is pure
//! plumbing: routing must depend only on the partition-key values, the
//! merged output must be byte-identical for every replica count under both
//! the threaded runtime and the deterministic replay scheduler, and a fault
//! policy on the stage must supervise each replica independently — a
//! faulting shard never wedges its siblings or end-of-stream propagation.

use insight_streams::error::StreamsError;
use insight_streams::fault::{DeadLetterQueue, FaultPolicy};
use insight_streams::item::DataItem;
use insight_streams::partition::{shard_for, SEQ_ATTR, SHARD_ATTR};
use insight_streams::processor::{Context, FnProcessor, Processor};
use insight_streams::replay::ReplayRuntime;
use insight_streams::runtime::Runtime;
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};
use proptest::prelude::*;

/// `keys[i]` becomes the routing key of the `i`-th item; `n = i` makes the
/// expected output order trivially computable.
fn items_from_keys(keys: &[i64]) -> Vec<DataItem> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| DataItem::new().with("key", *k).with("n", i as i64))
        .collect()
}

/// A replicated stage partitioned by `key`, followed by a pass-through
/// collector, so every output crosses the merge and a queue.
fn sharded_topology(
    items: Vec<DataItem>,
    replicas: usize,
    policy: Option<FaultPolicy>,
    factory: impl Fn() -> Box<dyn Processor> + Send + Sync + 'static,
    sink: &CollectSink,
) -> Topology {
    let mut t = Topology::new();
    t.add_source("in", VecSource::new(items));
    t.add_queue("out", 8);
    let builder = t
        .process("stage")
        .input(Input::Stream("in".into()))
        .replicas(replicas)
        .partition_by(["key"])
        .processor_factory(factory);
    let builder = match policy {
        Some(p) => builder.fault_policy(p),
        None => builder,
    };
    builder.output(Output::Queue("out".into())).done();
    t.process("collect")
        .input(Input::Queue("out".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    t
}

/// The reference stage body: drops `n % 5 == 3` (creating sequence gaps the
/// merge must bridge), faults on `n % fail_mod == 0` when `fail_mod > 0`,
/// squares the rest.
fn square_factory(fail_mod: i64) -> impl Fn() -> Box<dyn Processor> + Send + Sync + 'static {
    move || {
        Box::new(FnProcessor::new(move |mut item: DataItem, _: &mut Context| {
            let n = item.get_i64("n").unwrap();
            if fail_mod > 0 && n % fail_mod == 0 {
                return Err(StreamsError::ServiceError {
                    detail: format!("injected fault on n={n}"),
                });
            }
            if n % 5 == 3 {
                return Ok(None);
            }
            item.set("sq", n * n);
            Ok(Some(item))
        }))
    }
}

/// `(n, sq)` pairs in sink order.
fn collected(sink: &CollectSink) -> Vec<(i64, i64)> {
    sink.items().iter().map(|i| (i.get_i64("n").unwrap(), i.get_i64("sq").unwrap())).collect()
}

/// What [`square_factory`] emits for `0..len` minus dropped and faulted
/// items, in input order.
fn expected_squares(len: usize, fail_mod: i64) -> Vec<(i64, i64)> {
    (0..len as i64)
        .filter(|n| n % 5 != 3 && (fail_mod == 0 || n % fail_mod != 0))
        .map(|n| (n, n * n))
        .collect()
}

proptest! {
    /// Routing is a pure function of the partition-key values: two items
    /// agreeing on every key land on the same shard for every shard count,
    /// regardless of their payloads.
    #[test]
    fn same_key_values_land_on_the_same_shard(
        key in any::<i64>(),
        aux in proptest::collection::vec(0u8..26, 0..6)
            .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect::<String>()),
        payload_a in any::<i64>(),
        payload_b in any::<i64>(),
        shards in 1usize..=16,
    ) {
        let keys: Vec<String> = vec!["key".into(), "aux".into()];
        let a = DataItem::new().with("key", key).with("aux", aux.clone()).with("p", payload_a);
        let b = DataItem::new()
            .with("key", key)
            .with("aux", aux)
            .with("p", payload_b)
            .with("extra", true);
        let shard = shard_for(&a, &keys, shards);
        prop_assert!(shard < shards, "shard index in range");
        prop_assert_eq!(shard, shard_for(&b, &keys, shards), "payload must not affect routing");
    }
}

proptest! {
    /// The merged output is identical for 1, 2, 4 and 8 replicas, under the
    /// threaded runtime and the replay scheduler alike, and the protocol's
    /// bookkeeping attributes never escape the merge.
    #[test]
    fn merged_output_invariant_in_replica_count(
        keys in proptest::collection::vec(0i64..12, 1..80),
        seed in any::<u64>(),
    ) {
        let threaded = |replicas: usize| {
            let sink = CollectSink::shared();
            let t = sharded_topology(
                items_from_keys(&keys), replicas, None, square_factory(0), &sink);
            Runtime::new(t).run().unwrap();
            (collected(&sink), sink.items())
        };
        let replayed = |replicas: usize| {
            let sink = CollectSink::shared();
            let t = sharded_topology(
                items_from_keys(&keys), replicas, None, square_factory(0), &sink);
            ReplayRuntime::new(t, seed).run().unwrap();
            collected(&sink)
        };
        let (base, base_items) = threaded(1);
        prop_assert_eq!(&base, &expected_squares(keys.len(), 0), "input order is preserved");
        for item in base_items {
            prop_assert!(
                !item.contains(SEQ_ATTR) && !item.contains(SHARD_ATTR),
                "bookkeeping never escapes the merge"
            );
        }
        prop_assert_eq!(&replayed(1), &base, "replay, replicas=1");
        for replicas in [2usize, 4, 8] {
            prop_assert_eq!(&threaded(replicas).0, &base, "threaded, replicas={}", replicas);
            prop_assert_eq!(&replayed(replicas), &base, "replay, replicas={}", replicas);
        }
    }

    /// Batched transfers over the SPSC partition edges compose with the
    /// MPMC queue edge downstream: for any batch size (including ones larger
    /// than the queue capacity, which forces the partial-drain path) the
    /// merged output is unchanged and every schedule terminates — the replay
    /// scheduler treats "batch not fully drained" as progress, not as a
    /// deadlocked process.
    #[test]
    fn batched_spsc_and_mpmc_edges_replay_without_false_deadlocks(
        keys in proptest::collection::vec(0i64..12, 1..80),
        batch_idx in 0usize..4,
        capacity_idx in 0usize..3,
        replicas in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let batch = [1usize, 3, 16, 64][batch_idx];
        let capacity = [2usize, 8, 64][capacity_idx];
        let build = |sink: &CollectSink| {
            let mut t = Topology::new();
            t.add_source("in", VecSource::new(items_from_keys(&keys)));
            t.add_queue("out", capacity);
            t.process("stage")
                .input(Input::Stream("in".into()))
                .replicas(replicas)
                .partition_by(["key"])
                .batch_size(batch)
                .processor_factory(square_factory(0))
                .output(Output::Queue("out".into()))
                .done();
            t.process("collect")
                .input(Input::Queue("out".into()))
                .batch_size(batch)
                .output(Output::Sink(Box::new(sink.clone())))
                .done();
            t
        };
        let expected = expected_squares(keys.len(), 0);
        let threaded_sink = CollectSink::shared();
        Runtime::new(build(&threaded_sink)).run().unwrap();
        prop_assert_eq!(&collected(&threaded_sink), &expected, "threaded");
        let replay_sink = CollectSink::shared();
        ReplayRuntime::new(build(&replay_sink), seed).run().unwrap();
        prop_assert_eq!(&collected(&replay_sink), &expected, "replay");
    }

    /// `Skip` drops exactly the faulted items, keeps the survivors in input
    /// order, and the run terminates even when one shard (or all of them)
    /// faults on every single item.
    #[test]
    fn skip_policy_supervises_each_replica_independently(
        keys in proptest::collection::vec(0i64..8, 1..60),
        fail_mod in 1i64..6,
        replicas in 1usize..=6,
    ) {
        let sink = CollectSink::shared();
        let t = sharded_topology(
            items_from_keys(&keys),
            replicas,
            Some(FaultPolicy::Skip { max_consecutive: usize::MAX }),
            square_factory(fail_mod),
            &sink,
        );
        Runtime::new(t).run().unwrap();
        prop_assert_eq!(collected(&sink), expected_squares(keys.len(), fail_mod));
    }

    /// `DeadLetter` preserves every faulted item (attributed to a replica
    /// sub-stage) while the survivors flow through unharmed.
    #[test]
    fn dead_letter_policy_captures_faults_per_replica(
        keys in proptest::collection::vec(0i64..8, 1..60),
        fail_mod in 1i64..6,
        replicas in 1usize..=6,
    ) {
        let dead = DeadLetterQueue::shared();
        let sink = CollectSink::shared();
        let t = sharded_topology(
            items_from_keys(&keys),
            replicas,
            Some(FaultPolicy::DeadLetter { queue: dead.clone() }),
            square_factory(fail_mod),
            &sink,
        );
        Runtime::new(t).run().unwrap();
        prop_assert_eq!(collected(&sink), expected_squares(keys.len(), fail_mod));
        let mut lettered: Vec<i64> = dead
            .records()
            .iter()
            .map(|r| r.item.as_ref().expect("faulted data item").get_i64("n").unwrap())
            .collect();
        lettered.sort_unstable();
        let expected: Vec<i64> = (0..keys.len() as i64).filter(|n| n % fail_mod == 0).collect();
        prop_assert_eq!(lettered, expected, "every faulted item is preserved exactly once");
        for record in dead.records() {
            prop_assert!(
                record.process.starts_with("stage"),
                "fault attributed to the stage, got `{}`", record.process
            );
        }
    }

    /// `Retry` re-runs a transiently failing processor on a pristine copy:
    /// when every item fails exactly once per replica, the retried run still
    /// emits the complete output in order.
    #[test]
    fn retry_policy_recovers_transient_faults(
        keys in proptest::collection::vec(0i64..8, 1..50),
        replicas in 1usize..=6,
    ) {
        let transient_factory = || {
            let mut seen = std::collections::HashSet::new();
            Box::new(FnProcessor::new(move |mut item: DataItem, _: &mut Context| {
                let n = item.get_i64("n").unwrap();
                if seen.insert(n) {
                    return Err(StreamsError::ServiceError {
                        detail: format!("transient fault on n={n}"),
                    });
                }
                if n % 5 == 3 {
                    return Ok(None);
                }
                item.set("sq", n * n);
                Ok(Some(item))
            })) as Box<dyn Processor>
        };
        let sink = CollectSink::shared();
        let t = sharded_topology(
            items_from_keys(&keys),
            replicas,
            Some(FaultPolicy::Retry { attempts: 2, backoff: std::time::Duration::ZERO }),
            transient_factory,
            &sink,
        );
        Runtime::new(t).run().unwrap();
        prop_assert_eq!(collected(&sink), expected_squares(keys.len(), 0));
    }
}
