//! Round-trip property tests for the zero-copy JSON scanner/writer.
//!
//! The wire format must be loss-free: `parse(serialize(x)) == x` for any
//! `DataItem`, including values that stress the escape paths (quotes,
//! backslashes, control characters, non-ASCII) and f64 shortest-round-trip
//! formatting. Serialization must also be stable — re-serializing the
//! parsed item reproduces the bytes — and malformed input must be rejected,
//! not silently coerced.

use insight_streams::item::{DataItem, Value};
use proptest::prelude::*;

/// Fixed key pool (the interner is process-global and permanent; arbitrary
/// keys would grow it per proptest case). Escape-heavy *keys* are covered
/// by the dedicated case below.
const KEYS: [&str; 8] = ["a", "kind", "lat", "lon", "region", "text", "time", "zz"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: the wire format has no NaN/Infinity.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
        // Arbitrary (valid-UTF-8) strings: quotes, backslashes, control
        // characters, astral-plane codepoints — everything escaping and
        // surrogate-pair decoding must survive.
        any::<String>().prop_map(Value::from),
    ]
}

fn item_strategy() -> impl Strategy<Value = DataItem> {
    proptest::collection::btree_map(0..KEYS.len(), value_strategy(), 0..KEYS.len()).prop_map(|m| {
        let mut item = DataItem::new();
        for (k, v) in m {
            item.set(KEYS[k], v);
        }
        item
    })
}

proptest! {
    /// parse(serialize(x)) == x, and serialization is a fixed point after
    /// one round trip.
    #[test]
    fn roundtrip_is_identity(item in item_strategy()) {
        let json = item.to_json();
        let back = DataItem::from_json(&json).expect("serializer output must parse");
        prop_assert_eq!(&back, &item, "round trip changed the item: {}", json);
        prop_assert_eq!(back.to_json(), json, "re-serialization is not byte-stable");
    }

    /// Float formatting round-trips exactly (shortest representation that
    /// reparses to the same bits, modulo -0.0 == 0.0).
    #[test]
    fn float_roundtrip_is_exact(f in any::<f64>().prop_filter("finite", |f| f.is_finite())) {
        let item = DataItem::new().with("f", f);
        let back = DataItem::from_json(&item.to_json()).unwrap();
        let got = back.get_f64("f").expect("float survives as a number");
        prop_assert_eq!(got.to_bits(), f.to_bits(), "lossy float round trip");
    }

    /// Truncating a serialized item anywhere strictly inside produces a
    /// parse error, never a silently-truncated item.
    #[test]
    fn truncation_is_rejected(item in item_strategy(), cut in 0.0..1.0f64) {
        let json = item.to_json();
        // Cut at a char boundary strictly inside the document.
        let mut at = ((json.len() - 1) as f64 * cut) as usize;
        while !json.is_char_boundary(at) {
            at -= 1;
        }
        prop_assert!(DataItem::from_json(&json[..at]).is_err(), "accepted truncation at {at} of {json}");
    }
}

/// Keys pass through the same escaping as string values.
#[test]
fn escaped_keys_roundtrip() {
    let mut item = DataItem::new();
    item.set("quote\"back\\slash", 1i64);
    item.set("ctrl\nnew\tline", 2i64);
    item.set("unicode-é-\u{1F68C}", 3i64);
    let json = item.to_json();
    let back = DataItem::from_json(&json).unwrap();
    assert_eq!(back, item);
    assert_eq!(back.get_i64("ctrl\nnew\tline"), Some(2));
}

/// A grab-bag of malformed documents the scanner must reject.
#[test]
fn malformed_documents_rejected() {
    for bad in [
        "",
        "{",
        "}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{\"a\" 1}",
        "{\"a\":1}{",
        "{\"a\":1} x",
        "{\"a\":+1}",
        "{\"a\":01e}",
        "{\"a\":\"unterminated}",
        "{\"a\":\"bad\\q\"}",
        "{\"a\":\"\\ud800\"}",
        "{\"a\":nul}",
        "[1,2]",
        "{\"a\":1 \"b\":2}",
    ] {
        assert!(DataItem::from_json(bad).is_err(), "accepted malformed input: {bad:?}");
    }
}
