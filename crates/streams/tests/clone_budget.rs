//! Regression tests for the payload clone budget of the partition protocol.
//!
//! PR 5's hot-path fix put `DataItem` payloads behind a copy-on-write
//! `Arc`, so planning, watermark bridging and the merge share payloads
//! instead of deep-cloning them. The process-global
//! [`DataItem::deep_copies`] counter makes that budget testable: a sharded
//! run may detach a payload a constant number of times per item (a write to
//! a still-shared map), but the count must not scale with the replica
//! count — that was exactly the bug where every extra shard re-cloned every
//! item it never even saw.
//!
//! These tests live in their own integration-test binary because the
//! counter is process-global: sibling tests running on other harness
//! threads would otherwise bleed their own detaches into the deltas
//! measured here. Keep this file to a single `#[test]` for that reason.

use insight_streams::item::DataItem;
use insight_streams::processor::{Context, FnProcessor, Processor};
use insight_streams::runtime::Runtime;
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};

const ITEMS: usize = 400;

fn items() -> Vec<DataItem> {
    (0..ITEMS as i64)
        .map(|n| {
            DataItem::new().with("key", n % 7).with("n", n).with("payload", format!("payload-{n}"))
        })
        .collect()
}

fn square_factory() -> Box<dyn Processor> {
    Box::new(FnProcessor::new(|mut item: DataItem, _: &mut Context| {
        let n = item.get_i64("n").unwrap();
        item.set("sq", n * n);
        Ok(Some(item))
    }))
}

/// Runs the canonical `P[part]` → replicas → `P[merge]` stage and returns
/// how many payload deep-copies the whole run performed.
fn deep_copies_for(replicas: usize) -> u64 {
    let sink = CollectSink::shared();
    let mut t = Topology::new();
    t.add_source("in", VecSource::new(items()));
    t.add_queue("out", 8);
    t.process("stage")
        .input(Input::Stream("in".into()))
        .replicas(replicas)
        .partition_by(["key"])
        .processor_factory(square_factory)
        .output(Output::Queue("out".into()))
        .done();
    t.process("collect")
        .input(Input::Queue("out".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let before = DataItem::deep_copies();
    Runtime::new(t).run().unwrap();
    let after = DataItem::deep_copies();
    assert_eq!(sink.items().len(), ITEMS, "replicas={replicas}: all items arrive");
    after - before
}

/// The per-item deep-copy budget is O(1) and independent of the replica
/// count: 8 shards may not clone more than 1 shard does, beyond a small
/// constant slack for the extra per-replica bookkeeping items (watermarks).
#[test]
fn deep_copies_stay_constant_in_replica_count() {
    let base = deep_copies_for(1);
    assert!(
        base <= 2 * ITEMS as u64,
        "single-replica run stays within 2 deep-copies per item, got {base} for {ITEMS} items"
    );
    for replicas in [2usize, 4, 8] {
        let copies = deep_copies_for(replicas);
        // The slack term covers per-replica control items (one watermark
        // bridge per shard per cadence), which is O(replicas) items each
        // with an O(1) budget — NOT O(items × replicas).
        let budget = base + 4 * replicas as u64 + 16;
        assert!(
            copies <= budget,
            "replicas={replicas}: {copies} deep copies exceed budget {budget} \
             (base {base} at 1 replica, {ITEMS} items) — the partition path \
             is deep-cloning payloads again"
        );
    }
}
