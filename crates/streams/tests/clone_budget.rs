//! Regression tests for the payload clone budget of the partition protocol.
//!
//! PR 5's hot-path fix put `DataItem` payloads behind a copy-on-write
//! `Arc`, so planning, watermark bridging and the merge share payloads
//! instead of deep-cloning them. The process-global
//! [`DataItem::deep_copies`] counter makes that budget testable: a sharded
//! run may detach a payload a constant number of times per item (a write to
//! a still-shared map), but the count must not scale with the replica
//! count — that was exactly the bug where every extra shard re-cloned every
//! item it never even saw.
//!
//! The flat-map representation adds a second budget next to deep copies:
//! raw heap *allocations*. The counting global allocator measures the whole
//! sharded run, so the same test also pins allocations/item through the
//! partition→replica→merge path — and, like deep copies, that count must
//! not scale with the replica count.
//!
//! These tests live in their own integration-test binary because both
//! counters are process-global: sibling tests running on other harness
//! threads would otherwise bleed their own detaches and allocations into
//! the deltas measured here. Keep this file to a single `#[test]` for that
//! reason.

use insight_streams::alloc::{allocation_count, CountingAllocator};
use insight_streams::item::DataItem;
use insight_streams::processor::{Context, FnProcessor, Processor};
use insight_streams::runtime::Runtime;
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const ITEMS: usize = 400;

fn items() -> Vec<DataItem> {
    (0..ITEMS as i64)
        .map(|n| {
            DataItem::new().with("key", n % 7).with("n", n).with("payload", format!("payload-{n}"))
        })
        .collect()
}

fn square_factory() -> Box<dyn Processor> {
    Box::new(FnProcessor::new(|mut item: DataItem, _: &mut Context| {
        let n = item.get_i64("n").unwrap();
        item.set("sq", n * n);
        Ok(Some(item))
    }))
}

/// Runs the canonical `P[part]` → replicas → `P[merge]` stage and returns
/// how many payload deep-copies and heap allocations the whole run
/// performed.
fn budgets_for(replicas: usize) -> (u64, u64) {
    let sink = CollectSink::shared();
    let mut t = Topology::new();
    t.add_source("in", VecSource::new(items()));
    t.add_queue("out", 8);
    t.process("stage")
        .input(Input::Stream("in".into()))
        .replicas(replicas)
        .partition_by(["key"])
        .processor_factory(square_factory)
        .output(Output::Queue("out".into()))
        .done();
    t.process("collect")
        .input(Input::Queue("out".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let copies_before = DataItem::deep_copies();
    let allocs_before = allocation_count();
    Runtime::new(t).run().unwrap();
    let allocs = allocation_count() - allocs_before;
    let copies = DataItem::deep_copies() - copies_before;
    assert_eq!(sink.items().len(), ITEMS, "replicas={replicas}: all items arrive");
    (copies, allocs)
}

/// The per-item deep-copy and allocation budgets are O(1) and independent
/// of the replica count: 8 shards may not clone — or allocate — more than
/// 1 shard does, beyond a small per-replica constant for the extra
/// bookkeeping items (watermarks) and per-shard queues/threads.
#[test]
fn budgets_stay_constant_in_replica_count() {
    let (base_copies, base_allocs) = budgets_for(1);
    assert!(
        base_copies <= 2 * ITEMS as u64,
        "single-replica run stays within 2 deep-copies per item, got {base_copies} for {ITEMS} items"
    );
    // With inline attributes, the run's allocation budget is a handful per
    // item: detach Arcs on write (set "sq", shard/seq tagging), batch
    // vectors, and queue hand-off — but no per-attribute or per-value
    // allocations. The pre-flat-map representation paid several extra
    // allocations per item for B-tree nodes and heap-string values alone
    // (the bench_report ingest sweep measures that A/B directly).
    assert!(
        base_allocs <= 10 * ITEMS as u64,
        "single-replica run stays within 10 allocations per item, got {base_allocs} for {ITEMS} items"
    );
    for replicas in [2usize, 4, 8] {
        let (copies, allocs) = budgets_for(replicas);
        // The slack terms cover per-replica control items (one watermark
        // bridge per shard per cadence) and per-replica infrastructure
        // (threads, queues, merge buffers) — O(replicas) each with an O(1)
        // budget, NOT O(items × replicas).
        let copy_budget = base_copies + 4 * replicas as u64 + 16;
        assert!(
            copies <= copy_budget,
            "replicas={replicas}: {copies} deep copies exceed budget {copy_budget} \
             (base {base_copies} at 1 replica, {ITEMS} items) — the partition path \
             is deep-cloning payloads again"
        );
        let alloc_budget = base_allocs + base_allocs / 2 + 600 * replicas as u64;
        assert!(
            allocs <= alloc_budget,
            "replicas={replicas}: {allocs} allocations exceed budget {alloc_budget} \
             (base {base_allocs} at 1 replica, {ITEMS} items) — the partition path \
             is allocating per item × replica again"
        );
    }
}
