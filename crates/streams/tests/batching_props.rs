//! Property tests for batched queue transfer.
//!
//! Batching is a lock-traffic optimisation: `send_batch`/`recv_batch` and
//! the runtime's `batch_size(n)` must be observably indistinguishable from
//! per-item transfer — same FIFO order, same termination, same pipeline
//! results — under both the threaded runtime and the deterministic replay
//! scheduler.

use insight_streams::item::DataItem;
use insight_streams::processor::{Context, FnProcessor};
use insight_streams::queue::queue;
use insight_streams::replay::ReplayRuntime;
use insight_streams::runtime::Runtime;
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};
use proptest::prelude::*;

fn run_threaded(n: i64, modulus: i64, batch: usize, capacity: usize) -> Vec<(i64, i64)> {
    let sink = CollectSink::shared();
    let t = pipeline_with_sink(n, modulus, batch, capacity, &sink);
    Runtime::new(t).run().unwrap();
    sink.items().iter().map(|i| (i.get_i64("n").unwrap(), i.get_i64("rank").unwrap())).collect()
}

/// A two-stage pipeline whose tail is order-sensitive (a stateful counter
/// stamps each item's arrival rank), so any reordering or loss introduced by
/// batching would change the output.
fn pipeline_with_sink(
    n: i64,
    modulus: i64,
    batch: usize,
    capacity: usize,
    sink: &CollectSink,
) -> Topology {
    let mut t = Topology::new();
    t.add_source("nums", VecSource::new((0..n).map(|i| DataItem::new().with("n", i))));
    t.add_queue("q", capacity);
    t.process("filter")
        .input(Input::Stream("nums".into()))
        .processor(FnProcessor::new(move |item: DataItem, _: &mut Context| {
            Ok((item.get_i64("n").unwrap() % modulus == 0).then_some(item))
        }))
        .output(Output::Queue("q".into()))
        .batch_size(batch)
        .done();
    t.process("stamp")
        .input(Input::Queue("q".into()))
        .processor(FnProcessor::new({
            let mut seen = 0i64;
            move |mut item: DataItem, _: &mut Context| {
                item.set("rank", seen);
                seen += 1;
                Ok(Some(item))
            }
        }))
        .output(Output::Sink(Box::new(sink.clone())))
        .batch_size(batch)
        .done();
    t
}

proptest! {
    /// Queue level: a mix of batched and per-item sends drains as one FIFO
    /// sequence and terminates exactly once the producer finishes.
    #[test]
    fn batched_sends_drain_fifo_and_terminate(
        batches in proptest::collection::vec(proptest::collection::vec(0i64..1000, 0..12), 0..12),
        capacity in 1usize..9,
        max_recv in 1usize..9,
    ) {
        let expected: Vec<i64> = batches.iter().flatten().copied().collect();
        let (tx, mut rx) = queue(capacity, 1);
        let producer = std::thread::spawn(move || {
            for (i, b) in batches.into_iter().enumerate() {
                let items: Vec<DataItem> =
                    b.into_iter().map(|n| DataItem::new().with("n", n)).collect();
                // Alternate batched and per-item sends: the buffer cannot
                // tell them apart.
                if i % 2 == 0 {
                    tx.send_batch(items);
                } else {
                    for item in items {
                        tx.send(item);
                    }
                }
            }
            tx.finish();
        });
        let mut drained = Vec::new();
        while let Some(batch) = rx.recv_batch(max_recv) {
            prop_assert!(!batch.is_empty(), "recv_batch never returns an empty batch");
            prop_assert!(batch.len() <= max_recv, "recv_batch honours its cap");
            drained.extend(batch.iter().map(|i| i.get_i64("n").unwrap()));
        }
        producer.join().unwrap();
        prop_assert_eq!(drained, expected, "FIFO order survives mixed batching");
        prop_assert!(rx.recv_batch(max_recv).is_none(), "termination is sticky");
    }

    /// Threaded runtime: any batch size yields the same pipeline output as
    /// per-item transfer, even through tiny queues that force mid-batch
    /// blocking.
    #[test]
    fn threaded_batch_size_is_observationally_equivalent(
        n in 0i64..120,
        modulus in 1i64..5,
        batch in 2usize..33,
        capacity in 1usize..9,
    ) {
        let baseline = run_threaded(n, modulus, 1, capacity);
        let batched = run_threaded(n, modulus, batch, capacity);
        prop_assert_eq!(baseline, batched);
    }

    /// Replay scheduler: batched steps terminate (no deadlock) and produce
    /// the same output as per-item steps for every seed.
    #[test]
    fn replay_batch_size_is_observationally_equivalent(
        n in 0i64..120,
        modulus in 1i64..5,
        batch in 2usize..33,
        capacity in 1usize..9,
        seed in any::<u64>(),
    ) {
        let run = |batch: usize| {
            let sink = CollectSink::shared();
            let t = pipeline_with_sink(n, modulus, batch, capacity, &sink);
            ReplayRuntime::new(t, seed).run().unwrap();
            sink.items()
                .iter()
                .map(|i| (i.get_i64("n").unwrap(), i.get_i64("rank").unwrap()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(1), run(batch));
    }
}
