//! Steady-state allocation pins for the flat-map data plane.
//!
//! The point of the inline attribute representation is a hard allocation
//! contract, measured here with the real allocator hook
//! ([`insight_streams::alloc::CountingAllocator`]) rather than inferred:
//!
//! * building an item of at most [`INLINE_ATTRS`] attributes with
//!   inline-width values costs exactly **one** allocation (the shared `Arc`
//!   payload) — zero per attribute;
//! * cloning, lookups, and iteration cost **zero**;
//! * serializing into a warm reused buffer costs **zero**;
//! * parsing one JSON item without escapes costs exactly **one** (the
//!   `Arc` again — keys intern to statics, values stay inline).
//!
//! The counter is process-global, so this binary holds a single `#[test]`
//! (same discipline as `clone_budget.rs`) and every pinned window runs
//! single-threaded after a warm-up pass that populates the key interner
//! and grows the scratch buffers.

use insight_streams::alloc::{allocation_count, CountingAllocator};
use insight_streams::item::{DataItem, INLINE_ATTRS};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const ITEMS: u64 = 512;

/// A bus-schema-shaped item: 12 attributes, every value inline-width.
fn build_item(n: i64) -> DataItem {
    DataItem::new()
        .with("time", n)
        .with("arrival", n + 17)
        .with("region", "central")
        .with("kind", "bus")
        .with("bus", 33000 + n)
        .with("line", n % 60)
        .with("operator", 7i64)
        .with("delay", 120i64)
        .with("lon", -6.26 + n as f64 * 1e-6)
        .with("lat", 53.35)
        .with("direction", n % 2)
        .with("congestion", n % 3 == 0)
}

fn measured(work: impl FnOnce()) -> u64 {
    let before = allocation_count();
    work();
    allocation_count() - before
}

#[test]
fn steady_state_allocations_are_pinned() {
    assert!(build_item(0).len() <= INLINE_ATTRS, "the probe schema must fit inline");

    // Warm-up: intern every key, touch every code path once, and size the
    // scratch buffers past what the measured windows need.
    let warm = build_item(0);
    let mut json = String::with_capacity(4096);
    warm.to_json_into(&mut json);
    let parsed = DataItem::from_json(&json).unwrap();
    assert_eq!(parsed, warm, "warm-up round trip");
    let inputs: Vec<String> = (0..ITEMS as i64).map(|n| build_item(n).to_json()).collect();

    // Build: exactly one allocation per item — the Arc'd attribute payload.
    let mut built: Vec<DataItem> = Vec::with_capacity(ITEMS as usize);
    let allocs = measured(|| {
        for n in 0..ITEMS as i64 {
            built.push(build_item(n));
        }
    });
    assert_eq!(
        allocs, ITEMS,
        "build: want exactly 1 allocation/item (the Arc), got {allocs} for {ITEMS}"
    );

    // Clone + lookup + iterate: zero allocations.
    let allocs = measured(|| {
        for item in &built {
            let c = item.clone();
            assert_eq!(c.get_i64("time"), item.get_i64("time"));
            assert!(c.get_str("region").is_some());
            assert_eq!(c.iter().count(), 12);
        }
    });
    assert_eq!(allocs, 0, "clone/lookup/iterate must not allocate, got {allocs}");

    // Serialize into a warm buffer: zero allocations.
    let allocs = measured(|| {
        for item in &built {
            json.clear();
            item.to_json_into(&mut json);
        }
    });
    assert_eq!(allocs, 0, "serialize-into must not allocate, got {allocs}");

    // Parse: one allocation per item (the Arc), zero per key/value.
    let mut reparsed: Vec<DataItem> = Vec::with_capacity(ITEMS as usize);
    let allocs = measured(|| {
        for line in &inputs {
            reparsed.push(DataItem::from_json(line).unwrap());
        }
    });
    assert_eq!(
        allocs, ITEMS,
        "parse: want exactly 1 allocation/item (the Arc), got {allocs} for {ITEMS}"
    );
    assert_eq!(reparsed, built, "parsed items match the originals");
}
