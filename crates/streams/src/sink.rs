//! Sinks: where data items leave the graph.

use crate::error::StreamsError;
use crate::item::DataItem;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A consumer of data items at the edge of the topology.
pub trait Sink: Send {
    /// Consumes one item.
    fn write_item(&mut self, item: DataItem) -> Result<(), StreamsError>;

    /// Called once when the feeding process finishes. Default: nothing.
    fn flush(&mut self) -> Result<(), StreamsError> {
        Ok(())
    }
}

/// Collects items into shared memory; clone handles observe the same buffer.
#[derive(Clone, Default)]
pub struct CollectSink {
    items: Arc<Mutex<Vec<DataItem>>>,
}

impl CollectSink {
    /// A fresh shared collector.
    pub fn shared() -> CollectSink {
        CollectSink::default()
    }

    /// Snapshot of the collected items.
    pub fn items(&self) -> Vec<DataItem> {
        self.items.lock().unwrap().clone()
    }

    /// Number of collected items.
    pub fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.items.lock().unwrap().is_empty()
    }
}

impl Sink for CollectSink {
    fn write_item(&mut self, item: DataItem) -> Result<(), StreamsError> {
        self.items.lock().unwrap().push(item);
        Ok(())
    }
}

/// Counts items and discards them.
#[derive(Clone, Default)]
pub struct CountSink {
    count: Arc<AtomicU64>,
}

impl CountSink {
    /// A fresh shared counter.
    pub fn shared() -> CountSink {
        CountSink::default()
    }

    /// Items seen so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Sink for CountSink {
    fn write_item(&mut self, _item: DataItem) -> Result<(), StreamsError> {
        self.count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Discards everything.
#[derive(Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn write_item(&mut self, _item: DataItem) -> Result<(), StreamsError> {
        Ok(())
    }
}

/// Writes one JSON object per line to any writer.
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps the writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink { writer }
    }

    /// Returns the inner writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn write_item(&mut self, item: DataItem) -> Result<(), StreamsError> {
        writeln!(self.writer, "{}", item.to_json())?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StreamsError> {
        self.writer.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_shares_buffer() {
        let sink = CollectSink::shared();
        let mut handle = sink.clone();
        handle.write_item(DataItem::new().with("x", 1i64)).unwrap();
        handle.write_item(DataItem::new().with("x", 2i64)).unwrap();
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(sink.items()[1].get_i64("x"), Some(2));
    }

    #[test]
    fn count_sink_counts() {
        let sink = CountSink::shared();
        let mut handle = sink.clone();
        for _ in 0..7 {
            handle.write_item(DataItem::new()).unwrap();
        }
        assert_eq!(sink.count(), 7);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.write_item(DataItem::new()).unwrap();
        s.flush().unwrap();
    }

    #[test]
    fn json_lines_sink_roundtrip() {
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        sink.write_item(DataItem::new().with("a", 1i64)).unwrap();
        sink.write_item(DataItem::new().with("b", "x")).unwrap();
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(DataItem::from_json(lines[0]).unwrap().get_i64("a"), Some(1));
    }
}
