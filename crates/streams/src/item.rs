//! Data items: the unit of data flowing through the graph.
//!
//! The Streams framework represents stream elements as *sets of key-value
//! pairs* — event attributes and their values. [`DataItem`] keeps the pairs
//! in a sorted map so that items have a canonical form, and [`Value`] covers
//! the attribute types the Dublin SDE schemas need (plus JSON-friendly
//! serialisation for file sources and sinks).
//!
//! Keys are interned [`Key`]s (see [`crate::intern`]): attribute names come
//! from a bounded schema vocabulary, so cloning an item copies pointers
//! instead of allocating a `String` per attribute, and key equality on the
//! hot path is a pointer compare.
//!
//! The attribute map itself lives behind an [`Arc`] with copy-on-write
//! mutation: `clone()` is a reference-count bump, and the map is deep-copied
//! only when a *shared* item is mutated ([`Arc::make_mut`]). Fan-out
//! broadcasts, watermark bridging, fault-policy snapshots and the partition
//! merge therefore share one allocation per item instead of copying the map
//! at every hop. Every deep copy is counted in a process-wide counter
//! ([`DataItem::deep_copies`]) so tests can pin an allocation budget on a
//! pipeline shape.

use crate::intern::Key;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / absent marker.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Integer accessor (does not coerce floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric accessor (coerces integers to floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Process-wide count of attribute-map deep copies forced by copy-on-write
/// mutation of a shared item (see [`DataItem::deep_copies`]).
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// A set of key-value pairs travelling through the data-flow graph.
///
/// The map is shared on `clone()` and deep-copied only when a shared item is
/// mutated (copy-on-write) — see the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataItem {
    attrs: Arc<BTreeMap<Key, Value>>,
}

impl DataItem {
    /// An empty item.
    pub fn new() -> DataItem {
        DataItem::default()
    }

    /// Copy-on-write access to the attribute map: exclusive maps are mutated
    /// in place, shared maps are deep-copied first (counted in
    /// [`DataItem::deep_copies`]).
    fn attrs_mut(&mut self) -> &mut BTreeMap<Key, Value> {
        if Arc::get_mut(&mut self.attrs).is_none() {
            DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        }
        Arc::make_mut(&mut self.attrs)
    }

    /// Process-wide number of attribute-map deep copies performed so far:
    /// every mutation of an item whose map is shared with another live clone
    /// counts once. Monotone over the process lifetime — measure a window of
    /// work as the difference of two readings. Exclusive-item mutations and
    /// `clone()` itself never count.
    pub fn deep_copies() -> u64 {
        DEEP_COPIES.load(Ordering::Relaxed)
    }

    /// Builder-style attribute insertion.
    pub fn with<K: Into<Key>, V: Into<Value>>(mut self, key: K, value: V) -> DataItem {
        self.attrs_mut().insert(key.into(), value.into());
        self
    }

    /// Inserts/replaces an attribute.
    pub fn set<K: Into<Key>, V: Into<Value>>(&mut self, key: K, value: V) {
        self.attrs_mut().insert(key.into(), value.into());
    }

    /// Removes an attribute, returning its previous value. Removing an
    /// absent key is a no-op that never forces a copy of a shared map.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        if !self.attrs.contains_key(key) {
            return None;
        }
        self.attrs_mut().remove(key)
    }

    /// Looks up an attribute.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// Integer attribute accessor.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_i64)
    }

    /// Numeric attribute accessor (coerces ints).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// String attribute accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Boolean attribute accessor.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// Whether the attribute exists.
    pub fn contains(&self, key: &str) -> bool {
        self.attrs.contains_key(key)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the item carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keeps only the listed keys (the Streams `SelectKeys` processor).
    pub fn project(&mut self, keys: &[&str]) {
        if self.attrs.keys().all(|k| keys.contains(&k.as_str())) {
            return;
        }
        self.attrs_mut().retain(|k, _| keys.contains(&k.as_str()));
    }

    /// Serialises the item as one JSON object line.
    pub fn to_json(&self) -> String {
        crate::json::object_to_string(self.iter())
    }

    /// Parses an item from a JSON object.
    pub fn from_json(s: &str) -> Result<DataItem, crate::error::StreamsError> {
        crate::json::parse_object(s)
            .map(|attrs| attrs.into_iter().collect())
            .map_err(|detail| crate::error::StreamsError::Io { detail })
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for DataItem {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        DataItem { attrs: Arc::new(iter.into_iter().map(|(k, v)| (Key::from(k), v)).collect()) }
    }
}

impl FromIterator<(Key, Value)> for DataItem {
    fn from_iter<I: IntoIterator<Item = (Key, Value)>>(iter: I) -> Self {
        DataItem { attrs: Arc::new(iter.into_iter().collect()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let item = DataItem::new()
            .with("bus", 33009i64)
            .with("line", "r10")
            .with("delay", 400.5)
            .with("congested", true);
        assert_eq!(item.get_i64("bus"), Some(33009));
        assert_eq!(item.get_str("line"), Some("r10"));
        assert_eq!(item.get_f64("delay"), Some(400.5));
        assert_eq!(item.get_f64("bus"), Some(33009.0), "ints coerce to f64");
        assert_eq!(item.get_bool("congested"), Some(true));
        assert_eq!(item.get("missing"), None);
        assert_eq!(item.len(), 4);
    }

    #[test]
    fn set_remove_project() {
        let mut item = DataItem::new().with("a", 1i64).with("b", 2i64).with("c", 3i64);
        item.set("a", 10i64);
        assert_eq!(item.get_i64("a"), Some(10));
        assert_eq!(item.remove("b"), Some(Value::Int(2)));
        item.project(&["a"]);
        assert_eq!(item.len(), 1);
        assert!(item.contains("a") && !item.contains("c"));
    }

    #[test]
    fn json_roundtrip() {
        let item = DataItem::new()
            .with("bus", 1i64)
            .with("lat", 53.35)
            .with("line", "r10")
            .with("ok", true);
        let json = item.to_json();
        let back = DataItem::from_json(&json).unwrap();
        assert_eq!(item, back);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(DataItem::from_json("not json").is_err());
    }

    #[test]
    fn display_is_sorted_by_key() {
        let item = DataItem::new().with("z", 1i64).with("a", 2i64);
        assert_eq!(item.to_string(), "{a=2, z=1}");
    }

    #[test]
    fn clone_shares_until_mutated() {
        // Sharing is observable through the Arc pointer (the global counter
        // is shared with concurrently running tests, so pointer identity is
        // the race-free way to assert copy-on-write behaviour here).
        let a = DataItem::new().with("n", 1i64).with("s", "x");
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.attrs, &b.attrs), "clone shares the map");
        let before = DataItem::deep_copies();
        b.set("n", 2i64);
        assert!(!Arc::ptr_eq(&a.attrs, &b.attrs), "shared mutation detaches");
        assert!(DataItem::deep_copies() > before, "the detach was counted");
        assert_eq!(a.get_i64("n"), Some(1), "the original is untouched");
        assert_eq!(b.get_i64("n"), Some(2));
        // Removing an absent key from a shared map stays copy-free.
        let mut c = a.clone();
        assert_eq!(c.remove("missing"), None);
        assert!(Arc::ptr_eq(&a.attrs, &c.attrs), "no-op remove never copies");
        // Projecting onto a superset of the keys is also copy-free.
        let mut d = a.clone();
        d.project(&["n", "s", "extra"]);
        assert!(Arc::ptr_eq(&a.attrs, &d.attrs), "no-op project never copies");
    }

    #[test]
    fn value_accessors_are_strict() {
        assert_eq!(Value::Float(1.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Null.as_str(), None);
    }
}
