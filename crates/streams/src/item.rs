//! Data items: the unit of data flowing through the graph.
//!
//! The Streams framework represents stream elements as *sets of key-value
//! pairs* — event attributes and their values. [`DataItem`] keeps the pairs
//! in canonical sorted-by-key form, and [`Value`] covers the attribute types
//! the Dublin SDE schemas need (plus JSON-friendly serialisation for file
//! sources and sinks).
//!
//! Keys are interned [`Key`]s (see [`crate::intern`]): attribute names come
//! from a bounded schema vocabulary, so cloning an item copies pointers
//! instead of allocating a `String` per attribute, and key equality on the
//! hot path is a pointer compare.
//!
//! The attributes themselves live in a *flat sorted array* rather than a
//! tree: [`INLINE_ATTRS`] slots are stored inline (no heap node per
//! attribute), and only items wider than that spill to a heap vector. String
//! values use [`SmallStr`], which keeps payloads up to [`SMALL_STR_INLINE`]
//! bytes inline — the Dublin vocabulary (`"bus"`, `"north"`, …) never
//! touches the heap. A full bus or SCATS SDE therefore costs exactly one
//! heap allocation to build (the shared `Arc` below) and zero to clone,
//! look up, or deep-copy.
//!
//! The attribute map sits behind an [`Arc`] with copy-on-write mutation:
//! `clone()` is a reference-count bump, and the map is deep-copied only when
//! a *shared* item is mutated ([`Arc::make_mut`]). Fan-out broadcasts,
//! watermark bridging, fault-policy snapshots and the partition merge
//! therefore share one allocation per item instead of copying the map at
//! every hop. Every deep copy of a non-empty shared map is counted in a
//! process-wide counter ([`DataItem::deep_copies`]) so tests can pin an
//! allocation budget on a pipeline shape; detaching from the shared *empty*
//! singleton (every fresh item starts there) is initialisation, not a deep
//! copy, and is not counted.

use crate::intern::Key;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Maximum byte length a [`SmallStr`] stores inline. Chosen so the whole
/// [`Value`] stays 32 bytes — the widest slot the numeric variants need
/// plus the inline buffer and its length tag.
pub const SMALL_STR_INLINE: usize = 22;

/// A UTF-8 string with inline storage for short payloads.
///
/// Strings of at most [`SMALL_STR_INLINE`] bytes live in the value itself;
/// longer payloads fall back to a heap `Box<str>`. The Dublin SDE
/// vocabulary (region names, SDE kinds, line labels) fits inline, so string
/// attributes stop costing a heap allocation per item on build and clone.
#[derive(Clone)]
pub struct SmallStr(Repr);

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u8; SMALL_STR_INLINE] },
    Heap(Box<str>),
}

impl SmallStr {
    /// Builds from a borrowed string; inline when it fits.
    pub fn new(s: &str) -> SmallStr {
        if s.len() <= SMALL_STR_INLINE {
            let mut buf = [0u8; SMALL_STR_INLINE];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SmallStr(Repr::Inline { len: s.len() as u8, buf })
        } else {
            SmallStr(Repr::Heap(s.into()))
        }
    }

    /// The string slice. Free for both representations.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Inline { len, buf } => {
                // The inline buffer always holds a complete `&str`'s bytes
                // (never a truncated prefix), so this cannot fail.
                std::str::from_utf8(&buf[..*len as usize]).expect("inline bytes are UTF-8")
            }
            Repr::Heap(s) => s,
        }
    }

    /// Whether the payload is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Byte length of the string.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(s) => s.len(),
        }
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for SmallStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for SmallStr {
    fn eq(&self, other: &SmallStr) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for SmallStr {}

impl PartialEq<str> for SmallStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for SmallStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::hash::Hash for SmallStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl From<&str> for SmallStr {
    fn from(s: &str) -> SmallStr {
        SmallStr::new(s)
    }
}
impl From<String> for SmallStr {
    fn from(s: String) -> SmallStr {
        if s.len() <= SMALL_STR_INLINE {
            SmallStr::new(&s)
        } else {
            SmallStr(Repr::Heap(s.into_boxed_str()))
        }
    }
}
impl AsRef<str> for SmallStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / absent marker.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string with inline storage for short payloads.
    Str(SmallStr),
}

impl Value {
    /// Integer accessor (does not coerce floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric accessor (coerces integers to floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(SmallStr::new(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(SmallStr::from(v))
    }
}
impl From<SmallStr> for Value {
    fn from(v: SmallStr) -> Value {
        Value::Str(v)
    }
}

/// Inline attribute capacity of the flat map: the widest Dublin SDE schema
/// (a bus item) carries 12 attributes, so typical items never spill.
pub const INLINE_ATTRS: usize = 12;

/// The flat sorted attribute storage behind every [`DataItem`].
///
/// Pairs are kept sorted by key (the interner's lexicographic order, same
/// canonical form the old `BTreeMap` gave). Up to [`INLINE_ATTRS`] pairs
/// live in an inline array; wider items move everything to a heap vector
/// and stay there (spilling is one-way — items never shrink back, which
/// keeps removal O(n) with no re-inlining edge cases). Lookup is a binary
/// search over at most a cache line or two of slots.
// The size skew between the variants is the design: the inline array *is*
// the storage, and the enum always lives behind the item's `Arc`, so the
// "waste" on a spilled item is one allocation's slack, not a per-value
// copy. Boxing the array would reintroduce the indirection the layout
// exists to remove.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum AttrMap {
    Inline { len: u8, slots: [(Key, Value); INLINE_ATTRS] },
    Spill(Vec<(Key, Value)>),
}

/// Placeholder for dead inline slots; never exposed through the populated
/// prefix.
const EMPTY_SLOT: (Key, Value) = (Key::placeholder(), Value::Null);

impl AttrMap {
    pub(crate) fn new() -> AttrMap {
        AttrMap::Inline { len: 0, slots: [EMPTY_SLOT; INLINE_ATTRS] }
    }

    /// The populated pairs, sorted by key.
    pub(crate) fn as_slice(&self) -> &[(Key, Value)] {
        match self {
            AttrMap::Inline { len, slots } => &slots[..*len as usize],
            AttrMap::Spill(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [(Key, Value)] {
        match self {
            AttrMap::Inline { len, slots } => &mut slots[..*len as usize],
            AttrMap::Spill(v) => v,
        }
    }

    /// Binary search by key text: `Ok(index)` of the match or `Err(index)`
    /// of the insertion point.
    fn search(&self, key: &str) -> Result<usize, usize> {
        self.as_slice().binary_search_by(|(k, _)| k.as_str().cmp(key))
    }

    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self.search(key) {
            Ok(i) => Some(&self.as_slice()[i].1),
            Err(_) => None,
        }
    }

    pub(crate) fn contains_key(&self, key: &str) -> bool {
        self.search(key).is_ok()
    }

    pub(crate) fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub(crate) fn insert(&mut self, key: Key, value: Value) {
        match self.search(key.as_str()) {
            Ok(i) => self.as_mut_slice()[i].1 = value,
            Err(i) => self.insert_at(i, key, value),
        }
    }

    fn insert_at(&mut self, i: usize, key: Key, value: Value) {
        match self {
            AttrMap::Inline { len, slots } if (*len as usize) < INLINE_ATTRS => {
                let n = *len as usize;
                // Rotate the placeholder at `slots[n]` down to `i`, shifting
                // the tail up one slot, then overwrite it in place.
                slots[i..=n].rotate_right(1);
                slots[i] = (key, value);
                *len += 1;
            }
            AttrMap::Inline { slots, .. } => {
                let mut v = Vec::with_capacity(INLINE_ATTRS * 2);
                for slot in slots.iter_mut() {
                    v.push(std::mem::replace(slot, EMPTY_SLOT));
                }
                v.insert(i, (key, value));
                *self = AttrMap::Spill(v);
            }
            AttrMap::Spill(v) => v.insert(i, (key, value)),
        }
    }

    pub(crate) fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.search(key).ok()?;
        match self {
            AttrMap::Inline { len, slots } => {
                let n = *len as usize;
                // Rotate the doomed slot to the end of the populated prefix,
                // then retire it to a placeholder.
                slots[i..n].rotate_left(1);
                *len -= 1;
                Some(std::mem::replace(&mut slots[n - 1], EMPTY_SLOT).1)
            }
            AttrMap::Spill(v) => Some(v.remove(i).1),
        }
    }

    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&Key) -> bool) {
        match self {
            AttrMap::Inline { len, slots } => {
                let n = *len as usize;
                let mut write = 0usize;
                for read in 0..n {
                    if keep(&slots[read].0) {
                        if write != read {
                            slots.swap(write, read);
                        }
                        write += 1;
                    }
                }
                for slot in &mut slots[write..n] {
                    *slot = EMPTY_SLOT;
                }
                *len = write as u8;
            }
            AttrMap::Spill(v) => v.retain(|(k, _)| keep(k)),
        }
    }

    /// Whether the populated pairs live in the inline array.
    pub(crate) fn is_inline(&self) -> bool {
        matches!(self, AttrMap::Inline { .. })
    }
}

impl PartialEq for AttrMap {
    fn eq(&self, other: &AttrMap) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Default for AttrMap {
    fn default() -> AttrMap {
        AttrMap::new()
    }
}

/// Process-wide count of attribute-map deep copies forced by copy-on-write
/// mutation of a shared item (see [`DataItem::deep_copies`]).
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// The process-wide empty attribute map every fresh [`DataItem`] points at,
/// so `DataItem::new()` itself never allocates.
static EMPTY_ATTRS: OnceLock<Arc<AttrMap>> = OnceLock::new();

fn empty_attrs() -> Arc<AttrMap> {
    EMPTY_ATTRS.get_or_init(|| Arc::new(AttrMap::new())).clone()
}

/// A set of key-value pairs travelling through the data-flow graph.
///
/// The map is shared on `clone()` and deep-copied only when a shared item is
/// mutated (copy-on-write) — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct DataItem {
    attrs: Arc<AttrMap>,
}

impl Default for DataItem {
    fn default() -> DataItem {
        DataItem { attrs: empty_attrs() }
    }
}

impl DataItem {
    /// An empty item. Allocation-free: every empty item shares one
    /// process-wide map until its first mutation.
    pub fn new() -> DataItem {
        DataItem::default()
    }

    /// Copy-on-write access to the attribute map: exclusive maps are mutated
    /// in place, shared maps are deep-copied first (counted in
    /// [`DataItem::deep_copies`]). Detaching from a shared *empty* map — in
    /// particular the process-wide empty singleton behind every fresh item —
    /// copies nothing, so it is initialisation rather than a deep copy and
    /// is not counted.
    fn attrs_mut(&mut self) -> &mut AttrMap {
        if Arc::get_mut(&mut self.attrs).is_none() && !self.attrs.is_empty() {
            DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        }
        Arc::make_mut(&mut self.attrs)
    }

    /// Process-wide number of attribute-map deep copies performed so far:
    /// every mutation of a *non-empty* item whose map is shared with another
    /// live clone counts once. Monotone over the process lifetime — measure
    /// a window of work as the difference of two readings. Exclusive-item
    /// mutations, empty-map detaches and `clone()` itself never count.
    pub fn deep_copies() -> u64 {
        DEEP_COPIES.load(Ordering::Relaxed)
    }

    /// Builder-style attribute insertion.
    pub fn with<K: Into<Key>, V: Into<Value>>(mut self, key: K, value: V) -> DataItem {
        self.attrs_mut().insert(key.into(), value.into());
        self
    }

    /// Inserts/replaces an attribute.
    pub fn set<K: Into<Key>, V: Into<Value>>(&mut self, key: K, value: V) {
        self.attrs_mut().insert(key.into(), value.into());
    }

    /// Removes an attribute, returning its previous value. Removing an
    /// absent key is a no-op that never forces a copy of a shared map.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        if !self.attrs.contains_key(key) {
            return None;
        }
        self.attrs_mut().remove(key)
    }

    /// Looks up an attribute.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// Integer attribute accessor.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_i64)
    }

    /// Numeric attribute accessor (coerces ints).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// String attribute accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Boolean attribute accessor.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// Whether the attribute exists.
    pub fn contains(&self, key: &str) -> bool {
        self.attrs.contains_key(key)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the item carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.as_slice().iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether the attributes fit the inline storage (no spill vector).
    /// Diagnostic for allocation-budget tests; typical SDEs are inline.
    pub fn is_inline(&self) -> bool {
        self.attrs.is_inline()
    }

    /// Keeps only the listed keys (the Streams `SelectKeys` processor).
    pub fn project(&mut self, keys: &[&str]) {
        if self.attrs.as_slice().iter().all(|(k, _)| keys.contains(&k.as_str())) {
            return;
        }
        self.attrs_mut().retain(|k| keys.contains(&k.as_str()));
    }

    /// Serialises the item as one JSON object line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        self.to_json_into(&mut out);
        out
    }

    /// Appends the item's JSON object form to `out` — the allocation-free
    /// path for callers that reuse a serialisation buffer.
    pub fn to_json_into(&self, out: &mut String) {
        crate::json::item_into(out, self);
    }

    /// Parses an item from a JSON object without intermediate key/value
    /// allocations (see [`crate::json::parse_item`]).
    pub fn from_json(s: &str) -> Result<DataItem, crate::error::StreamsError> {
        crate::json::parse_item(s).map_err(|detail| crate::error::StreamsError::Io { detail })
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for DataItem {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        iter.into_iter().map(|(k, v)| (Key::from(k), v)).collect()
    }
}

impl FromIterator<(Key, Value)> for DataItem {
    fn from_iter<I: IntoIterator<Item = (Key, Value)>>(iter: I) -> Self {
        let mut map = AttrMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        DataItem { attrs: Arc::new(map) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let item = DataItem::new()
            .with("bus", 33009i64)
            .with("line", "r10")
            .with("delay", 400.5)
            .with("congested", true);
        assert_eq!(item.get_i64("bus"), Some(33009));
        assert_eq!(item.get_str("line"), Some("r10"));
        assert_eq!(item.get_f64("delay"), Some(400.5));
        assert_eq!(item.get_f64("bus"), Some(33009.0), "ints coerce to f64");
        assert_eq!(item.get_bool("congested"), Some(true));
        assert_eq!(item.get("missing"), None);
        assert_eq!(item.len(), 4);
    }

    #[test]
    fn set_remove_project() {
        let mut item = DataItem::new().with("a", 1i64).with("b", 2i64).with("c", 3i64);
        item.set("a", 10i64);
        assert_eq!(item.get_i64("a"), Some(10));
        assert_eq!(item.remove("b"), Some(Value::Int(2)));
        item.project(&["a"]);
        assert_eq!(item.len(), 1);
        assert!(item.contains("a") && !item.contains("c"));
    }

    #[test]
    fn json_roundtrip() {
        let item = DataItem::new()
            .with("bus", 1i64)
            .with("lat", 53.35)
            .with("line", "r10")
            .with("ok", true);
        let json = item.to_json();
        let back = DataItem::from_json(&json).unwrap();
        assert_eq!(item, back);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(DataItem::from_json("not json").is_err());
    }

    #[test]
    fn display_is_sorted_by_key() {
        let item = DataItem::new().with("z", 1i64).with("a", 2i64);
        assert_eq!(item.to_string(), "{a=2, z=1}");
    }

    #[test]
    fn clone_shares_until_mutated() {
        // Sharing is observable through the Arc pointer (the global counter
        // is shared with concurrently running tests, so pointer identity is
        // the race-free way to assert copy-on-write behaviour here).
        let a = DataItem::new().with("n", 1i64).with("s", "x");
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.attrs, &b.attrs), "clone shares the map");
        let before = DataItem::deep_copies();
        b.set("n", 2i64);
        assert!(!Arc::ptr_eq(&a.attrs, &b.attrs), "shared mutation detaches");
        assert!(DataItem::deep_copies() > before, "the detach was counted");
        assert_eq!(a.get_i64("n"), Some(1), "the original is untouched");
        assert_eq!(b.get_i64("n"), Some(2));
        // Removing an absent key from a shared map stays copy-free.
        let mut c = a.clone();
        assert_eq!(c.remove("missing"), None);
        assert!(Arc::ptr_eq(&a.attrs, &c.attrs), "no-op remove never copies");
        // Projecting onto a superset of the keys is also copy-free.
        let mut d = a.clone();
        d.project(&["n", "s", "extra"]);
        assert!(Arc::ptr_eq(&a.attrs, &d.attrs), "no-op project never copies");
    }

    #[test]
    fn exclusive_mutation_is_not_a_deep_copy() {
        let mut item = DataItem::new().with("n", 1i64);
        // The map is exclusively owned: further mutation happens in place.
        let before = DataItem::deep_copies();
        let ptr = Arc::as_ptr(&item.attrs);
        item.set("n", 2i64);
        item.set("m", 3i64);
        assert_eq!(Arc::as_ptr(&item.attrs), ptr, "exclusive mutation is in place");
        assert_eq!(DataItem::deep_copies(), before, "no deep copy counted");
    }

    #[test]
    fn empty_map_detach_is_not_a_deep_copy() {
        // Every fresh item shares the process-wide empty singleton, and the
        // first insertion detaches from it. Copying nothing is not a deep
        // copy — the counter must stay untouched (this was miscounted when
        // the counter keyed on the `Arc::get_mut` miss alone).
        let a = DataItem::new();
        let b = DataItem::new();
        assert!(Arc::ptr_eq(&a.attrs, &b.attrs), "fresh items share the empty singleton");
        let before = DataItem::deep_copies();
        let _built = DataItem::new().with("n", 1i64);
        let mut c = DataItem::new();
        c.set("m", 2i64);
        assert_eq!(DataItem::deep_copies(), before, "empty detaches are not deep copies");
        // An explicitly shared empty map behaves the same.
        let empty = DataItem::new();
        let mut clone = empty.clone();
        clone.set("k", 1i64);
        assert_eq!(DataItem::deep_copies(), before, "shared-empty mutation is not counted");
        assert!(empty.is_empty() && clone.len() == 1);
    }

    #[test]
    fn inline_capacity_and_spill() {
        let mut item = DataItem::new();
        for i in 0..INLINE_ATTRS {
            item.set(format!("k{i:02}"), i as i64);
        }
        assert!(item.is_inline(), "{INLINE_ATTRS} attrs fit inline");
        item.set("k99", 99i64);
        assert!(!item.is_inline(), "attr {} spills", INLINE_ATTRS + 1);
        assert_eq!(item.len(), INLINE_ATTRS + 1);
        for i in 0..INLINE_ATTRS {
            assert_eq!(item.get_i64(&format!("k{i:02}")), Some(i as i64));
        }
        assert_eq!(item.get_i64("k99"), Some(99));
        // Iteration stays sorted across the spill boundary.
        let keys: Vec<&str> = item.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Removal works on the spilled form too.
        assert_eq!(item.remove("k05"), Some(Value::Int(5)));
        assert_eq!(item.len(), INLINE_ATTRS);
    }

    #[test]
    fn small_str_inline_boundary() {
        let fits = "x".repeat(SMALL_STR_INLINE);
        let spills = "x".repeat(SMALL_STR_INLINE + 1);
        assert!(SmallStr::new(&fits).is_inline());
        assert!(!SmallStr::new(&spills).is_inline());
        assert_eq!(SmallStr::new(&fits).as_str(), fits);
        assert_eq!(SmallStr::new(&spills).as_str(), spills);
        // Inline and heap forms of different strings still compare by text.
        assert_eq!(SmallStr::new(""), SmallStr::from(String::new()));
        assert_eq!(SmallStr::new("north").as_str(), "north");
        // Multi-byte UTF-8 at the boundary.
        let multi = "é".repeat(SMALL_STR_INLINE / 2);
        assert_eq!(SmallStr::new(&multi).as_str(), multi);
    }

    #[test]
    fn value_accessors_are_strict() {
        assert_eq!(Value::Float(1.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn value_stays_compact() {
        // The inline small-string budget is set so `Value` never exceeds
        // four words; a widening here silently bloats every slot.
        assert!(std::mem::size_of::<Value>() <= 32, "Value grew past 32 bytes");
    }
}
