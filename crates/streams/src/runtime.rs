//! Runtime: executes a validated topology, one thread per process.
//!
//! Sources are drained, items flow through processor chains, survivors are
//! cloned to every output. End-of-stream propagates through queues via
//! per-producer markers, so the whole graph drains and terminates
//! deterministically.
//!
//! Every processor invocation is *supervised*: errors and panics
//! (`catch_unwind`) become faults governed by the process's
//! [`FaultPolicy`] — fail the run, skip the item, retry the failing
//! processor, or dead-letter the item — with outcomes counted in the
//! process's [`StageMetrics`]. Under the default [`FaultPolicy::FailFast`]
//! the first fault aborts its process; end-of-stream is still propagated
//! downstream so no thread deadlocks, and `run` returns the first error.

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::error::StreamsError;
use crate::fault::{DeadLetterQueue, DeadLetterRecord, FaultPolicy};
use crate::item::DataItem;
use crate::metrics::{MetricsRegistry, StageMetrics};
use crate::partition::Dispatch;
use crate::processor::{Context, Processor};
use crate::queue::{queue_with_metrics, QueueReceiver, QueueSender};
use crate::sink::Sink;
use crate::source::Source;
use crate::topology::{Input, Output, SharedProcessorFactory, Topology};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Checkpoint cadence applied when [`FaultPolicy::Restart`] with
/// `from_checkpoint` is armed but the process declares no explicit
/// [`checkpoint_every`](crate::topology::ProcessBuilder::checkpoint_every):
/// the replay log is truncated only at barriers, so supervision without a
/// cadence would retain every input for the life of the stream.
pub const DEFAULT_RESTART_CADENCE: usize = 1000;

/// Statistics of one completed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Per process: `(items consumed, items emitted)`.
    pub per_process: HashMap<String, (u64, u64)>,
}

impl RunStats {
    /// Total items consumed across processes.
    pub fn total_consumed(&self) -> u64 {
        self.per_process.values().map(|v| v.0).sum()
    }

    /// Total items emitted across processes.
    pub fn total_emitted(&self) -> u64 {
        self.per_process.values().map(|v| v.1).sum()
    }
}

pub(crate) enum ProcInput {
    Source(Box<dyn Source>),
    Queue(QueueReceiver),
}

pub(crate) enum ProcOutput {
    Queue(QueueSender),
    Sink(Box<dyn Sink>),
    Discard,
}

/// Executes a [`Topology`].
pub struct Runtime {
    topology: Topology,
    metrics: Arc<MetricsRegistry>,
}

impl Runtime {
    /// Wraps a topology for execution (with a fresh metrics registry).
    pub fn new(topology: Topology) -> Runtime {
        Runtime { topology, metrics: Arc::new(MetricsRegistry::new()) }
    }

    /// Uses an externally owned metrics registry, so the caller can snapshot
    /// instruments after (or while) the topology runs.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Runtime {
        self.metrics = metrics;
        self
    }

    /// The registry this runtime records into.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Validates and runs the topology to completion.
    pub fn run(self) -> Result<RunStats, StreamsError> {
        let metrics = self.metrics;
        let workers = materialize(self.topology, &metrics)?;

        let mut handles = Vec::new();
        for w in workers {
            let name = w.name.clone();
            handles.push((name, thread::spawn(move || w.run())));
        }

        let mut stats = RunStats::default();
        let mut first_error = None;
        for (process, h) in handles {
            match h.join() {
                Ok(Ok((name, consumed, emitted))) => {
                    stats.per_process.insert(name, (consumed, emitted));
                }
                Ok(Err(e)) => first_error = first_error.or(Some(e)),
                // A panic that escaped the per-invocation supervision (a bug
                // in the worker itself, a panicking sink, ...) still must not
                // abort the caller: surface it as an error.
                Err(payload) => {
                    first_error = first_error.or(Some(StreamsError::ProcessorPanicked {
                        process,
                        payload: panic_message(payload),
                    }))
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }
}

/// Validates a topology and builds one [`Worker`] per process, wired up with
/// its queues, metrics and fault policy. Shared by the threaded [`Runtime`]
/// and the single-threaded [`crate::replay::ReplayRuntime`] so both execute
/// exactly the same supervised per-item semantics.
pub(crate) fn materialize(
    mut topology: Topology,
    metrics: &Arc<MetricsRegistry>,
) -> Result<Vec<Worker>, StreamsError> {
    // Replicated processes become ordinary partition/replica/merge processes
    // first, so validation, queue accounting, metrics and scheduling all see
    // the real (expanded) graph.
    crate::partition::expand_replicas(&mut topology)?;
    topology.validate()?;
    let Topology { mut sources, queues, processes, services, dead_letters: _, checkpoint_store } =
        topology;
    let store = checkpoint_store.unwrap_or_else(CheckpointStore::in_memory);
    // Processors can reach the instruments through their Context.
    if !services.contains("metrics") {
        services.register_arc("metrics", Arc::clone(metrics));
    }

    // Count producers per queue to size the EOS protocol.
    let mut producers: HashMap<&str, usize> = HashMap::new();
    for p in &processes {
        for o in &p.outputs {
            if let Output::Queue(q) = o {
                *producers.entry(q.as_str()).or_default() += 1;
            }
        }
    }

    // Create channels. Queues are single-consumer by validation; an edge
    // with exactly one producing process is therefore provably SPSC and gets
    // the lock-free ring (this covers every partition shard queue and every
    // linear pipeline edge). Fan-in edges keep the MPMC queue.
    let mut senders: HashMap<String, QueueSender> = HashMap::new();
    let mut receivers: HashMap<String, QueueReceiver> = HashMap::new();
    for (name, cap) in &queues {
        let n_prod = producers.get(name.as_str()).copied().unwrap_or(0);
        if n_prod == 0 {
            // validate() guarantees such a queue also has no consumer;
            // skip it entirely.
            continue;
        }
        let (tx, rx) = if n_prod == 1 {
            crate::queue::spsc_queue_with_metrics(*cap, metrics.queue(name))
        } else {
            queue_with_metrics(*cap, n_prod, metrics.queue(name))
        };
        senders.insert(name.clone(), tx);
        receivers.insert(name.clone(), rx);
    }

    // Materialise process workers.
    let mut workers = Vec::new();
    for p in processes {
        let input = match &p.input {
            Input::Stream(s) => ProcInput::Source(
                sources.remove(s).expect("validated: source exists and is unique"),
            ),
            Input::Queue(q) => ProcInput::Queue(
                receivers.remove(q).expect("validated: queue exists with one consumer"),
            ),
        };
        let outputs: Vec<ProcOutput> = p
            .outputs
            .into_iter()
            .map(|o| match o {
                Output::Queue(q) => {
                    // An SPSC sender is single-owner: hand the worker the
                    // original handle instead of a clone (its sole producer
                    // is exactly this process).
                    if senders.get(&q).expect("validated").is_spsc() {
                        ProcOutput::Queue(senders.remove(&q).expect("validated"))
                    } else {
                        ProcOutput::Queue(senders.get(&q).expect("validated").clone())
                    }
                }
                Output::Sink(s) => ProcOutput::Sink(s),
                Output::Discard => ProcOutput::Discard,
            })
            .collect();
        let mut factories = p.factories;
        factories.resize(p.processors.len(), None);
        let log_inputs =
            matches!(p.fault_policy, FaultPolicy::Restart { from_checkpoint: true, .. });
        // From-checkpoint restart truncates the replay log only at barriers,
        // so a zero cadence would let the log grow with the stream. Arm a
        // default cadence rather than silently keeping every input alive.
        let checkpoint_every = if log_inputs && p.checkpoint_every == 0 {
            DEFAULT_RESTART_CADENCE
        } else {
            p.checkpoint_every
        };
        workers.push(Worker {
            stage: metrics.stage(&p.name),
            ctx: Context::new(services.clone(), &p.name),
            name: p.name,
            input,
            chain: p.processors,
            outputs,
            policy: p.fault_policy,
            consecutive_faults: 0,
            batch_size: p.batch_size,
            dispatch: if p.shard_dispatch {
                Dispatch::Shard {
                    keys: p.partition_keys.into(),
                    hints: p.partition_hints.into(),
                    since_wm: 0,
                    next_wm: 0,
                }
            } else {
                Dispatch::Broadcast
            },
            plan_buf: Vec::new(),
            factories,
            checkpoint_every,
            store: store.clone(),
            consumed_pos: 0,
            since_ckpt: 0,
            replay_log: VecDeque::new(),
            restarts_done: 0,
            log_inputs,
            entry_item: None,
        });
    }
    // Drop the construction-time sender clones so queues can disconnect.
    drop(senders);
    Ok(workers)
}

pub(crate) struct Worker {
    pub(crate) name: String,
    pub(crate) input: ProcInput,
    pub(crate) chain: Vec<Box<dyn Processor>>,
    pub(crate) outputs: Vec<ProcOutput>,
    pub(crate) ctx: Context,
    pub(crate) stage: Arc<StageMetrics>,
    pub(crate) policy: FaultPolicy,
    pub(crate) consecutive_faults: usize,
    pub(crate) batch_size: usize,
    pub(crate) dispatch: Dispatch,
    /// Reused dispatch-plan buffer: the per-item hot path plans into this
    /// instead of allocating a fresh `Vec` per survivor.
    pub(crate) plan_buf: Vec<(usize, DataItem)>,
    /// One optional rebuild factory per chain slot (the restart supervisor
    /// needs every slot rebuildable).
    pub(crate) factories: Vec<Option<SharedProcessorFactory>>,
    /// Checkpoint barrier cadence in consumed items; 0 disables barriers.
    pub(crate) checkpoint_every: usize,
    /// Shared store the barriers write to and recovery reads from.
    pub(crate) store: CheckpointStore,
    /// Items fully applied from the input edge (the checkpoint position).
    pub(crate) consumed_pos: u64,
    /// Items consumed since the last barrier.
    pub(crate) since_ckpt: usize,
    /// Items consumed since the last barrier, kept for recovery replay
    /// (clones are `Arc` bumps). Only populated under
    /// `Restart { from_checkpoint: true }`.
    pub(crate) replay_log: VecDeque<DataItem>,
    /// Lifetime restarts performed (bounded by `Restart::max`).
    pub(crate) restarts_done: usize,
    /// Whether the policy requires the replay log.
    pub(crate) log_inputs: bool,
    /// The current input item as it entered chain slot 0, so a restart can
    /// re-run it through the *whole* recovered chain. `None` outside the
    /// per-item phase (e.g. during the finish flush).
    pub(crate) entry_item: Option<DataItem>,
}

impl Worker {
    fn run(mut self) -> Result<(String, u64, u64), StreamsError> {
        let result = self.pump();
        // Always propagate end-of-stream so downstream processes terminate,
        // even if this process failed.
        for o in &mut self.outputs {
            match o {
                ProcOutput::Queue(tx) => tx.finish(),
                ProcOutput::Sink(s) => s.flush()?,
                ProcOutput::Discard => {}
            }
        }
        result.map(|(consumed, emitted)| (self.name, consumed, emitted))
    }

    fn pump(&mut self) -> Result<(u64, u64), StreamsError> {
        let mut consumed = 0u64;
        let mut emitted = 0u64;
        // Batching never adds latency: `recv_batch` drains what is already
        // available in a queue without waiting for the batch to fill, and a
        // source's `next_batch` defaults to a single `next_item` pull unless
        // the source itself (pre-materialised data, e.g. `VecSource`) can
        // hand over a batch without holding earlier items back.
        let batched = self.batch_size > 1;
        if !batched {
            // Per-item path: one lock round-trip per item, kept verbatim so
            // the default `batch_size(1)` is bit-identical to the pre-batch
            // runtime (including metrics: no batch-size samples).
            loop {
                let next = match &mut self.input {
                    ProcInput::Source(s) => s.next_item()?,
                    ProcInput::Queue(q) => q.recv(),
                };
                let Some(item) = next else { break };
                consumed += 1;
                if let Some(out) = self.process_input(item)? {
                    emitted += 1;
                    self.stage.items_out.inc();
                    self.dispatch_emit(out)?;
                }
            }
        } else {
            // Batched path: drain up to `batch_size` items per queue lock,
            // process them one at a time (identical results), forward the
            // survivors of each input batch in one batched send. Shard
            // dispatch buckets the plan per output first — bucketing keeps
            // each queue's sub-sequence in plan order, so per-queue FIFO
            // (and with it merge determinism) is untouched.
            let batch_size = self.batch_size;
            let mut buckets: Vec<Vec<DataItem>> = Vec::new();
            if matches!(self.dispatch, Dispatch::Shard { .. }) {
                buckets = (0..self.outputs.len()).map(|_| Vec::new()).collect();
            }
            let mut src_buf: Vec<DataItem> = Vec::new();
            loop {
                let next = match &mut self.input {
                    ProcInput::Source(s) => {
                        src_buf.clear();
                        if s.next_batch(batch_size, &mut src_buf)? == 0 {
                            None
                        } else {
                            Some(std::mem::take(&mut src_buf))
                        }
                    }
                    ProcInput::Queue(q) => q.recv_batch(batch_size),
                };
                let Some(items) = next else { break };
                let mut survivors = Vec::with_capacity(items.len());
                for item in items {
                    consumed += 1;
                    if let Some(out) = self.process_input(item)? {
                        emitted += 1;
                        self.stage.items_out.inc();
                        survivors.push(out);
                    }
                }
                if survivors.is_empty() {
                    continue;
                }
                if matches!(self.dispatch, Dispatch::Broadcast) {
                    emit_batch(&mut self.outputs, survivors)?;
                } else {
                    let n_outputs = self.outputs.len();
                    self.plan_buf.clear();
                    for item in survivors {
                        self.dispatch.plan_into(n_outputs, item, &mut self.plan_buf);
                    }
                    for (idx, it) in self.plan_buf.drain(..) {
                        buckets[idx].push(it);
                    }
                    for (idx, bucket) in buckets.iter_mut().enumerate() {
                        if !bucket.is_empty() {
                            deliver_batch(&mut self.outputs[idx], std::mem::take(bucket))?;
                        }
                    }
                }
            }
        }
        // Flush processor chain: finish() items of processor i traverse the
        // rest of the chain. From here on a restart must not re-run the last
        // consumed item — trailing items re-enter the chain mid-way instead.
        self.entry_item = None;
        for i in 0..self.chain.len() {
            let started = Instant::now();
            let trailing = self.run_finish(i);
            self.stage.process_ns.record(started.elapsed());
            for item in trailing? {
                if let Some(out) = self.run_chain(i + 1, item)? {
                    emitted += 1;
                    self.stage.items_out.inc();
                    self.dispatch_emit(out)?;
                }
            }
        }
        Ok((consumed, emitted))
    }

    /// Delivers one chain survivor according to this worker's [`Dispatch`]:
    /// broadcast to every output, or (on a synthesized partitioner) routed to
    /// the output its shard stamp names, with periodic watermark broadcasts.
    fn dispatch_emit(&mut self, item: DataItem) -> Result<(), StreamsError> {
        if matches!(self.dispatch, Dispatch::Broadcast) {
            return emit(&mut self.outputs, item);
        }
        self.plan_buf.clear();
        self.dispatch.plan_into(self.outputs.len(), item, &mut self.plan_buf);
        for (idx, it) in self.plan_buf.drain(..) {
            deliver(&mut self.outputs[idx], it)?;
        }
        Ok(())
    }

    /// Consumes one input item: counts it, runs it through the chain under
    /// the fault policy, then advances the checkpoint bookkeeping (position,
    /// replay log, barrier). Shared by the threaded pump (per-item and
    /// batched paths) and the replay scheduler's step worker, so recovery
    /// semantics are identical under both runtimes.
    pub(crate) fn process_input(
        &mut self,
        item: DataItem,
    ) -> Result<Option<DataItem>, StreamsError> {
        self.stage.items_in.inc();
        if matches!(self.policy, FaultPolicy::Restart { .. }) {
            self.entry_item = Some(item.clone());
        }
        let started = Instant::now();
        let out = self.run_chain(0, item);
        self.stage.process_ns.record(started.elapsed());
        let out = out?;
        self.consumed_pos += 1;
        if self.log_inputs {
            // The chain succeeded, so the entry item's only remaining use is
            // the replay log — move it instead of cloning (the next input
            // re-arms it before anything can fault).
            let logged = self.entry_item.take().expect("Restart keeps the entry item");
            self.replay_log.push_back(logged);
        }
        self.maybe_checkpoint()?;
        Ok(out)
    }

    /// Takes a checkpoint barrier when the cadence is due. On a sharding
    /// partitioner the barrier is deferred until the dispatch sits exactly on
    /// a watermark broadcast, so a restored partitioner and its merge agree
    /// on the settled frontier (the barrier/watermark alignment rule).
    fn maybe_checkpoint(&mut self) -> Result<(), StreamsError> {
        if self.checkpoint_every == 0 {
            return Ok(());
        }
        self.since_ckpt += 1;
        if self.since_ckpt < self.checkpoint_every {
            return Ok(());
        }
        if let Dispatch::Shard { since_wm, .. } = &self.dispatch {
            if *since_wm != 0 {
                return Ok(()); // deferred: retried on the next item
            }
        }
        self.take_checkpoint()
    }

    /// Snapshots every checkpointable chain slot at the current position and
    /// truncates the replay log — items before the barrier are covered by the
    /// stored state and never need replaying again.
    fn take_checkpoint(&mut self) -> Result<(), StreamsError> {
        let mut any = false;
        for i in 0..self.chain.len() {
            if let Some(c) = self.chain[i].as_checkpointable() {
                let blob = c.snapshot();
                self.store.put(&self.name, i, Checkpoint { position: self.consumed_pos, blob })?;
                any = true;
            }
        }
        if any {
            self.stage.checkpoints.inc();
        }
        self.replay_log.clear();
        self.since_ckpt = 0;
        Ok(())
    }

    /// Rebuilds the whole chain from its factories and — under
    /// `from_checkpoint` — restores the latest checkpoints and silently
    /// replays the logged items. Their outputs were already emitted before
    /// the fault and processors are deterministic, so the regenerated outputs
    /// are discarded; what matters is that the replayed state catches up to
    /// the exact pre-fault position. A fault *during* replay escalates: the
    /// state can no longer be trusted.
    fn recover(&mut self, from_checkpoint: bool) -> Result<(), StreamsError> {
        for (i, factory) in self.factories.iter().enumerate() {
            match factory {
                Some(make) => self.chain[i] = make(),
                None => {
                    return Err(StreamsError::ProcessorFailed {
                        process: self.name.clone(),
                        processor: Some(i),
                        message: "restart requires a processor_factory for every chain slot".into(),
                    })
                }
            }
        }
        if !from_checkpoint {
            self.replay_log.clear();
            return Ok(());
        }
        for i in 0..self.chain.len() {
            let Some(cp) = self.store.latest(&self.name, i) else { continue };
            if let Some(c) = self.chain[i].as_checkpointable() {
                c.restore(&cp.blob)?;
            }
        }
        for k in 0..self.replay_log.len() {
            self.stage.replayed_items.inc();
            let mut cur = self.replay_log[k].clone();
            for i in 0..self.chain.len() {
                match invoke(&mut self.chain[i], cur, &mut self.ctx, &self.name, i) {
                    Ok(Some(next)) => cur = next,
                    Ok(None) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Re-runs an item through the recovered chain without recursing into the
    /// fault policy: an error is returned to the restart loop, which decides
    /// whether the budget allows another recovery.
    fn rerun_after_recovery(
        &mut self,
        from: usize,
        item: DataItem,
    ) -> Result<Option<DataItem>, StreamsError> {
        let mut cur = item;
        for i in from..self.chain.len() {
            match invoke(&mut self.chain[i], cur, &mut self.ctx, &self.name, i) {
                Ok(Some(next)) => cur = next,
                Ok(None) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
        Ok(Some(cur))
    }

    /// Before a retry re-invokes a stateful processor, roll it back to its
    /// last checkpoint — *iff* that checkpoint covers exactly the current
    /// position (i.e. it was taken after the previous item; with
    /// `checkpoint_every(1)` that is always true). A stale checkpoint would
    /// silently lose the state applied since the barrier, which is worse than
    /// retrying on the partially-applied state, so it is left alone.
    fn restore_for_retry(&mut self, i: usize) {
        let Some(cp) = self.store.latest(&self.name, i) else { return };
        if cp.position != self.consumed_pos {
            return;
        }
        if let Some(c) = self.chain[i].as_checkpointable() {
            if c.restore(&cp.blob).is_ok() {
                self.stage.restores.inc();
            }
        }
    }

    /// Runs `item` through the chain from processor `from` under the fault
    /// policy. `Ok(None)` covers both a filtering processor and a faulted
    /// item the policy dropped (skipped or dead-lettered).
    pub(crate) fn run_chain(
        &mut self,
        from: usize,
        item: DataItem,
    ) -> Result<Option<DataItem>, StreamsError> {
        // Preserve the item as it entered each processor so Retry can re-run
        // it and DeadLetter can record it; FailFast skips the clone tax.
        let preserve = !matches!(self.policy, FaultPolicy::FailFast);
        let mut cur = item;
        for i in from..self.chain.len() {
            let entered = preserve.then(|| cur.clone());
            match invoke(&mut self.chain[i], cur, &mut self.ctx, &self.name, i) {
                Ok(Some(next)) => cur = next,
                Ok(None) => {
                    self.consecutive_faults = 0;
                    return Ok(None);
                }
                Err(e) => return self.on_fault(i, entered, e),
            }
        }
        self.consecutive_faults = 0;
        Ok(Some(cur))
    }

    /// Applies the fault policy to a failed invocation of processor `i`.
    /// `entered` is the item as it entered that processor (`None` under
    /// `FailFast`, which never needs it, and for `finish` faults).
    fn on_fault(
        &mut self,
        i: usize,
        entered: Option<DataItem>,
        error: StreamsError,
    ) -> Result<Option<DataItem>, StreamsError> {
        self.record_fault(&error);
        match self.policy.clone() {
            FaultPolicy::FailFast => Err(error),
            FaultPolicy::Skip { max_consecutive } => {
                self.consecutive_faults += 1;
                if self.consecutive_faults > max_consecutive {
                    return Err(error);
                }
                self.stage.skipped.inc();
                Ok(None)
            }
            FaultPolicy::Retry { attempts, backoff } => {
                let mut last = error;
                for attempt in 1..=attempts {
                    if !backoff.is_zero() {
                        thread::sleep(backoff * attempt as u32);
                    }
                    self.stage.retries.inc();
                    // Roll a checkpointable processor back to its barrier
                    // state so the retry does not double-apply the mutations
                    // of the failed attempt (see the `Processor` state
                    // contract).
                    self.restore_for_retry(i);
                    let again = entered.clone().expect("Retry preserves the input item");
                    match invoke(&mut self.chain[i], again, &mut self.ctx, &self.name, i) {
                        Ok(Some(next)) => {
                            self.consecutive_faults = 0;
                            return self.run_chain(i + 1, next);
                        }
                        Ok(None) => {
                            self.consecutive_faults = 0;
                            return Ok(None);
                        }
                        Err(e) => {
                            self.record_fault(&e);
                            last = e;
                        }
                    }
                }
                Err(last)
            }
            FaultPolicy::DeadLetter { queue } => {
                self.dead_letter(&queue, Some(i), entered, error);
                Ok(None)
            }
            FaultPolicy::Restart { max, from_checkpoint } => {
                // Recovery rebuilds the WHOLE chain to the state before the
                // current input item entered slot 0, so a per-item fault
                // re-runs that item from the top — re-invoking at slot `i`
                // would skip the rebuilt earlier slots. Trailing (finish
                // flush) items have no entry item and re-enter where they
                // faulted.
                let mut last = error;
                loop {
                    if self.restarts_done >= max {
                        return Err(last);
                    }
                    self.restarts_done += 1;
                    self.stage.restores.inc();
                    let started = Instant::now();
                    self.recover(from_checkpoint)?;
                    self.stage.recovery_ns.add(started.elapsed().as_nanos() as u64);
                    let (from, again) = match self.entry_item.clone() {
                        Some(item) => (0, item),
                        None => (i, entered.clone().expect("Restart preserves the input item")),
                    };
                    match self.rerun_after_recovery(from, again) {
                        Ok(out) => {
                            self.consecutive_faults = 0;
                            return Ok(out);
                        }
                        Err(e) => {
                            self.record_fault(&e);
                            last = e;
                        }
                    }
                }
            }
        }
    }

    /// Supervised `finish` of processor `i`; a fault during the flush phase
    /// has no input item, so Skip/DeadLetter drop the trailing items.
    pub(crate) fn run_finish(&mut self, i: usize) -> Result<Vec<DataItem>, StreamsError> {
        match invoke_finish(&mut self.chain[i], &mut self.ctx, &self.name, i) {
            Ok(trailing) => {
                self.consecutive_faults = 0;
                Ok(trailing)
            }
            Err(error) => {
                self.record_fault(&error);
                match self.policy.clone() {
                    FaultPolicy::FailFast => Err(error),
                    FaultPolicy::Skip { max_consecutive } => {
                        self.consecutive_faults += 1;
                        if self.consecutive_faults > max_consecutive {
                            return Err(error);
                        }
                        Ok(Vec::new())
                    }
                    FaultPolicy::Retry { attempts, backoff } => {
                        let mut last = error;
                        for attempt in 1..=attempts {
                            if !backoff.is_zero() {
                                thread::sleep(backoff * attempt as u32);
                            }
                            self.stage.retries.inc();
                            match invoke_finish(&mut self.chain[i], &mut self.ctx, &self.name, i) {
                                Ok(trailing) => {
                                    self.consecutive_faults = 0;
                                    return Ok(trailing);
                                }
                                Err(e) => {
                                    self.record_fault(&e);
                                    last = e;
                                }
                            }
                        }
                        Err(last)
                    }
                    FaultPolicy::DeadLetter { queue } => {
                        self.dead_letter(&queue, Some(i), None, error);
                        Ok(Vec::new())
                    }
                    FaultPolicy::Restart { max, from_checkpoint } => {
                        // Recover the chain, then re-run only this slot's
                        // finish: earlier slots already flushed. Chains with
                        // a single stateful slot (the supported shape) lose
                        // nothing; the recovered state includes every
                        // consumed item.
                        let mut last = error;
                        loop {
                            if self.restarts_done >= max {
                                return Err(last);
                            }
                            self.restarts_done += 1;
                            self.stage.restores.inc();
                            let started = Instant::now();
                            self.recover(from_checkpoint)?;
                            self.stage.recovery_ns.add(started.elapsed().as_nanos() as u64);
                            match invoke_finish(&mut self.chain[i], &mut self.ctx, &self.name, i) {
                                Ok(trailing) => {
                                    self.consecutive_faults = 0;
                                    return Ok(trailing);
                                }
                                Err(e) => {
                                    self.record_fault(&e);
                                    last = e;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn record_fault(&self, error: &StreamsError) {
        self.stage.faults.inc();
        if matches!(error, StreamsError::ProcessorPanicked { .. }) {
            self.stage.panics.inc();
        }
    }

    fn dead_letter(
        &self,
        queue: &DeadLetterQueue,
        processor: Option<usize>,
        item: Option<DataItem>,
        error: StreamsError,
    ) {
        self.stage.dead_letters.inc();
        queue.push(DeadLetterRecord { process: self.name.clone(), processor, item, error });
    }
}

fn wrap(process: &str, processor: usize, e: StreamsError) -> StreamsError {
    match e {
        StreamsError::ProcessorFailed { .. } | StreamsError::ProcessorPanicked { .. } => e,
        other => StreamsError::ProcessorFailed {
            process: process.to_string(),
            processor: Some(processor),
            message: other.to_string(),
        },
    }
}

/// Renders a caught panic payload (`&str`/`String` survive verbatim).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One supervised `process` call: panics are isolated via `catch_unwind` and
/// surfaced as [`StreamsError::ProcessorPanicked`].
fn invoke(
    p: &mut Box<dyn Processor>,
    item: DataItem,
    ctx: &mut Context,
    process: &str,
    index: usize,
) -> Result<Option<DataItem>, StreamsError> {
    match catch_unwind(AssertUnwindSafe(|| p.process(item, ctx))) {
        Ok(result) => result.map_err(|e| wrap(process, index, e)),
        Err(payload) => Err(StreamsError::ProcessorPanicked {
            process: process.to_string(),
            payload: panic_message(payload),
        }),
    }
}

/// One supervised `finish` call (see [`invoke`]).
fn invoke_finish(
    p: &mut Box<dyn Processor>,
    ctx: &mut Context,
    process: &str,
    index: usize,
) -> Result<Vec<DataItem>, StreamsError> {
    match catch_unwind(AssertUnwindSafe(|| p.finish(ctx))) {
        Ok(result) => result.map_err(|e| wrap(process, index, e)),
        Err(payload) => Err(StreamsError::ProcessorPanicked {
            process: process.to_string(),
            payload: panic_message(payload),
        }),
    }
}

fn deliver(output: &mut ProcOutput, item: DataItem) -> Result<(), StreamsError> {
    match output {
        ProcOutput::Queue(tx) => {
            tx.send(item);
        }
        ProcOutput::Sink(s) => s.write_item(item)?,
        ProcOutput::Discard => {}
    }
    Ok(())
}

fn emit(outputs: &mut [ProcOutput], item: DataItem) -> Result<(), StreamsError> {
    let Some(last) = outputs.len().checked_sub(1) else { return Ok(()) };
    for o in &mut outputs[..last] {
        deliver(o, item.clone())?;
    }
    deliver(&mut outputs[last], item)
}

fn deliver_batch(output: &mut ProcOutput, items: Vec<DataItem>) -> Result<(), StreamsError> {
    match output {
        ProcOutput::Queue(tx) => {
            tx.send_batch(items);
        }
        ProcOutput::Sink(s) => {
            for item in items {
                s.write_item(item)?;
            }
        }
        ProcOutput::Discard => {}
    }
    Ok(())
}

fn emit_batch(outputs: &mut [ProcOutput], items: Vec<DataItem>) -> Result<(), StreamsError> {
    let Some(last) = outputs.len().checked_sub(1) else { return Ok(()) };
    for o in &mut outputs[..last] {
        deliver_batch(o, items.clone())?;
    }
    deliver_batch(&mut outputs[last], items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::DataItem;
    use crate::processor::FnProcessor;
    use crate::sink::{CollectSink, CountSink};
    use crate::source::VecSource;

    fn numbers(n: i64) -> VecSource {
        VecSource::new((0..n).map(|i| DataItem::new().with("n", i)))
    }

    #[test]
    fn linear_pipeline_runs() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(100));
        t.add_queue("q", 8);
        t.process("double")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|mut item: DataItem, _| {
                let n = item.get_i64("n").unwrap();
                item.set("n", n * 2);
                Ok(Some(item))
            }))
            .output(Output::Queue("q".into()))
            .done();
        let sink = CollectSink::shared();
        t.process("collect")
            .input(Input::Queue("q".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let stats = Runtime::new(t).run().unwrap();
        assert_eq!(sink.len(), 100);
        let values: Vec<i64> = sink.items().iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert!(values.contains(&0) && values.contains(&198));
        assert_eq!(stats.per_process["double"], (100, 100));
        assert_eq!(stats.per_process["collect"], (100, 100));
    }

    #[test]
    fn filtering_drops_items() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(10));
        let sink = CountSink::shared();
        t.process("odd-only")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|item: DataItem, _| {
                Ok((item.get_i64("n").unwrap() % 2 == 1).then_some(item))
            }))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        Runtime::new(t).run().unwrap();
        assert_eq!(sink.count(), 5);
    }

    #[test]
    fn fan_in_multiple_producers() {
        let mut t = Topology::new();
        t.add_source("a", numbers(10));
        t.add_source("b", numbers(20));
        t.add_queue("merged", 4);
        t.process("pa")
            .input(Input::Stream("a".into()))
            .output(Output::Queue("merged".into()))
            .done();
        t.process("pb")
            .input(Input::Stream("b".into()))
            .output(Output::Queue("merged".into()))
            .done();
        let sink = CountSink::shared();
        t.process("sum")
            .input(Input::Queue("merged".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        Runtime::new(t).run().unwrap();
        assert_eq!(sink.count(), 30);
    }

    #[test]
    fn fan_out_broadcasts_to_all_outputs() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(5));
        t.add_queue("q1", 4);
        t.add_queue("q2", 4);
        t.process("p")
            .input(Input::Stream("nums".into()))
            .output(Output::Queue("q1".into()))
            .output(Output::Queue("q2".into()))
            .done();
        let s1 = CountSink::shared();
        let s2 = CountSink::shared();
        t.process("c1")
            .input(Input::Queue("q1".into()))
            .output(Output::Sink(Box::new(s1.clone())))
            .done();
        t.process("c2")
            .input(Input::Queue("q2".into()))
            .output(Output::Sink(Box::new(s2.clone())))
            .done();
        Runtime::new(t).run().unwrap();
        assert_eq!(s1.count(), 5);
        assert_eq!(s2.count(), 5);
    }

    #[test]
    fn chained_queues_terminate() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(50));
        t.add_queue("q1", 4);
        t.add_queue("q2", 4);
        t.process("s1")
            .input(Input::Stream("nums".into()))
            .output(Output::Queue("q1".into()))
            .done();
        t.process("s2").input(Input::Queue("q1".into())).output(Output::Queue("q2".into())).done();
        let sink = CountSink::shared();
        t.process("s3")
            .input(Input::Queue("q2".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let stats = Runtime::new(t).run().unwrap();
        assert_eq!(sink.count(), 50);
        assert_eq!(stats.total_consumed(), 150);
    }

    #[test]
    fn processor_error_fails_run_without_deadlock() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(10));
        t.add_queue("q", 4);
        t.process("boom")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|item: DataItem, _| {
                if item.get_i64("n") == Some(3) {
                    Err(StreamsError::ServiceError { detail: "kaput".into() })
                } else {
                    Ok(Some(item))
                }
            }))
            .output(Output::Queue("q".into()))
            .done();
        let sink = CountSink::shared();
        t.process("down")
            .input(Input::Queue("q".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let err = Runtime::new(t).run().unwrap_err();
        assert!(matches!(err, StreamsError::ProcessorFailed { .. }));
        // Downstream received the items before the failure and terminated.
        assert_eq!(sink.count(), 3);
    }

    #[test]
    fn finish_items_flow_through_rest_of_chain() {
        struct Tail;
        impl Processor for Tail {
            fn process(
                &mut self,
                item: DataItem,
                _ctx: &mut Context,
            ) -> Result<Option<DataItem>, StreamsError> {
                Ok(Some(item))
            }
            fn finish(&mut self, _ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
                Ok(vec![DataItem::new().with("summary", true)])
            }
        }
        let mut t = Topology::new();
        t.add_source("nums", numbers(2));
        let sink = CollectSink::shared();
        t.process("p")
            .input(Input::Stream("nums".into()))
            .processor(Tail)
            .processor(FnProcessor::new(|mut item: DataItem, _| {
                item.set("tagged", true);
                Ok(Some(item))
            }))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        Runtime::new(t).run().unwrap();
        let items = sink.items();
        assert_eq!(items.len(), 3);
        let summary = items.iter().find(|i| i.contains("summary")).unwrap();
        assert_eq!(summary.get_bool("tagged"), Some(true), "finish items traverse the rest");
    }

    #[test]
    fn metrics_record_stage_flow_and_queue_traffic() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(100));
        t.add_queue("q", 8);
        t.process("halve")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|item: DataItem, _| {
                Ok((item.get_i64("n").unwrap() % 2 == 0).then_some(item))
            }))
            .output(Output::Queue("q".into()))
            .done();
        let sink = CountSink::shared();
        t.process("collect")
            .input(Input::Queue("q".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let rt = Runtime::new(t);
        let metrics = rt.metrics();
        rt.run().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.stages["halve"].items_in, 100);
        assert_eq!(snap.stages["halve"].items_out, 50);
        assert!(snap.stages["halve"].process_ns.count >= 100, "every call timed");
        assert_eq!(snap.stages["collect"].items_in, 50);
        assert_eq!(snap.queues["q"].sent, 50);
        assert_eq!(snap.queues["q"].received, 50);
        assert_eq!(snap.queues["q"].depth, 0, "queue fully drained");
        assert!(snap.queues["q"].depth_high_water >= 1);
    }

    #[test]
    fn metrics_registry_is_exposed_as_a_service() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(3));
        let sink = CountSink::shared();
        t.process("p")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|item: DataItem, ctx: &mut Context| {
                let m = ctx.services().get::<MetricsRegistry>("metrics")?;
                m.counter("custom.seen").inc();
                Ok(Some(item))
            }))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let rt = Runtime::new(t);
        let metrics = rt.metrics();
        rt.run().unwrap();
        assert_eq!(metrics.snapshot().counters["custom.seen"], 3);
    }

    #[test]
    fn batched_pipeline_matches_per_item_results() {
        let build = |batch: usize| {
            let mut t = Topology::new();
            t.add_source("nums", numbers(97));
            t.add_queue("q", 8);
            t.process("halve")
                .input(Input::Stream("nums".into()))
                .processor(FnProcessor::new(|item: DataItem, _| {
                    Ok((item.get_i64("n").unwrap() % 2 == 0).then_some(item))
                }))
                .output(Output::Queue("q".into()))
                .batch_size(batch)
                .done();
            let sink = CollectSink::shared();
            t.process("collect")
                .input(Input::Queue("q".into()))
                .output(Output::Sink(Box::new(sink.clone())))
                .batch_size(batch)
                .done();
            (t, sink)
        };
        let mut outcomes = Vec::new();
        for batch in [1usize, 16] {
            let (t, sink) = build(batch);
            let rt = Runtime::new(t);
            let metrics = rt.metrics();
            let stats = rt.run().unwrap();
            let values: Vec<i64> = sink.items().iter().map(|i| i.get_i64("n").unwrap()).collect();
            let snap = metrics.snapshot();
            assert_eq!(snap.queues["q"].sent, 49);
            assert_eq!(snap.queues["q"].received, 49);
            if batch > 1 {
                let sizes = &snap.queues["q"].batch_sizes;
                assert!(sizes.count > 0, "batched transfers were recorded");
                assert!(sizes.max_ns <= 16, "never exceeds the configured size");
            } else {
                assert_eq!(snap.queues["q"].batch_sizes.count, 0, "default records nothing");
            }
            outcomes.push((values, stats.per_process["halve"], stats.per_process["collect"]));
        }
        assert_eq!(outcomes[0], outcomes[1], "batching never changes results");
    }

    #[test]
    fn invalid_topology_fails_before_spawning() {
        let mut t = Topology::new();
        t.process("a").input(Input::Stream("ghost".into())).output(Output::Discard).done();
        assert!(Runtime::new(t).run().is_err());
    }
}
