//! Interned attribute keys.
//!
//! [`DataItem`](crate::item::DataItem) attribute names are drawn from a small,
//! fixed schema vocabulary (`"bus"`, `"region"`, `"delay"`, …), yet every
//! item used to carry its own heap-allocated `String` per key — cloned on
//! every fan-out, fault-policy snapshot and replay step. [`Key`] applies the
//! same intern-pool technique as `rtec`'s `Symbol`: each distinct key string
//! is leaked exactly once into a process-global arena and the key itself is
//! the `&'static str` borrow of that allocation. Cloning a key is a pointer
//! copy, equality is a pointer compare (interning makes pointers canonical),
//! and ordering keeps full lexicographic semantics — so `BTreeMap<Key, _>`
//! retains the canonical sorted-by-name form items rely on — with a
//! pointer-equality fast path.
//!
//! Unlike `Symbol`, which stores a `u32` index and takes the interner lock on
//! every `as_str`, a `Key` resolves to its text for free; the lock is touched
//! only when *creating* a key from text. Lookups by plain `&str` (via
//! [`Borrow`]) never touch the interner at all.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;
use std::sync::{OnceLock, RwLock};

/// An interned attribute key. Two keys are equal iff they intern the same
/// text; comparison order is the text's lexicographic order.
#[derive(Debug, Clone, Copy)]
pub struct Key(&'static str);

/// FNV-1a. `Key::new` sits on the per-attribute ingest hot path, and the
/// default SipHash dominates it for the short (≤ ~12 byte) schema keys the
/// interner sees. The interner is not exposed to attacker-controlled key
/// sets of meaningful cardinality (the vocabulary is the schema), so the
/// DoS-hardening of SipHash buys nothing here.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
}

type Interner = HashMap<&'static str, &'static str, BuildHasherDefault<Fnv>>;

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

impl Key {
    /// Interns `text` and returns its key.
    ///
    /// The intern arena is append-only and **never freed**: every distinct
    /// string interned here stays allocated for the process lifetime (that is
    /// what makes [`Key::as_str`] a `&'static` borrow). Keys are meant for
    /// the *attribute vocabulary* — the bounded set of names appearing in
    /// item schemas. Avoid interning per-item payload strings of unbounded
    /// cardinality (e.g. ids minted by a live stream) in long-running
    /// pipelines — every distinct string grows the arena forever; such data
    /// belongs in [`Value`](crate::item::Value)s, not keys.
    pub fn new(text: &str) -> Key {
        {
            let guard = interner().read().expect("interner lock poisoned");
            if let Some(&stored) = guard.get(text) {
                return Key(stored);
            }
        }
        let mut guard = interner().write().expect("interner lock poisoned");
        if let Some(&stored) = guard.get(text) {
            return Key(stored);
        }
        // The arena is process-global and append-only, so leaking each
        // distinct string once makes every key a plain pointer.
        let stored: &'static str = Box::leak(text.into());
        guard.insert(stored, stored);
        Key(stored)
    }

    /// Returns the interned text, borrowed from the intern arena.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// A placeholder key for dead storage slots (the flat attribute map's
    /// unused inline capacity). Placeholders bypass the interner, so they
    /// must never be compared against live keys — the map guarantees that by
    /// only exposing its populated prefix.
    pub(crate) const fn placeholder() -> Key {
        Key("")
    }
}

// Interning canonicalises the pointer: equal text ⇔ equal address.
impl PartialEq for Key {
    fn eq(&self, other: &Key) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Key) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Key) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

// Hash the text (not the pointer) so that `Key` and `str` stay interchangeable
// under the `Borrow` contract in hashed containers too.
impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

/// Lets `BTreeMap<Key, _>` be probed with a plain `&str` without interning
/// the probe string (only insertion interns).
impl Borrow<str> for Key {
    fn borrow(&self) -> &str {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key::new(s)
    }
}
impl From<&String> for Key {
    fn from(s: &String) -> Key {
        Key::new(s)
    }
}
impl From<String> for Key {
    fn from(s: String) -> Key {
        Key::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::BTreeMap;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn keys_intern_identically() {
        let a = Key::new("region");
        let b = Key::new("region");
        let c = Key::new("delay");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "region");
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "interning canonicalises the pointer");
    }

    #[test]
    fn order_is_lexicographic() {
        let mut keys = [Key::new("z"), Key::new("a"), Key::new("m")];
        keys.sort();
        let names: Vec<&str> = keys.iter().map(Key::as_str).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn borrow_contract_holds() {
        // Eq/Ord/Hash must agree between `Key` and the borrowed `str`.
        let k = Key::new("bus");
        assert_eq!(<Key as Borrow<str>>::borrow(&k), "bus");
        assert_eq!(hash_of(&k), hash_of("bus"));
        let map: BTreeMap<Key, i64> = [(Key::new("bus"), 1), (Key::new("line"), 2)].into();
        assert_eq!(map.get("bus"), Some(&1));
        assert_eq!(map.get("nope"), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..100 {
                        Key::new(&format!("k{}", (i * j) % 50));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for j in 0..50 {
            let s = format!("k{j}");
            assert_eq!(Key::new(&s), Key::new(&s));
        }
    }
}
