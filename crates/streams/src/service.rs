//! Services: named, shared function sets.
//!
//! The Streams framework allows the specification of *services* — sets of
//! functions accessible throughout the stream processing application. The
//! traffic-modelling component of the paper, for instance, is wrapped as a
//! Streams service that any processor can call to obtain congestion
//! estimates.
//!
//! Services are registered under a name and retrieved by downcasting, so a
//! processor asks for exactly the concrete service type it expects.

use crate::error::StreamsError;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Marker trait for service implementations.
///
/// Services are shared across process threads, hence `Send + Sync`.
pub trait Service: Send + Sync + 'static {}

/// A registry of named services, shared by all processes of a topology.
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<dyn Any + Send + Sync>>>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers `service` under `name`, replacing any previous registration.
    pub fn register<S: Service>(&self, name: &str, service: S) {
        self.register_arc(name, Arc::new(service));
    }

    /// Registers an already shared service.
    pub fn register_arc<S: Service>(&self, name: &str, service: Arc<S>) {
        self.inner.write().unwrap().insert(name.to_string(), service);
    }

    /// Retrieves the service registered under `name` as concrete type `S`.
    pub fn get<S: Service>(&self, name: &str) -> Result<Arc<S>, StreamsError> {
        let service = {
            let guard = self.inner.read().unwrap();
            Arc::clone(guard.get(name).ok_or_else(|| StreamsError::ServiceError {
                detail: format!("no service registered under `{name}`"),
            })?)
        };
        service.downcast::<S>().map_err(|_| StreamsError::ServiceError {
            detail: format!("service `{name}` has a different concrete type"),
        })
    }

    /// Names of all registered services, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Whether a service is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().unwrap().contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Adder {
        offset: i64,
    }
    impl Adder {
        fn add(&self, x: i64) -> i64 {
            x + self.offset
        }
    }
    impl Service for Adder {}

    struct Other;
    impl Service for Other {}

    #[test]
    fn register_and_typed_get() {
        let reg = ServiceRegistry::new();
        reg.register("adder", Adder { offset: 10 });
        let svc = reg.get::<Adder>("adder").unwrap();
        assert_eq!(svc.add(5), 15);
    }

    #[test]
    fn missing_service() {
        let reg = ServiceRegistry::new();
        assert!(reg.get::<Adder>("nope").is_err());
    }

    #[test]
    fn wrong_type_is_error() {
        let reg = ServiceRegistry::new();
        reg.register("svc", Other);
        assert!(reg.get::<Adder>("svc").is_err());
    }

    #[test]
    fn shared_across_clones_and_arc_registration() {
        let reg = ServiceRegistry::new();
        let reg2 = reg.clone();
        let adder = Arc::new(Adder { offset: 1 });
        reg.register_arc("adder", Arc::clone(&adder));
        assert!(reg2.contains("adder"));
        assert_eq!(reg2.names(), vec!["adder".to_string()]);
        assert_eq!(reg2.get::<Adder>("adder").unwrap().add(1), 2);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceRegistry>();
    }
}
