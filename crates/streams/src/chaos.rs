//! Deterministic fault injection for robustness testing.
//!
//! The paper's inputs misbehave in predictable ways — sensors drop readings,
//! bus GPS arrives late, out of order or corrupted (§3) — and this module
//! reproduces those failure modes *on demand and deterministically*, so a
//! test or CI smoke-run can assert that a topology under a given
//! [`FaultPolicy`](crate::fault::FaultPolicy) still produces correct output.
//! All randomness comes from the seeded workspace `rand` shim
//! (xoshiro256++), so the same [`ChaosConfig`] always injects the same
//! faults at the same positions.
//!
//! Two injection points:
//!
//! * [`ChaosSource`] wraps any [`Source`] and applies *stream-level* chaos:
//!   drop, duplicate, delay/reorder, corrupt.
//! * [`ChaosInjector`] is a [`Processor`] slotted into a chain to apply
//!   *processor-level* chaos: drop, corrupt, error, panic — the latter two
//!   exercising the runtime's supervision layer.
//!
//! [`PanicEvery`] is the deterministic counterpart for regression tests
//! ("panics on every Nth item").

use crate::error::StreamsError;
use crate::item::DataItem;
use crate::metrics::Counter;
use crate::processor::{Context, Processor};
use crate::source::Source;
use rand::{Rng, SeedableRng, StdRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// The value a corrupted field is scrambled to (U+FFFD makes the damage
/// obvious in dumps and reliably breaks numeric schema expectations).
pub const CORRUPTED_VALUE: &str = "\u{fffd}chaos";

/// Injection rates and determinism seed shared by [`ChaosSource`] and
/// [`ChaosInjector`]. All rates are probabilities in `[0, 1]`; a
/// default-constructed config injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Probability an item is silently dropped.
    pub drop_rate: f64,
    /// Probability an item is emitted twice (source only).
    pub duplicate_rate: f64,
    /// Probability an item is held back and re-emitted later, i.e. delivered
    /// out of order (source only).
    pub delay_rate: f64,
    /// Maximum number of subsequent items a delayed item is held behind
    /// (at least 1 when `delay_rate > 0`).
    pub delay_max: usize,
    /// Probability one field of the item is scrambled to [`CORRUPTED_VALUE`].
    pub corrupt_rate: f64,
    /// Probability the processor returns an error (injector only).
    pub error_rate: f64,
    /// Probability the processor panics (injector only).
    pub panic_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            delay_max: 4,
            corrupt_rate: 0.0,
            error_rate: 0.0,
            panic_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// A config that injects nothing, with the given seed.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, ..ChaosConfig::default() }
    }
}

/// Counters of injected faults (shared: clone the `Arc` handle before the
/// run, read after).
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Items silently dropped.
    pub dropped: Counter,
    /// Items emitted twice.
    pub duplicated: Counter,
    /// Items delivered out of order.
    pub delayed: Counter,
    /// Items with one scrambled field.
    pub corrupted: Counter,
    /// Injected processor errors.
    pub errors: Counter,
    /// Injected processor panics.
    pub panics: Counter,
}

fn corrupt(item: &mut DataItem, rng: &mut StdRng) {
    if item.is_empty() {
        return;
    }
    let idx = rng.random_range(0..item.len());
    let key = item.iter().nth(idx).map(|(k, _)| k.to_string()).expect("index in range");
    item.set(key, CORRUPTED_VALUE);
}

/// A [`Source`] adapter injecting stream-level chaos (drop, duplicate,
/// delay/reorder, corrupt) at the configured rates, deterministically.
pub struct ChaosSource {
    inner: Box<dyn Source>,
    cfg: ChaosConfig,
    rng: StdRng,
    stats: Arc<ChaosStats>,
    /// Items ready to emit (matured delays, duplicates).
    ready: VecDeque<DataItem>,
    /// Held-back items with the number of pulls they still sit out.
    delayed: Vec<(usize, DataItem)>,
    exhausted: bool,
}

impl ChaosSource {
    /// Wraps `inner` with the given chaos config.
    pub fn new<S: Source + 'static>(inner: S, cfg: ChaosConfig) -> ChaosSource {
        ChaosSource {
            inner: Box::new(inner),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            stats: Arc::new(ChaosStats::default()),
            ready: VecDeque::new(),
            delayed: Vec::new(),
            exhausted: false,
        }
    }

    /// Handle to the injection counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }

    /// Ages held-back items by one pull; matured ones become ready.
    fn tick_delayed(&mut self) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= 1 {
                let (_, item) = self.delayed.remove(i);
                self.ready.push_back(item);
            } else {
                self.delayed[i].0 -= 1;
                i += 1;
            }
        }
    }

    /// Releases every still-delayed item (at end of stream), shortest
    /// remaining hold first so relative delay order is preserved.
    fn flush_delayed(&mut self) {
        self.delayed.sort_by_key(|(hold, _)| *hold);
        for (_, item) in self.delayed.drain(..) {
            self.ready.push_back(item);
        }
    }
}

impl Source for ChaosSource {
    fn next_item(&mut self) -> Result<Option<DataItem>, StreamsError> {
        loop {
            if let Some(item) = self.ready.pop_front() {
                return Ok(Some(item));
            }
            if self.exhausted {
                return Ok(None);
            }
            match self.inner.next_item()? {
                None => {
                    self.exhausted = true;
                    self.flush_delayed();
                }
                Some(mut item) => {
                    self.tick_delayed();
                    if self.rng.random_bool(self.cfg.drop_rate) {
                        self.stats.dropped.inc();
                        continue;
                    }
                    if self.rng.random_bool(self.cfg.corrupt_rate) {
                        corrupt(&mut item, &mut self.rng);
                        self.stats.corrupted.inc();
                    }
                    if self.rng.random_bool(self.cfg.delay_rate) {
                        let hold = self.rng.random_range(1..=self.cfg.delay_max.max(1));
                        self.delayed.push((hold, item));
                        self.stats.delayed.inc();
                        continue;
                    }
                    if self.rng.random_bool(self.cfg.duplicate_rate) {
                        self.ready.push_back(item.clone());
                        self.stats.duplicated.inc();
                    }
                    self.ready.push_back(item);
                }
            }
        }
    }
}

/// A [`Processor`] injecting processor-level chaos: per item it may panic
/// (`panic_rate`), fail (`error_rate`), drop (`drop_rate`) or corrupt one
/// field (`corrupt_rate`); otherwise the item passes through untouched.
/// Panics and errors exercise the process's fault policy.
pub struct ChaosInjector {
    cfg: ChaosConfig,
    rng: StdRng,
    stats: Arc<ChaosStats>,
}

impl ChaosInjector {
    /// An injector with the given chaos config.
    pub fn new(cfg: ChaosConfig) -> ChaosInjector {
        ChaosInjector {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            stats: Arc::new(ChaosStats::default()),
        }
    }

    /// Handle to the injection counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }
}

impl Processor for ChaosInjector {
    fn process(
        &mut self,
        mut item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        if self.rng.random_bool(self.cfg.panic_rate) {
            self.stats.panics.inc();
            panic!("chaos: injected panic");
        }
        if self.rng.random_bool(self.cfg.error_rate) {
            self.stats.errors.inc();
            return Err(StreamsError::ServiceError { detail: "chaos: injected error".into() });
        }
        if self.rng.random_bool(self.cfg.drop_rate) {
            self.stats.dropped.inc();
            return Ok(None);
        }
        if self.rng.random_bool(self.cfg.corrupt_rate) {
            corrupt(&mut item, &mut self.rng);
            self.stats.corrupted.inc();
        }
        Ok(Some(item))
    }
}

/// A [`Processor`] that panics on every `n`-th item it sees — the
/// deterministic fixture for supervision regression tests.
pub struct PanicEvery {
    n: u64,
    seen: u64,
}

impl PanicEvery {
    /// Panics on items number `n`, `2n`, `3n`, ... (1-based).
    ///
    /// # Panics
    /// Panics immediately if `n` is 0.
    pub fn new(n: u64) -> PanicEvery {
        assert!(n > 0, "PanicEvery requires n >= 1");
        PanicEvery { n, seen: 0 }
    }
}

impl Processor for PanicEvery {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        self.seen += 1;
        if self.seen.is_multiple_of(self.n) {
            panic!("chaos: scheduled panic on item {}", self.seen);
        }
        Ok(Some(item))
    }
}

/// Shared one-shot trigger for [`KillAt`]: instances cloned from the same
/// switch (e.g. by a restart factory rebuilding the processor) share the
/// item count and the fired flag, so the kill fires exactly once per run.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch {
    seen: Arc<std::sync::atomic::AtomicU64>,
    fired: Arc<std::sync::atomic::AtomicBool>,
}

impl KillSwitch {
    /// A fresh, un-fired switch.
    pub fn new() -> KillSwitch {
        KillSwitch::default()
    }

    /// Whether the kill has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Items observed across every [`KillAt`] sharing this switch.
    pub fn seen(&self) -> u64 {
        self.seen.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// A [`Processor`] that panics exactly once, when the `at`-th item (1-based)
/// passes through — the injected *kill* for crash-recovery tests. The count
/// and the fired flag live in a shared [`KillSwitch`], so the processor a
/// restart supervisor rebuilds from its factory (holding a clone of the same
/// switch) passes items through: replayed and resumed traffic never re-fires
/// the kill. `at == 0` never fires. The trigger is `>=` rather than `==`, so
/// a kill point landing inside an already-skipped stretch still fires on the
/// next item instead of being missed.
pub struct KillAt {
    at: u64,
    switch: KillSwitch,
}

impl KillAt {
    /// Kills on the `at`-th item (1-based); 0 disables.
    pub fn new(at: u64) -> KillAt {
        KillAt { at, switch: KillSwitch::new() }
    }

    /// A kill sharing an external switch — hand the same switch to the
    /// processor factory so rebuilt instances know the kill already fired.
    pub fn with_switch(at: u64, switch: KillSwitch) -> KillAt {
        KillAt { at, switch }
    }

    /// Handle to the shared trigger state.
    pub fn switch(&self) -> KillSwitch {
        self.switch.clone()
    }
}

impl Processor for KillAt {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        use std::sync::atomic::Ordering;
        if self.at == 0 || self.switch.fired.load(Ordering::SeqCst) {
            return Ok(Some(item));
        }
        let n = self.switch.seen.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= self.at {
            self.switch.fired.store(true, Ordering::SeqCst);
            panic!("chaos: injected kill at item {n}");
        }
        Ok(Some(item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;

    fn numbered(n: i64) -> VecSource {
        VecSource::new((0..n).map(|i| DataItem::new().with("n", i)))
    }

    fn drain(src: &mut ChaosSource) -> Vec<DataItem> {
        let mut out = Vec::new();
        while let Some(item) = src.next_item().unwrap() {
            out.push(item);
        }
        out
    }

    #[test]
    fn zero_rates_are_a_no_op() {
        let mut src = ChaosSource::new(numbered(50), ChaosConfig::new(7));
        let out = drain(&mut src);
        assert_eq!(out.len(), 50);
        let ns: Vec<i64> = out.iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert_eq!(ns, (0..50).collect::<Vec<_>>(), "order untouched");
        let stats = src.stats();
        assert_eq!(stats.dropped.get() + stats.corrupted.get() + stats.delayed.get(), 0);
    }

    #[test]
    fn same_seed_injects_identically() {
        let cfg = ChaosConfig {
            seed: 42,
            drop_rate: 0.1,
            duplicate_rate: 0.1,
            delay_rate: 0.2,
            corrupt_rate: 0.1,
            ..ChaosConfig::default()
        };
        let a = drain(&mut ChaosSource::new(numbered(200), cfg.clone()));
        let b = drain(&mut ChaosSource::new(numbered(200), cfg.clone()));
        assert_eq!(a, b, "identical seeds → identical streams");
        let c = drain(&mut ChaosSource::new(numbered(200), ChaosConfig { seed: 43, ..cfg }));
        assert_ne!(a, c, "different seed → different injection pattern");
    }

    #[test]
    fn drops_duplicates_and_delays_account_for_every_item() {
        let cfg = ChaosConfig {
            seed: 5,
            drop_rate: 0.15,
            duplicate_rate: 0.1,
            delay_rate: 0.25,
            delay_max: 3,
            ..ChaosConfig::default()
        };
        let mut src = ChaosSource::new(numbered(400), cfg);
        let out = drain(&mut src);
        let stats = src.stats();
        assert!(stats.dropped.get() > 0 && stats.duplicated.get() > 0 && stats.delayed.get() > 0);
        assert_eq!(
            out.len() as u64,
            400 - stats.dropped.get() + stats.duplicated.get(),
            "emitted = input - dropped + duplicated (delays only reorder)"
        );
        // Delays reorder but never lose: every surviving value appears.
        let ns: std::collections::BTreeSet<i64> =
            out.iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert!(ns.len() as u64 >= 400 - stats.dropped.get());
    }

    #[test]
    fn corruption_scrambles_one_field() {
        let cfg = ChaosConfig { seed: 9, corrupt_rate: 1.0, ..ChaosConfig::default() };
        let mut src = ChaosSource::new(numbered(10), cfg);
        let out = drain(&mut src);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|i| i.get_str("n") == Some(CORRUPTED_VALUE)));
        assert_eq!(src.stats().corrupted.get(), 10);
    }

    #[test]
    fn injector_is_deterministic_and_counts() {
        let cfg =
            ChaosConfig { seed: 11, drop_rate: 0.2, error_rate: 0.2, ..ChaosConfig::default() };
        let run = |cfg: ChaosConfig| {
            let mut inj = ChaosInjector::new(cfg);
            let stats = inj.stats();
            let mut ctx = Context::new(crate::service::ServiceRegistry::default(), "t");
            let outcomes: Vec<i8> = (0..100)
                .map(|i| match inj.process(DataItem::new().with("n", i as i64), &mut ctx) {
                    Ok(Some(_)) => 0,
                    Ok(None) => 1,
                    Err(_) => 2,
                })
                .collect();
            (outcomes, stats.dropped.get(), stats.errors.get())
        };
        let (a, dropped, errors) = run(cfg.clone());
        let (b, _, _) = run(cfg);
        assert_eq!(a, b);
        assert!(dropped > 0 && errors > 0);
        assert_eq!(a.iter().filter(|&&o| o == 1).count() as u64, dropped);
        assert_eq!(a.iter().filter(|&&o| o == 2).count() as u64, errors);
    }

    #[test]
    fn kill_at_fires_exactly_once_across_rebuilds() {
        let mut k = KillAt::new(3);
        let switch = k.switch();
        let mut ctx = Context::new(crate::service::ServiceRegistry::default(), "t");
        for i in 1..=2u64 {
            assert!(k.process(DataItem::new().with("n", i as i64), &mut ctx).is_ok());
        }
        assert!(!switch.fired());
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k.process(DataItem::new().with("n", 3i64), &mut ctx)
        }));
        assert!(boom.is_err(), "third item kills");
        assert!(switch.fired());
        // A rebuilt instance sharing the switch never re-fires — replayed
        // and resumed traffic passes through.
        let mut rebuilt = KillAt::with_switch(3, switch.clone());
        for i in 1..=10u64 {
            assert!(rebuilt.process(DataItem::new().with("n", i as i64), &mut ctx).is_ok());
        }
        assert_eq!(switch.seen(), 3, "counting stopped at the kill");
    }

    #[test]
    fn panic_every_schedules_exactly() {
        let mut p = PanicEvery::new(3);
        let mut ctx = Context::new(crate::service::ServiceRegistry::default(), "t");
        for i in 1..=10u64 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.process(DataItem::new().with("n", i as i64), &mut ctx)
            }));
            assert_eq!(result.is_err(), i % 3 == 0, "item {i}");
        }
    }
}
