//! Keyed shard parallelism: partition / replicate / merge.
//!
//! A process declared with [`replicas(n)`](crate::topology::ProcessBuilder::replicas)
//! and [`partition_by`](crate::topology::ProcessBuilder::partition_by) is
//! expanded — transparently, inside the runtimes — into an ordinary sub-graph
//! of `n + 2` processes:
//!
//! ```text
//!            ┌─ P[shard:0] ─ P[0] ─┐
//! input ─ P[part] ─ P[shard:1] ─ P[1] ─┼─ P[merge:q] ─ P[merge] ─ outputs
//!            └─ P[shard:2] ─ P[2] ─┘
//! ```
//!
//! * **`P[part]`** ([`PartitionStamp`]) stamps every item with a monotone
//!   sequence number and a shard id (a stable hash of the partition-key
//!   values), and the runtime routes it to exactly that shard's queue.
//! * **`P[0]`‥`P[n-1]`** ([`ReplicaShell`]) each own a private clone of the
//!   processor chain. The shell hides the partition bookkeeping from the user
//!   chain and re-stamps whatever the chain emits.
//! * **`P[merge]`** ([`MergeProcessor`]) restores the *exact* input order: it
//!   buffers per shard and releases the globally smallest sequence number
//!   once every shard is known to be past it.
//!
//! ## Determinism
//!
//! The merge emits data items in strictly increasing sequence order, which
//! *is* the partitioner's input order — independent of thread scheduling and
//! of the shard count. A replicated stage with a stateless chain is therefore
//! byte-identical to the unreplicated stage for any `n`. Items a chain emits
//! from `finish` carry no sequence number; the merge appends them after all
//! sequenced data, grouped by shard index (each shard's trailing items keep
//! their FIFO order), so they too are schedule-independent — but their
//! grouping depends on the shard count, which is why stages with stateful
//! end-of-stream output should be compared in canonical (sorted) form across
//! shard counts.
//!
//! Progress does not depend on luck: sequence numbers of items *filtered*
//! inside a replica never reach the merge, so the partitioner broadcasts a
//! low **watermark** item to every shard every [`WM_EVERY`]` × shards`
//! routed items ("all sequence numbers below `w` are settled"), and each
//! replica forwards it with its shard id attached. The cadence scales with
//! the shard count so the *merge-side* watermark traffic (one forwarded
//! watermark per shard per broadcast) stays a constant fraction of the data
//! traffic — a fixed cadence floods the merge at small shard counts, which
//! is exactly the non-monotonic scaling bug this bounds. A replica that finishes cleanly sends a
//! final **fin** marker releasing its shard entirely. The merge itself never
//! blocks — it always drains its input and buffers internally — so the
//! expanded sub-graph is acyclic and deadlock-free even when watermarks or
//! fin markers are lost to a faulted replica: queue end-of-stream still
//! reaches the merge, whose `finish` drains every buffer in sequence order.
//!
//! ## Reserved attributes
//!
//! The bookkeeping travels *in* the items, in attributes prefixed `__`
//! ([`SEQ_ATTR`], [`SHARD_ATTR`], [`WM_ATTR`], [`FIN_ATTR`],
//! [`FIN_ITEM_ATTR`]). The `__` prefix is reserved: user chains inside a
//! replicated stage never see these attributes (the shell strips them on the
//! way in and re-attaches them on the way out), but items *dead-lettered* by
//! a replica carry them, which is deliberate — the record shows where the
//! item was in the partition protocol.

use crate::checkpoint::{Checkpointable, StateBlob};
use crate::error::StreamsError;
use crate::fault::FaultPolicy;
use crate::item::DataItem;
use crate::processor::{Context, Processor};
use crate::topology::{
    Input, Output, ProcessDef, SharedProcessorFactory, Topology, DEFAULT_QUEUE_CAPACITY,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Monotone per-partitioner sequence number (`i64`).
pub const SEQ_ATTR: &str = "__seq";
/// Shard index the item was routed to / emitted by (`i64`).
pub const SHARD_ATTR: &str = "__shard";
/// Low watermark: all sequence numbers `< value` are settled (`i64`).
pub const WM_ATTR: &str = "__wm";
/// End-of-shard marker sent by a replica that finished cleanly (`bool`).
pub const FIN_ATTR: &str = "__fin";
/// Marks an item emitted by a replica chain's `finish` (no sequence number).
pub const FIN_ITEM_ATTR: &str = "__fin_item";

/// Base watermark cadence: the partitioner broadcasts a watermark to every
/// shard after `WM_EVERY × shards` routed items, bounding how long the merge
/// must buffer past sequence numbers whose items were filtered inside a
/// replica. Scaling by the shard count keeps the merge's watermark traffic
/// (`shards` forwarded copies per broadcast) at a constant ≈ `1/WM_EVERY` of
/// its data traffic for every shard count.
pub const WM_EVERY: usize = 32;

/// Stable shard assignment: FNV-1a over the rendered partition-key values.
///
/// Missing keys hash as a distinct sentinel, so items without the key still
/// land deterministically on one shard. The hash depends only on the item's
/// key values — never on the replica count in any way other than the final
/// modulo — so `same key ⇒ same shard` holds for every `shards` value.
pub fn shard_for(item: &DataItem, keys: &[String], shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn feed(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        h
    }
    let mut h = OFFSET;
    // Feed the same bytes `Value`'s Display renders, but without building a
    // String per key — this runs once per item on the partitioned hot path.
    // String keys (the common case) hash without any allocation; numeric
    // keys share one reused buffer.
    let mut numbuf = String::new();
    for key in keys {
        match item.get(key) {
            Some(crate::item::Value::Str(s)) => h = feed(h, s.as_bytes()),
            Some(crate::item::Value::Null) => h = feed(h, b"null"),
            Some(crate::item::Value::Bool(b)) => h = feed(h, if *b { b"true" } else { b"false" }),
            Some(v) => {
                numbuf.clear();
                use std::fmt::Write as _;
                write!(numbuf, "{v}").expect("formatting a number into a String cannot fail");
                h = feed(h, numbuf.as_bytes());
            }
            None => h = feed(h, b"\x00<missing>"),
        }
        h = feed(h, &[0x1f]);
    }
    (h % shards.max(1) as u64) as usize
}

/// [`shard_for`] with declared key values: a single string key whose value
/// is listed in `hints` routes to `position % shards` — a round-robin over
/// the enumerated values, the only assignment that cannot collide the
/// heavy values of a low-cardinality key onto one replica (see
/// [`crate::topology::ProcessBuilder::partition_hints`]). Anything not
/// covered by the hints keeps the hash route. Both routes are pure
/// functions of the key value, so `same key ⇒ same shard` holds either
/// way.
pub fn shard_for_hinted(
    item: &DataItem,
    keys: &[String],
    hints: &[String],
    shards: usize,
) -> usize {
    if !hints.is_empty() {
        if let [key] = keys {
            if let Some(crate::item::Value::Str(s)) = item.get(key) {
                if let Some(pos) = hints.iter().position(|h| h.as_str() == s.as_str()) {
                    return pos % shards.max(1);
                }
            }
        }
    }
    shard_for(item, keys, shards)
}

/// The synthesized `P[part]` processor: stamps [`SEQ_ATTR`] on every item.
/// The runtime's shard dispatch computes the keyed route itself (see
/// [`Dispatch::Shard`]) and handles the periodic watermark broadcast, so the
/// shard assignment never round-trips through the attribute map — the
/// [`SHARD_ATTR`] stamp appears only on replica *outputs*, where the merge
/// needs it for progress attribution.
pub(crate) struct PartitionStamp {
    next_seq: i64,
}

impl PartitionStamp {
    pub(crate) fn new() -> PartitionStamp {
        PartitionStamp { next_seq: 0 }
    }
}

impl Processor for PartitionStamp {
    fn process(
        &mut self,
        mut item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        item.set(SEQ_ATTR, self.next_seq);
        self.next_seq += 1;
        Ok(Some(item))
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

impl Checkpointable for PartitionStamp {
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        blob.set("next_seq", self.next_seq);
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        self.next_seq = blob.require_i64("next_seq")?;
        Ok(())
    }
}

/// The synthesized `P[i]` processor: wraps one private clone of the user's
/// processor chain, hiding the partition bookkeeping from it.
///
/// Faults inside the inner chain surface as faults of the shell (processor
/// index 0 of `P[i]`), so the replica's fault policy governs the *whole*
/// chain invocation — Skip drops the item (its sequence number is settled by
/// the next watermark), Retry re-runs the shell on the preserved input,
/// DeadLetter records the item including its `__` bookkeeping attributes.
pub(crate) struct ReplicaShell {
    inner: Vec<Box<dyn Processor>>,
    index: usize,
}

impl ReplicaShell {
    pub(crate) fn new(inner: Vec<Box<dyn Processor>>, index: usize) -> ReplicaShell {
        ReplicaShell { inner, index }
    }
}

impl Processor for ReplicaShell {
    fn process(
        &mut self,
        mut item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        // Watermarks pass through untouched by the user chain; the shell only
        // attributes them to its shard so the merge knows who forwarded them.
        if item.contains(WM_ATTR) {
            item.set(SHARD_ATTR, self.index as i64);
            return Ok(Some(item));
        }
        let seq = item.remove(SEQ_ATTR).and_then(|v| v.as_i64()).ok_or_else(|| {
            StreamsError::ServiceError {
                detail: "replica received an item without a sequence stamp".into(),
            }
        })?;
        item.remove(SHARD_ATTR);
        let mut cur = item;
        for p in &mut self.inner {
            match p.process(cur, ctx)? {
                Some(next) => cur = next,
                None => return Ok(None),
            }
        }
        cur.set(SEQ_ATTR, seq);
        cur.set(SHARD_ATTR, self.index as i64);
        Ok(Some(cur))
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // Inner finishes cascade like the runtime's own chain flush: trailing
        // items of inner processor i traverse inner processors i+1‥.
        let mut out = Vec::new();
        for i in 0..self.inner.len() {
            'item: for mut item in self.inner[i].finish(ctx)? {
                for p in &mut self.inner[i + 1..] {
                    match p.process(item, ctx)? {
                        Some(next) => item = next,
                        None => continue 'item,
                    }
                }
                item.set(FIN_ITEM_ATTR, true);
                item.set(SHARD_ATTR, self.index as i64);
                out.push(item);
            }
        }
        // The fin marker is last, after this shard's trailing items.
        out.push(DataItem::new().with(FIN_ATTR, true).with(SHARD_ATTR, self.index as i64));
        Ok(out)
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

impl Checkpointable for ReplicaShell {
    /// Delegates to the inner chain: each checkpointable slot `i` is stored
    /// string-encoded under `inner.{i}`. Slots without state contribute
    /// nothing and are left fresh on restore.
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        for (i, p) in self.inner.iter_mut().enumerate() {
            if let Some(c) = p.as_checkpointable() {
                blob.set(&format!("inner.{i}"), c.snapshot().to_json());
            }
        }
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        for (i, p) in self.inner.iter_mut().enumerate() {
            let Some(encoded) = blob.get_str(&format!("inner.{i}")) else { continue };
            let inner_blob = StateBlob::from_json(encoded)?;
            let c = p.as_checkpointable().ok_or_else(|| StreamsError::Io {
                detail: format!(
                    "corrupt checkpoint: inner slot {i} has state but is not checkpointable"
                ),
            })?;
            c.restore(&inner_blob)?;
        }
        Ok(())
    }
}

/// The synthesized `P[merge]` processor: demultiplexes per-shard streams back
/// into the partitioner's input order (see the module docs for the
/// determinism argument).
///
/// A shard's *frontier* is the smallest sequence number it might still emit:
/// a data item with sequence `s` raises it to `s + 1`, a watermark `w` raises
/// it to `w`, a fin marker settles the shard entirely. The globally smallest
/// buffered sequence number is released once every shard is fin or past it;
/// sequence numbers are unique, so no tie-break is needed.
pub(crate) struct MergeProcessor {
    buffers: Vec<BTreeMap<i64, DataItem>>,
    frontier: Vec<i64>,
    fin: Vec<bool>,
    trailing: Vec<Vec<DataItem>>,
    /// Released items not yet emitted: `process` returns at most one item per
    /// call, so a watermark releasing a burst parks the rest here and
    /// subsequent calls (or `finish`) drain it.
    ready: VecDeque<DataItem>,
}

impl MergeProcessor {
    pub(crate) fn new(shards: usize) -> MergeProcessor {
        MergeProcessor {
            buffers: (0..shards).map(|_| BTreeMap::new()).collect(),
            frontier: vec![0; shards],
            fin: vec![false; shards],
            trailing: (0..shards).map(|_| Vec::new()).collect(),
            ready: VecDeque::new(),
        }
    }

    fn shard_of(&self, item: &DataItem) -> Result<usize, StreamsError> {
        let shard = item.get_i64(SHARD_ATTR).ok_or_else(|| StreamsError::ServiceError {
            detail: "merge received an item without a shard stamp".into(),
        })?;
        let shard = shard as usize;
        if shard >= self.buffers.len() {
            return Err(StreamsError::ServiceError {
                detail: format!("merge received shard {shard} of {}", self.buffers.len()),
            });
        }
        Ok(shard)
    }

    /// Moves every releasable buffered item (in global sequence order) into
    /// the ready queue.
    fn collect_ready(&mut self) {
        while let Some((shard, seq)) = self
            .buffers
            .iter()
            .enumerate()
            .filter_map(|(j, b)| b.keys().next().map(|&s| (j, s)))
            .min_by_key(|&(_, s)| s)
        {
            let releasable =
                self.fin.iter().zip(&self.frontier).all(|(&fin, &frontier)| fin || frontier > seq);
            if !releasable {
                break;
            }
            let item = self.buffers[shard].remove(&seq).expect("first key exists");
            self.ready.push_back(item);
        }
    }
}

impl Processor for MergeProcessor {
    fn process(
        &mut self,
        mut item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        let shard = self.shard_of(&item)?;
        if let Some(wm) = item.get_i64(WM_ATTR) {
            self.frontier[shard] = self.frontier[shard].max(wm);
        } else if item.contains(FIN_ATTR) {
            self.fin[shard] = true;
        } else if item.contains(FIN_ITEM_ATTR) {
            item.remove(FIN_ITEM_ATTR);
            item.remove(SHARD_ATTR);
            self.trailing[shard].push(item);
        } else {
            let seq = item.remove(SEQ_ATTR).and_then(|v| v.as_i64()).ok_or_else(|| {
                StreamsError::ServiceError {
                    detail: "merge received a data item without a sequence stamp".into(),
                }
            })?;
            item.remove(SHARD_ATTR);
            self.frontier[shard] = self.frontier[shard].max(seq + 1);
            self.buffers[shard].insert(seq, item);
        }
        self.collect_ready();
        Ok(self.ready.pop_front())
    }

    fn finish(&mut self, _ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // All upstream replicas have finished (their queues ended), so every
        // remaining buffered item is final: drain in global sequence order,
        // then the per-shard trailing items.
        let mut out: Vec<DataItem> = self.ready.drain(..).collect();
        let mut remaining: BTreeMap<i64, DataItem> = BTreeMap::new();
        for buffer in &mut self.buffers {
            remaining.append(buffer);
        }
        out.extend(remaining.into_values());
        for trailing in &mut self.trailing {
            out.append(trailing);
        }
        Ok(out)
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

/// Newline-joins item JSONs (JSON strings escape embedded newlines, so the
/// join is unambiguous).
fn encode_items<'a, I: IntoIterator<Item = &'a DataItem>>(items: I) -> String {
    items.into_iter().map(DataItem::to_json).collect::<Vec<_>>().join("\n")
}

fn decode_items(encoded: &str) -> Result<Vec<DataItem>, StreamsError> {
    encoded.lines().map(DataItem::from_json).collect()
}

impl Checkpointable for MergeProcessor {
    /// Per shard `j`: release frontier (`frontier.{j}`), fin flag (`fin.{j}`),
    /// the buffered out-of-order items (`buf.{j}`, lines of `seq\tjson`) and
    /// the trailing finish items (`trail.{j}`); plus the released-but-unemitted
    /// `ready` queue. Restoring reproduces the exact release state, so a
    /// recovered merge continues the same global sequence order.
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        blob.set("shards", self.buffers.len() as i64);
        for j in 0..self.buffers.len() {
            blob.set(&format!("frontier.{j}"), self.frontier[j]);
            blob.set(&format!("fin.{j}"), self.fin[j]);
            let buf = self.buffers[j]
                .iter()
                .map(|(seq, item)| format!("{seq}\t{}", item.to_json()))
                .collect::<Vec<_>>()
                .join("\n");
            blob.set(&format!("buf.{j}"), buf);
            blob.set(&format!("trail.{j}"), encode_items(&self.trailing[j]));
        }
        blob.set("ready", encode_items(&self.ready));
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        let shards = blob.require_i64("shards")? as usize;
        if shards != self.buffers.len() {
            return Err(StreamsError::Io {
                detail: format!(
                    "corrupt checkpoint: merge has {} shards, checkpoint has {shards}",
                    self.buffers.len()
                ),
            });
        }
        for j in 0..shards {
            self.frontier[j] = blob.require_i64(&format!("frontier.{j}"))?;
            self.fin[j] = blob.get_bool(&format!("fin.{j}")).ok_or_else(|| StreamsError::Io {
                detail: format!("corrupt checkpoint: missing field `fin.{j}`"),
            })?;
            let mut buffer = BTreeMap::new();
            for line in blob.require_str(&format!("buf.{j}"))?.lines() {
                let (seq, json) = line.split_once('\t').ok_or_else(|| StreamsError::Io {
                    detail: "corrupt checkpoint: merge buffer line lacks a sequence".into(),
                })?;
                let seq: i64 = seq.parse().map_err(|_| StreamsError::Io {
                    detail: format!("corrupt checkpoint: bad merge sequence `{seq}`"),
                })?;
                buffer.insert(seq, DataItem::from_json(json)?);
            }
            self.buffers[j] = buffer;
            self.trailing[j] = decode_items(blob.require_str(&format!("trail.{j}"))?)?;
        }
        self.ready = decode_items(blob.require_str("ready")?)?.into();
        Ok(())
    }
}

/// Expands every process declared with `replicas(n > 1)` into the
/// partition / replicate / merge sub-graph described in the module docs.
/// Processes with `replicas(1)` (or none) are untouched — their behaviour is
/// bit-identical to a plain process. Called by the runtimes before
/// validation, so the expanded graph is what gets validated, scheduled and
/// measured.
pub(crate) fn expand_replicas(topology: &mut Topology) -> Result<(), StreamsError> {
    let processes = std::mem::take(&mut topology.processes);
    for mut p in processes {
        if p.replicas <= 1 {
            // Collapse the (single) replica chain into the direct chain.
            if let Some(chain) = p.replica_chains.pop() {
                assert!(
                    p.processors.is_empty(),
                    "process `{}` mixes processor() and processor_factory()",
                    p.name
                );
                p.processors = chain;
            }
            topology.processes.push(p);
            continue;
        }
        let n = p.replicas;
        if p.partition_keys.is_empty() {
            return Err(StreamsError::InvalidPartition {
                process: p.name,
                detail: format!("replicas({n}) requires partition_by(...)"),
            });
        }
        if !p.processors.is_empty() {
            return Err(StreamsError::InvalidPartition {
                process: p.name,
                detail: "replicated processors must be added via processor_factory(), \
                         not processor()"
                    .into(),
            });
        }
        let mut chains = std::mem::take(&mut p.replica_chains);
        if chains.is_empty() {
            chains = (0..n).map(|_| Vec::new()).collect();
        }
        assert_eq!(chains.len(), n, "one replica chain per replica");
        let slot_factories = std::mem::take(&mut p.factories);

        // The synthesized infrastructure stages inherit the stage's Restart
        // policy (they are part of the stage, and both are rebuildable from
        // their factories); under any other policy they keep the historical
        // fail-fast behaviour — a lost partitioner or merge cannot be skipped
        // without corrupting the sequence protocol.
        let infra_policy = |of: &FaultPolicy| match of {
            FaultPolicy::Restart { .. } => of.clone(),
            _ => FaultPolicy::FailFast,
        };

        // The synthesized queues size themselves off the stage's input edge:
        // the partitioner only routes, so it must not impose backpressure
        // tighter than the edge feeding it — with keyed (skewed) routing a
        // smaller shard queue fills while its replica is busy and parks the
        // partitioner even though upstream capacity remains.
        let inner_capacity = match &p.input {
            Input::Queue(q) => topology.queues.get(q).copied().unwrap_or(DEFAULT_QUEUE_CAPACITY),
            _ => DEFAULT_QUEUE_CAPACITY,
        }
        .max(DEFAULT_QUEUE_CAPACITY);
        let merge_queue = format!("{}[merge:q]", p.name);
        topology.queues.insert(merge_queue.clone(), inner_capacity);
        let shard_queues: Vec<String> = (0..n).map(|i| format!("{}[shard:{i}]", p.name)).collect();
        for q in &shard_queues {
            topology.queues.insert(q.clone(), inner_capacity);
        }

        // P[part]: stamp + shard-dispatch to the shard queues. The partition
        // keys ride on the def so the runtime's shard dispatch can compute
        // the keyed route directly.
        topology.processes.push(ProcessDef {
            name: format!("{}[part]", p.name),
            input: p.input.clone(),
            processors: vec![Box::new(PartitionStamp::new())],
            outputs: shard_queues.iter().cloned().map(Output::Queue).collect(),
            fault_policy: infra_policy(&p.fault_policy),
            batch_size: p.batch_size,
            replicas: 1,
            partition_keys: std::mem::take(&mut p.partition_keys),
            partition_hints: std::mem::take(&mut p.partition_hints),
            replica_chains: Vec::new(),
            shard_dispatch: true,
            factories: vec![Some(
                Arc::new(|| Box::new(PartitionStamp::new()) as Box<dyn Processor>)
                    as SharedProcessorFactory,
            )],
            checkpoint_every: p.checkpoint_every,
        });

        // P[i]: one shell per replica, each with its private chain clone and
        // its own copy of the user's fault policy. A shell is rebuildable
        // only when *every* inner slot came from a factory.
        let shell_factory = |i: usize| -> Option<SharedProcessorFactory> {
            let inner: Vec<SharedProcessorFactory> =
                slot_factories.iter().cloned().collect::<Option<_>>()?;
            Some(Arc::new(move || {
                Box::new(ReplicaShell::new(inner.iter().map(|make| make()).collect(), i))
                    as Box<dyn Processor>
            }))
        };
        for (i, chain) in chains.into_iter().enumerate() {
            topology.processes.push(ProcessDef {
                name: format!("{}[{i}]", p.name),
                input: Input::Queue(shard_queues[i].clone()),
                processors: vec![Box::new(ReplicaShell::new(chain, i))],
                outputs: vec![Output::Queue(merge_queue.clone())],
                fault_policy: p.fault_policy.clone(),
                batch_size: p.batch_size,
                replicas: 1,
                partition_keys: Vec::new(),
                partition_hints: Vec::new(),
                replica_chains: Vec::new(),
                shard_dispatch: false,
                factories: vec![shell_factory(i)],
                checkpoint_every: p.checkpoint_every,
            });
        }

        // P[merge]: restore order, then feed the original outputs.
        topology.processes.push(ProcessDef {
            name: format!("{}[merge]", p.name),
            input: Input::Queue(merge_queue),
            processors: vec![Box::new(MergeProcessor::new(n))],
            outputs: std::mem::take(&mut p.outputs),
            fault_policy: infra_policy(&p.fault_policy),
            batch_size: p.batch_size,
            replicas: 1,
            partition_keys: Vec::new(),
            partition_hints: Vec::new(),
            replica_chains: Vec::new(),
            shard_dispatch: false,
            factories: vec![Some(Arc::new(move || {
                Box::new(MergeProcessor::new(n)) as Box<dyn Processor>
            }) as SharedProcessorFactory)],
            checkpoint_every: p.checkpoint_every,
        });
    }
    Ok(())
}

/// How a worker distributes chain survivors to its outputs.
pub(crate) enum Dispatch {
    /// Clone to every output (the default process semantics).
    Broadcast,
    /// Route each item to the shard chosen by [`shard_for_hinted`] over the
    /// partition keys, and broadcast a watermark to *all* outputs every
    /// [`WM_EVERY`]` × outputs` items.
    Shard {
        keys: std::sync::Arc<[String]>,
        hints: std::sync::Arc<[String]>,
        since_wm: usize,
        next_wm: i64,
    },
}

impl Dispatch {
    /// Plans the `(output index, item)` deliveries for one chain survivor,
    /// in delivery order, appending to a caller-owned buffer so the per-item
    /// hot path allocates nothing. Shared by the threaded runtime (which
    /// delivers immediately from a reused buffer) and the replay scheduler
    /// (via [`Dispatch::plan`]), so both produce identical per-queue item
    /// sequences. Item clones are `Arc` reference bumps (see
    /// [`crate::item`]), never attribute-map copies.
    pub(crate) fn plan_into(
        &mut self,
        n_outputs: usize,
        item: DataItem,
        plan: &mut Vec<(usize, DataItem)>,
    ) {
        match self {
            Dispatch::Broadcast => {
                for idx in 0..n_outputs.saturating_sub(1) {
                    plan.push((idx, item.clone()));
                }
                if n_outputs > 0 {
                    plan.push((n_outputs - 1, item));
                }
            }
            Dispatch::Shard { keys, hints, since_wm, next_wm } => {
                let shard = shard_for_hinted(&item, keys, hints, n_outputs.max(1));
                if let Some(seq) = item.get_i64(SEQ_ATTR) {
                    *next_wm = (*next_wm).max(seq + 1);
                }
                plan.push((shard, item));
                *since_wm += 1;
                if *since_wm >= WM_EVERY * n_outputs.max(1) {
                    *since_wm = 0;
                    let wm = DataItem::new().with(WM_ATTR, *next_wm);
                    for idx in 0..n_outputs {
                        plan.push((idx, wm.clone()));
                    }
                }
            }
        }
    }

    /// Allocating convenience over [`Dispatch::plan_into`] for callers that
    /// park the plan (the replay scheduler's outbox).
    pub(crate) fn plan(&mut self, n_outputs: usize, item: DataItem) -> Vec<(usize, DataItem)> {
        let mut plan = Vec::with_capacity(n_outputs);
        self.plan_into(n_outputs, item, &mut plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::FnProcessor;
    use crate::service::ServiceRegistry;

    fn ctx() -> Context {
        Context::new(ServiceRegistry::default(), "test")
    }

    #[test]
    fn shard_for_is_stable_and_covers_missing_keys() {
        let keys = vec!["region".to_string()];
        let item = DataItem::new().with("region", "north");
        assert_eq!(shard_for(&item, &keys, 4), shard_for(&item, &keys, 4));
        // Items without the key still land somewhere deterministic.
        let bare = DataItem::new().with("x", 1i64);
        assert!(shard_for(&bare, &keys, 4) < 4);
        assert_eq!(shard_for(&bare, &keys, 4), shard_for(&bare, &keys, 4));
    }

    #[test]
    fn partition_stamp_assigns_monotone_sequence() {
        let mut p = PartitionStamp::new();
        let mut c = ctx();
        for expect in 0..5i64 {
            let out = p.process(DataItem::new().with("k", expect), &mut c).unwrap().unwrap();
            assert_eq!(out.get_i64(SEQ_ATTR), Some(expect));
            // Routing is the dispatch's job now; the stamp leaves no shard
            // attribute behind.
            assert!(!out.contains(SHARD_ATTR));
        }
    }

    #[test]
    fn replica_shell_hides_bookkeeping_from_inner_chain() {
        let inner = FnProcessor::new(|item: DataItem, _: &mut Context| {
            assert!(!item.contains(SEQ_ATTR) && !item.contains(SHARD_ATTR));
            Ok(Some(item.with("seen", true)))
        });
        let mut shell = ReplicaShell::new(vec![Box::new(inner)], 2);
        let mut c = ctx();
        let item = DataItem::new().with("n", 1i64).with(SEQ_ATTR, 9i64).with(SHARD_ATTR, 2i64);
        let out = shell.process(item, &mut c).unwrap().unwrap();
        assert_eq!(out.get_i64(SEQ_ATTR), Some(9));
        assert_eq!(out.get_i64(SHARD_ATTR), Some(2));
        assert_eq!(out.get_bool("seen"), Some(true));
    }

    #[test]
    fn replica_shell_finish_tags_trailing_and_appends_fin() {
        struct Tail;
        impl Processor for Tail {
            fn process(
                &mut self,
                item: DataItem,
                _: &mut Context,
            ) -> Result<Option<DataItem>, StreamsError> {
                Ok(Some(item))
            }
            fn finish(&mut self, _: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
                Ok(vec![DataItem::new().with("summary", true)])
            }
        }
        let mut shell = ReplicaShell::new(vec![Box::new(Tail)], 1);
        let out = shell.finish(&mut ctx()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get_bool(FIN_ITEM_ATTR), Some(true));
        assert_eq!(out[0].get_i64(SHARD_ATTR), Some(1));
        assert_eq!(out[1].get_bool(FIN_ATTR), Some(true), "fin marker comes last");
    }

    #[test]
    fn merge_restores_sequence_order_across_shards() {
        let mut m = MergeProcessor::new(2);
        let mut c = ctx();
        let data = |seq: i64, shard: i64| {
            DataItem::new().with("n", seq).with(SEQ_ATTR, seq).with(SHARD_ATTR, shard)
        };
        // Shard 1 delivers seq 1 first; nothing can be released until shard 0
        // accounts for seq 0.
        assert_eq!(m.process(data(1, 1), &mut c).unwrap(), None);
        let first = m.process(data(0, 0), &mut c).unwrap().unwrap();
        assert_eq!(first.get_i64("n"), Some(0));
        assert!(!first.contains(SEQ_ATTR), "bookkeeping is stripped");
        // seq 1 is already releasable (frontiers are 2 and 2).
        let fin = DataItem::new().with(FIN_ATTR, true).with(SHARD_ATTR, 0i64);
        let second = m.process(fin, &mut c).unwrap().unwrap();
        assert_eq!(second.get_i64("n"), Some(1));
    }

    #[test]
    fn merge_watermark_releases_filtered_gaps() {
        let mut m = MergeProcessor::new(2);
        let mut c = ctx();
        // Shard 0 emitted seq 5 but seqs 0..5 were filtered on shard 1.
        let item = DataItem::new().with("n", 5i64).with(SEQ_ATTR, 5i64).with(SHARD_ATTR, 0i64);
        assert_eq!(m.process(item, &mut c).unwrap(), None, "shard 1 frontier unknown");
        let wm = DataItem::new().with(WM_ATTR, 6i64).with(SHARD_ATTR, 1i64);
        let out = m.process(wm, &mut c).unwrap().unwrap();
        assert_eq!(out.get_i64("n"), Some(5));
    }

    #[test]
    fn merge_finish_drains_buffers_then_trailing() {
        let mut m = MergeProcessor::new(2);
        let mut c = ctx();
        let data = |seq: i64, shard: i64| {
            DataItem::new().with("n", seq).with(SEQ_ATTR, seq).with(SHARD_ATTR, shard)
        };
        assert_eq!(m.process(data(3, 1), &mut c).unwrap(), None, "shard 0 frontier unknown");
        // seq 2 becomes releasable the moment shard 0 accounts for it; seq 3
        // stays buffered because shard 0's frontier (3) is not *past* it.
        let released = m.process(data(2, 0), &mut c).unwrap().unwrap();
        assert_eq!(released.get_i64("n"), Some(2));
        let t = DataItem::new().with("t", true).with(FIN_ITEM_ATTR, true).with(SHARD_ATTR, 1i64);
        assert_eq!(m.process(t, &mut c).unwrap(), None);
        let out = m.finish(&mut c).unwrap();
        let ns: Vec<Option<i64>> = out.iter().map(|i| i.get_i64("n")).collect();
        assert_eq!(ns, vec![Some(3), None], "remaining seq order, then trailing");
        assert!(!out[1].contains(FIN_ITEM_ATTR) && !out[1].contains(SHARD_ATTR));
    }

    #[test]
    fn merge_rejects_unstamped_items() {
        let mut m = MergeProcessor::new(1);
        assert!(m.process(DataItem::new().with("n", 1i64), &mut ctx()).is_err());
        let bad_shard = DataItem::new().with(SEQ_ATTR, 0i64).with(SHARD_ATTR, 9i64);
        assert!(m.process(bad_shard, &mut ctx()).is_err());
    }

    fn replicated_topology(
        n_items: i64,
        replicas: usize,
        sink: &crate::sink::CollectSink,
    ) -> Topology {
        use crate::source::VecSource;
        let mut t = Topology::new();
        t.add_source(
            "nums",
            VecSource::new((0..n_items).map(|i| DataItem::new().with("n", i).with("key", i % 7))),
        );
        t.add_queue("out", 8);
        t.process("square")
            .input(Input::Stream("nums".into()))
            .replicas(replicas)
            .partition_by(["key"])
            .processor_factory(|| {
                Box::new(FnProcessor::new(|mut item: DataItem, _: &mut Context| {
                    let n = item.get_i64("n").unwrap();
                    if n % 5 == 3 {
                        return Ok(None); // filtered: creates sequence gaps
                    }
                    item.set("sq", n * n);
                    Ok(Some(item))
                }))
            })
            .output(Output::Queue("out".into()))
            .done();
        t.process("collect")
            .input(Input::Queue("out".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        t
    }

    #[test]
    fn replicated_stage_preserves_input_order_threaded_and_replay() {
        let expected: Vec<(i64, i64)> =
            (0..200).filter(|n| n % 5 != 3).map(|n| (n, n * n)).collect();
        for replicas in [1usize, 2, 4, 8] {
            let sink = crate::sink::CollectSink::shared();
            crate::runtime::Runtime::new(replicated_topology(200, replicas, &sink)).run().unwrap();
            let got: Vec<(i64, i64)> = sink
                .items()
                .iter()
                .map(|i| (i.get_i64("n").unwrap(), i.get_i64("sq").unwrap()))
                .collect();
            assert_eq!(got, expected, "threaded, replicas={replicas}");
            for item in sink.items() {
                assert!(
                    !item.contains(SEQ_ATTR) && !item.contains(SHARD_ATTR),
                    "bookkeeping never escapes the merge"
                );
            }

            let sink = crate::sink::CollectSink::shared();
            crate::replay::ReplayRuntime::new(replicated_topology(200, replicas, &sink), 42)
                .run()
                .unwrap();
            let got: Vec<(i64, i64)> = sink
                .items()
                .iter()
                .map(|i| (i.get_i64("n").unwrap(), i.get_i64("sq").unwrap()))
                .collect();
            assert_eq!(got, expected, "replay, replicas={replicas}");
        }
    }

    #[test]
    fn replicas_without_partition_keys_rejected() {
        let sink = crate::sink::CollectSink::shared();
        let mut t = replicated_topology(10, 2, &sink);
        t.processes[0].partition_keys.clear();
        assert!(matches!(
            crate::runtime::Runtime::new(t).run(),
            Err(StreamsError::InvalidPartition { .. })
        ));
    }

    #[test]
    fn replicated_stage_metrics_have_distinct_labels() {
        let sink = crate::sink::CollectSink::shared();
        let rt = crate::runtime::Runtime::new(replicated_topology(100, 2, &sink));
        let metrics = rt.metrics();
        rt.run().unwrap();
        let snap = metrics.snapshot();
        for stage in ["square[part]", "square[0]", "square[1]", "square[merge]"] {
            assert!(snap.stages.contains_key(stage), "stage `{stage}` missing");
        }
        assert!(!snap.stages.contains_key("square"), "no aliased unsuffixed stage");
        // Every input item went through the partitioner exactly once, and the
        // two replicas split it: per-replica counters never alias.
        assert_eq!(snap.stages["square[part]"].items_in, 100);
        let r0 = snap.stages["square[0]"].items_in;
        let r1 = snap.stages["square[1]"].items_in;
        assert!(r0 > 0 && r1 > 0, "both shards saw traffic: {r0}/{r1}");
        // Replica input = data items + watermark broadcasts (each replica
        // sees every watermark; the cadence scales with the shard count).
        let wms = (100 / (WM_EVERY * 2) as u64) * 2;
        assert_eq!(r0 + r1, 100 + wms);
    }

    #[test]
    fn shard_dispatch_routes_and_emits_watermarks() {
        let keys: std::sync::Arc<[String]> = vec!["k".to_string()].into();
        let mut d = Dispatch::Shard {
            keys: keys.clone(),
            hints: Vec::new().into(),
            since_wm: 0,
            next_wm: 0,
        };
        let mut seen_wm = 0usize;
        let cadence = (WM_EVERY * 3) as i64;
        for seq in 0..cadence {
            let item = DataItem::new().with("k", seq).with(SEQ_ATTR, seq);
            let expect = shard_for(&item, &keys, 3);
            let plan = d.plan(3, item);
            assert_eq!(plan[0].0, expect, "routed to the keyed shard");
            seen_wm += plan.len() - 1;
        }
        assert_eq!(
            seen_wm, 3,
            "one watermark broadcast to all 3 outputs per WM_EVERY*outputs items"
        );
    }

    /// Satellite regression: killing the *merge* stage itself under
    /// `Restart` must neither wedge end-of-stream propagation nor corrupt
    /// the watermark release frontier — the restored merge re-buffers the
    /// replayed suffix and keeps releasing in global sequence order.
    #[test]
    fn restart_policy_recovers_a_killed_merge_without_wedging_eos() {
        use crate::chaos::{KillAt, KillSwitch};
        use std::sync::Arc;

        let run = |kill_at: u64| -> (Vec<(i64, i64)>, bool) {
            let sink = crate::sink::CollectSink::shared();
            let mut t = replicated_topology(200, 3, &sink);
            t.processes[0].fault_policy = FaultPolicy::Restart { max: 2, from_checkpoint: true };
            t.processes[0].checkpoint_every = 1;
            expand_replicas(&mut t).unwrap();
            let switch = KillSwitch::new();
            let merge = t
                .processes
                .iter_mut()
                .find(|p| p.name == "square[merge]")
                .expect("expansion synthesizes the merge");
            assert!(
                matches!(merge.fault_policy, FaultPolicy::Restart { .. }),
                "the merge inherits the stage's Restart policy"
            );
            let sw = switch.clone();
            merge.processors.insert(0, Box::new(KillAt::with_switch(kill_at, switch.clone())));
            merge.factories.insert(
                0,
                Some(Arc::new(move || {
                    Box::new(KillAt::with_switch(kill_at, sw.clone())) as Box<dyn Processor>
                })),
            );
            crate::runtime::Runtime::new(t).run().unwrap();
            let got: Vec<(i64, i64)> = sink
                .items()
                .iter()
                .map(|i| (i.get_i64("n").unwrap(), i.get_i64("sq").unwrap()))
                .collect();
            for item in sink.items() {
                assert!(
                    !item.contains(SEQ_ATTR) && !item.contains(SHARD_ATTR),
                    "bookkeeping never escapes the recovered merge"
                );
            }
            (got, switch.fired())
        };

        let (baseline, fired) = run(0);
        assert!(!fired, "kill_at=0 is a no-op injector");
        let expected: Vec<(i64, i64)> =
            (0..200).filter(|n| n % 5 != 3).map(|n| (n, n * n)).collect();
        assert_eq!(baseline, expected, "kill-free merge releases in input order");
        // Kill early (frontier mostly unknown), mid-stream, and late (most
        // sequence numbers already released).
        for kill_at in [3u64, 80, 150] {
            let (got, fired) = run(kill_at);
            assert!(fired, "kill_at={kill_at}: the injected kill must fire");
            assert_eq!(got, baseline, "kill_at={kill_at}: recovered merge diverged");
        }
    }
}
