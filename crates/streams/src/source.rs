//! Sources: where data items enter the graph.

use crate::error::StreamsError;
use crate::item::DataItem;
use std::io::BufRead;

/// A pull-based stream of data items; `Ok(None)` signals end of stream.
pub trait Source: Send {
    /// Produces the next item.
    fn next_item(&mut self) -> Result<Option<DataItem>, StreamsError>;

    /// Produces up to `max` items into `out`, returning how many were
    /// appended; `Ok(0)` signals end of stream.
    ///
    /// The default pulls a single item, which is the right behaviour for
    /// live (blocking) sources: a source must never hold an already-produced
    /// item back while waiting to fill a batch. Sources over
    /// pre-materialised data (e.g. [`VecSource`]) override this to hand the
    /// runtime a full batch per call, amortising per-item dispatch on the
    /// ingest path.
    fn next_batch(&mut self, max: usize, out: &mut Vec<DataItem>) -> Result<usize, StreamsError> {
        debug_assert!(max > 0, "next_batch called with max = 0");
        match self.next_item()? {
            Some(item) => {
                out.push(item);
                Ok(1)
            }
            None => Ok(0),
        }
    }
}

/// A source over a pre-materialised vector of items.
pub struct VecSource {
    items: std::vec::IntoIter<DataItem>,
}

impl VecSource {
    /// Builds the source from any iterable of items.
    pub fn new<I: IntoIterator<Item = DataItem>>(items: I) -> VecSource {
        VecSource { items: items.into_iter().collect::<Vec<_>>().into_iter() }
    }
}

impl Source for VecSource {
    fn next_item(&mut self) -> Result<Option<DataItem>, StreamsError> {
        Ok(self.items.next())
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<DataItem>) -> Result<usize, StreamsError> {
        let before = out.len();
        out.extend(self.items.by_ref().take(max));
        Ok(out.len() - before)
    }
}

/// A source backed by a generator closure; the closure returns `None` when
/// exhausted.
pub struct FnSource<F>(F);

impl<F> FnSource<F>
where
    F: FnMut() -> Result<Option<DataItem>, StreamsError> + Send,
{
    /// Wraps the generator.
    pub fn new(f: F) -> FnSource<F> {
        FnSource(f)
    }
}

impl<F> Source for FnSource<F>
where
    F: FnMut() -> Result<Option<DataItem>, StreamsError> + Send,
{
    fn next_item(&mut self) -> Result<Option<DataItem>, StreamsError> {
        (self.0)()
    }
}

/// A source reading one JSON object per line from any buffered reader
/// (the file-based stream format of the original framework).
pub struct JsonLinesSource<R: BufRead + Send> {
    reader: R,
    line: String,
}

impl<R: BufRead + Send> JsonLinesSource<R> {
    /// Wraps the reader.
    pub fn new(reader: R) -> JsonLinesSource<R> {
        JsonLinesSource { reader, line: String::new() }
    }
}

impl<R: BufRead + Send> Source for JsonLinesSource<R> {
    fn next_item(&mut self) -> Result<Option<DataItem>, StreamsError> {
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return DataItem::from_json(trimmed).map(Some);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_drains() {
        let mut s =
            VecSource::new([DataItem::new().with("a", 1i64), DataItem::new().with("a", 2i64)]);
        assert_eq!(s.next_item().unwrap().unwrap().get_i64("a"), Some(1));
        assert_eq!(s.next_item().unwrap().unwrap().get_i64("a"), Some(2));
        assert!(s.next_item().unwrap().is_none());
        assert!(s.next_item().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn vec_source_batches() {
        let mut s = VecSource::new((0..5).map(|n| DataItem::new().with("n", n as i64)));
        let mut out = Vec::new();
        assert_eq!(s.next_batch(2, &mut out).unwrap(), 2);
        assert_eq!(s.next_batch(16, &mut out).unwrap(), 3, "short final batch");
        assert_eq!(s.next_batch(16, &mut out).unwrap(), 0, "exhausted");
        let got: Vec<i64> = out.iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4], "batching preserves order");
    }

    #[test]
    fn default_next_batch_pulls_one_item() {
        let mut n = 0i64;
        let mut s = FnSource::new(move || {
            n += 1;
            Ok((n <= 3).then(|| DataItem::new().with("n", n)))
        });
        let mut out = Vec::new();
        assert_eq!(s.next_batch(64, &mut out).unwrap(), 1, "live sources never batch");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fn_source_generates() {
        let mut n = 0i64;
        let mut s = FnSource::new(move || {
            n += 1;
            Ok((n <= 3).then(|| DataItem::new().with("n", n)))
        });
        let mut got = Vec::new();
        while let Some(item) = s.next_item().unwrap() {
            got.push(item.get_i64("n").unwrap());
        }
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn json_lines_source_skips_blank_lines() {
        let data = "{\"a\":1}\n\n{\"a\":2}\n";
        let mut s = JsonLinesSource::new(std::io::Cursor::new(data));
        assert_eq!(s.next_item().unwrap().unwrap().get_i64("a"), Some(1));
        assert_eq!(s.next_item().unwrap().unwrap().get_i64("a"), Some(2));
        assert!(s.next_item().unwrap().is_none());
    }

    #[test]
    fn json_lines_source_propagates_parse_errors() {
        let mut s = JsonLinesSource::new(std::io::Cursor::new("not-json\n"));
        assert!(s.next_item().is_err());
    }
}
