//! Deterministic replay: a single-threaded, seeded scheduler for topologies.
//!
//! The threaded [`crate::runtime::Runtime`] runs one OS thread per process,
//! so the interleaving of queue operations is up to the kernel scheduler and
//! differs run to run. That makes "the recognition output is independent of
//! the interleaving" an untestable claim: a race observed once may never
//! reproduce. [`ReplayRuntime`] closes that gap by executing the *same*
//! materialised workers (same supervised per-item semantics, same fault
//! policies, same metrics) on a single thread, where a seeded RNG picks
//! which ready process performs its next step. One seed ⇒ one exact,
//! reproducible interleaving; N seeds ⇒ N distinct interleavings. A test can
//! therefore assert that an output is invariant across schedules, and any
//! divergence comes with the seed that replays it.
//!
//! A *step* of a process is: flush previously produced items that were
//! waiting for queue space, else consume one input item and run it through
//! the processor chain, else advance the end-of-stream protocol (processor
//! `finish` flushes, EOS markers, sink flush). A process is *blocked* when
//! its input queue is empty (but open) or an output queue it must write to
//! is full. On a validated acyclic topology some process can always run;
//! if ever none can, the scheduler reports
//! [`StreamsError::ReplayDeadlock`] instead of hanging.

use crate::error::StreamsError;
use crate::item::DataItem;
use crate::metrics::MetricsRegistry;
use crate::queue::TryRecv;
use crate::runtime::{materialize, ProcInput, ProcOutput, RunStats, Worker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Executes a [`crate::topology::Topology`] single-threaded under a seeded
/// scheduler. Drop-in alternative to [`crate::runtime::Runtime`]: same
/// validation, same supervision, same [`RunStats`].
pub struct ReplayRuntime {
    topology: crate::topology::Topology,
    seed: u64,
    metrics: Arc<MetricsRegistry>,
}

impl ReplayRuntime {
    /// Wraps a topology; `seed` fully determines the schedule.
    pub fn new(topology: crate::topology::Topology, seed: u64) -> ReplayRuntime {
        ReplayRuntime { topology, seed, metrics: Arc::new(MetricsRegistry::new()) }
    }

    /// Uses an externally owned metrics registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> ReplayRuntime {
        self.metrics = metrics;
        self
    }

    /// The registry this runtime records into.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Runs the topology to completion under the seeded schedule.
    pub fn run(self) -> Result<RunStats, StreamsError> {
        let metrics = self.metrics;
        let mut workers: Vec<StepWorker> =
            materialize(self.topology, &metrics)?.into_iter().map(StepWorker::new).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        loop {
            // The scheduler's only nondeterminism source: draw uniformly
            // among unfinished processes until one makes progress. Blocked
            // picks are removed and redrawn, so a round either progresses or
            // proves that every unfinished process is stuck.
            let mut candidates: Vec<usize> = workers
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s.phase, Phase::Done))
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let mut progressed = false;
            while !candidates.is_empty() {
                let pick = rng.random_range(0..candidates.len());
                let idx = candidates.swap_remove(pick);
                if matches!(workers[idx].step(), Step::Progressed) {
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                let blocked = workers
                    .iter()
                    .filter(|s| !matches!(s.phase, Phase::Done))
                    .map(|s| s.worker.name.clone())
                    .collect();
                return Err(StreamsError::ReplayDeadlock { blocked });
            }
        }

        let mut stats = RunStats::default();
        let mut first_error = None;
        for s in workers {
            stats.per_process.insert(s.worker.name.clone(), (s.consumed, s.emitted));
            first_error = first_error.or(s.error);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }
}

/// Where a process is in its lifecycle.
enum Phase {
    /// Consuming input items.
    Pump,
    /// Input exhausted; flushing processor `finish` stages from this index.
    Finish(usize),
    /// Propagating end-of-stream to the outputs.
    Eos,
    /// Fully terminated.
    Done,
}

enum Step {
    /// The process did observable work.
    Progressed,
    /// The process cannot run right now (empty input / full output queue).
    Blocked,
    /// The process already terminated.
    Done,
}

/// One process, executed in scheduler-driven steps instead of a thread. The
/// wrapped [`Worker`] is the exact object the threaded runtime would spawn;
/// only the *driving* differs. Items produced while an output queue is full
/// wait in `outbox` (keyed by output index) — a thread would block inside
/// `send`, a step worker must instead yield back to the scheduler.
struct StepWorker {
    worker: Worker,
    phase: Phase,
    outbox: VecDeque<(usize, DataItem)>,
    consumed: u64,
    emitted: u64,
    error: Option<StreamsError>,
}

impl StepWorker {
    fn new(worker: Worker) -> StepWorker {
        StepWorker {
            worker,
            phase: Phase::Pump,
            outbox: VecDeque::new(),
            consumed: 0,
            emitted: 0,
            error: None,
        }
    }

    /// An unrecoverable fault: remember the first error, drop undeliverable
    /// output and jump to EOS propagation (the threaded worker does the same
    /// by unwinding `pump` and then finishing its outputs).
    fn fail(&mut self, e: StreamsError) {
        self.error.get_or_insert(e);
        self.outbox.clear();
        self.phase = Phase::Eos;
    }

    /// Queues one chain-emitted item for delivery (every output under
    /// broadcast dispatch; the stamped shard's output — plus periodic
    /// watermark broadcasts — on a synthesized partitioner), then delivers as
    /// much as currently fits. The delivery plan is computed by the same
    /// [`Dispatch`](crate::partition::Dispatch) logic the threaded runtime
    /// uses, so per-queue item sequences are identical across runtimes.
    fn emit(&mut self, item: DataItem) {
        self.emitted += 1;
        self.worker.stage.items_out.inc();
        let n_outputs = self.worker.outputs.len();
        for (idx, it) in self.worker.dispatch.plan(n_outputs, item) {
            self.outbox.push_back((idx, it));
        }
        self.flush_outbox();
    }

    /// Delivers outbox items in order until one hits a full queue. Returns
    /// whether *any* item was delivered — a partial flush is progress, and
    /// reporting it as blocked could convince the scheduler of a deadlock
    /// that the already-polled downstream consumer would have resolved.
    fn flush_outbox(&mut self) -> bool {
        let mut delivered = false;
        while let Some((idx, item)) = self.outbox.pop_front() {
            match &mut self.worker.outputs[idx] {
                ProcOutput::Queue(tx) => {
                    if let Err(item) = tx.try_send(item) {
                        self.outbox.push_front((idx, item));
                        return delivered;
                    }
                    delivered = true;
                }
                ProcOutput::Sink(s) => {
                    if let Err(e) = s.write_item(item) {
                        self.fail(e);
                        return true;
                    }
                    delivered = true;
                }
                ProcOutput::Discard => delivered = true,
            }
        }
        delivered
    }

    fn step(&mut self) -> Step {
        if !self.outbox.is_empty() {
            return if self.flush_outbox() { Step::Progressed } else { Step::Blocked };
        }
        match self.phase {
            Phase::Pump => {
                // One step consumes up to `batch_size` items (like the
                // threaded batched pump, whatever is available counts as a
                // batch — the step never waits for a full one). Sources
                // mirror the threaded runtime too: one `next_batch` call per
                // step, which for live sources degrades to a single item.
                let batch = self.worker.batch_size.max(1);
                let mut drained = Vec::new();
                let mut ended = false;
                match &mut self.worker.input {
                    ProcInput::Source(s) => match s.next_batch(batch, &mut drained) {
                        Ok(0) => ended = true,
                        Ok(_) => {}
                        Err(e) => {
                            self.fail(e);
                            return Step::Progressed;
                        }
                    },
                    ProcInput::Queue(q) => {
                        while drained.len() < batch {
                            match q.try_recv() {
                                TryRecv::Item(item) => drained.push(item),
                                TryRecv::Ended => {
                                    ended = true;
                                    break;
                                }
                                TryRecv::Empty => break,
                            }
                        }
                    }
                }
                if drained.is_empty() && !ended {
                    return Step::Blocked;
                }
                for item in drained {
                    self.consumed += 1;
                    match self.worker.process_input(item) {
                        Ok(Some(out)) => self.emit(out),
                        Ok(None) => {}
                        Err(e) => {
                            // The rest of the batch is dropped, exactly like
                            // the threaded pump unwinding mid-batch.
                            self.fail(e);
                            return Step::Progressed;
                        }
                    }
                }
                if ended {
                    // Trailing items must not be confused with the last
                    // consumed item by a restart (mirrors the threaded pump).
                    self.worker.entry_item = None;
                    self.phase = Phase::Finish(0);
                }
                Step::Progressed
            }
            Phase::Finish(i) if i < self.worker.chain.len() => {
                let started = Instant::now();
                let trailing = self.worker.run_finish(i);
                self.worker.stage.process_ns.record(started.elapsed());
                match trailing {
                    Ok(items) => {
                        for item in items {
                            match self.worker.run_chain(i + 1, item) {
                                Ok(Some(out)) => self.emit(out),
                                Ok(None) => {}
                                Err(e) => {
                                    self.fail(e);
                                    return Step::Progressed;
                                }
                            }
                        }
                        self.phase = Phase::Finish(i + 1);
                    }
                    Err(e) => self.fail(e),
                }
                Step::Progressed
            }
            Phase::Finish(_) | Phase::Eos => {
                for o in &mut self.worker.outputs {
                    match o {
                        ProcOutput::Queue(tx) => tx.finish(),
                        ProcOutput::Sink(s) => {
                            if let Err(e) = s.flush() {
                                self.error.get_or_insert(e);
                            }
                        }
                        ProcOutput::Discard => {}
                    }
                }
                self.phase = Phase::Done;
                Step::Progressed
            }
            Phase::Done => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DeadLetterQueue, FaultPolicy};
    use crate::processor::{Context, FnProcessor};
    use crate::sink::{CollectSink, CountSink};
    use crate::source::VecSource;
    use crate::topology::{Input, Output, Topology};

    fn numbers(n: i64) -> VecSource {
        VecSource::new((0..n).map(|i| DataItem::new().with("n", i)))
    }

    /// source → double → q → collect, with a deliberately tiny queue so the
    /// scheduler exercises the blocked/flush paths.
    fn linear_topology(sink: &CollectSink) -> Topology {
        let mut t = Topology::new();
        t.add_source("nums", numbers(50));
        t.add_queue("q", 2);
        t.process("double")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|mut item: DataItem, _: &mut Context| {
                let n = item.get_i64("n").unwrap();
                item.set("n", n * 2);
                Ok(Some(item))
            }))
            .output(Output::Queue("q".into()))
            .done();
        t.process("collect")
            .input(Input::Queue("q".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        t
    }

    #[test]
    fn replay_matches_threaded_semantics() {
        let sink = CollectSink::shared();
        let stats = ReplayRuntime::new(linear_topology(&sink), 1).run().unwrap();
        let values: Vec<i64> = sink.items().iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert_eq!(values, (0..50).map(|n| n * 2).collect::<Vec<_>>());
        assert_eq!(stats.per_process["double"], (50, 50));
        assert_eq!(stats.per_process["collect"], (50, 50));
    }

    #[test]
    fn same_seed_same_schedule_different_seed_may_differ() {
        // Fan-in from two sources: the arrival order at the shared queue is
        // pure scheduling. Same seed ⇒ byte-identical order; across many
        // seeds at least two orders must differ, proving the scheduler
        // actually explores interleavings.
        let run = |seed: u64| {
            let mut t = Topology::new();
            t.add_source("a", VecSource::new((0..10).map(|i| DataItem::new().with("a", i))));
            t.add_source("b", VecSource::new((0..10).map(|i| DataItem::new().with("b", i))));
            t.add_queue("merged", 4);
            t.process("pa")
                .input(Input::Stream("a".into()))
                .output(Output::Queue("merged".into()))
                .done();
            t.process("pb")
                .input(Input::Stream("b".into()))
                .output(Output::Queue("merged".into()))
                .done();
            let sink = CollectSink::shared();
            t.process("merge")
                .input(Input::Queue("merged".into()))
                .output(Output::Sink(Box::new(sink.clone())))
                .done();
            ReplayRuntime::new(t, seed).run().unwrap();
            sink.items()
        };
        assert_eq!(run(7), run(7), "a seed pins the interleaving exactly");
        let baseline = run(0);
        assert!(
            (1..16).any(|seed| run(seed) != baseline),
            "16 seeds must yield at least two distinct interleavings"
        );
    }

    #[test]
    fn fan_out_and_finish_items_behave_as_threaded() {
        struct Tail;
        impl crate::processor::Processor for Tail {
            fn process(
                &mut self,
                item: DataItem,
                _ctx: &mut Context,
            ) -> Result<Option<DataItem>, StreamsError> {
                Ok(Some(item))
            }
            fn finish(&mut self, _ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
                Ok(vec![DataItem::new().with("summary", true)])
            }
        }
        let mut t = Topology::new();
        t.add_source("nums", numbers(5));
        t.add_queue("q1", 2);
        t.add_queue("q2", 2);
        t.process("p")
            .input(Input::Stream("nums".into()))
            .processor(Tail)
            .output(Output::Queue("q1".into()))
            .output(Output::Queue("q2".into()))
            .done();
        let s1 = CollectSink::shared();
        let s2 = CountSink::shared();
        t.process("c1")
            .input(Input::Queue("q1".into()))
            .output(Output::Sink(Box::new(s1.clone())))
            .done();
        t.process("c2")
            .input(Input::Queue("q2".into()))
            .output(Output::Sink(Box::new(s2.clone())))
            .done();
        ReplayRuntime::new(t, 3).run().unwrap();
        assert_eq!(s1.len(), 6, "5 items + 1 finish summary broadcast");
        assert_eq!(s2.count(), 6);
        assert!(s1.items().iter().any(|i| i.contains("summary")));
    }

    #[test]
    fn processor_error_fails_run_and_still_terminates_downstream() {
        let mut t = Topology::new();
        t.add_source("nums", numbers(10));
        t.add_queue("q", 4);
        t.process("boom")
            .input(Input::Stream("nums".into()))
            .processor(FnProcessor::new(|item: DataItem, _: &mut Context| {
                if item.get_i64("n") == Some(3) {
                    Err(StreamsError::ServiceError { detail: "kaput".into() })
                } else {
                    Ok(Some(item))
                }
            }))
            .output(Output::Queue("q".into()))
            .done();
        let sink = CountSink::shared();
        t.process("down")
            .input(Input::Queue("q".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let err = ReplayRuntime::new(t, 0).run().unwrap_err();
        assert!(matches!(err, StreamsError::ProcessorFailed { .. }));
        assert_eq!(sink.count(), 3, "items before the fault were delivered");
    }

    #[test]
    fn dead_letter_drain_order_is_deterministic_under_replay() {
        // Two processes dead-letter every odd item into the same shared
        // queue. The threaded runtime interleaves their pushes arbitrarily;
        // under replay the drain order is a pure function of the seed, which
        // is what lets a regression test pin it at all.
        let run = |seed: u64| {
            let dl = DeadLetterQueue::shared();
            let mut t = Topology::new();
            let sink = CountSink::shared();
            for name in ["pa", "pb"] {
                t.add_source(&format!("src-{name}"), numbers(8));
                t.process(name)
                    .input(Input::Stream(format!("src-{name}")))
                    .fault_policy(FaultPolicy::DeadLetter { queue: dl.clone() })
                    .processor(FnProcessor::new(|item: DataItem, _: &mut Context| {
                        if item.get_i64("n").unwrap() % 2 == 1 {
                            Err(StreamsError::ServiceError { detail: "odd".into() })
                        } else {
                            Ok(Some(item))
                        }
                    }))
                    .output(Output::Sink(Box::new(sink.clone())))
                    .done();
            }
            ReplayRuntime::new(t, seed).run().unwrap();
            dl.drain()
                .into_iter()
                .map(|r| (r.process, r.item.unwrap().get_i64("n").unwrap()))
                .collect::<Vec<_>>()
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed, same drain order");
        assert_eq!(a.len(), 8, "both processes dead-letter their four odd items");
        for name in ["pa", "pb"] {
            let per: Vec<i64> = a.iter().filter(|(p, _)| p == name).map(|&(_, n)| n).collect();
            assert_eq!(per, vec![1, 3, 5, 7], "per-process order is FIFO regardless of seed");
        }
    }

    #[test]
    fn replay_records_metrics_like_threaded() {
        let sink = CollectSink::shared();
        let rt = ReplayRuntime::new(linear_topology(&sink), 5);
        let metrics = rt.metrics();
        rt.run().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.stages["double"].items_in, 50);
        assert_eq!(snap.stages["double"].items_out, 50);
        assert_eq!(snap.queues["q"].sent, 50);
        assert_eq!(snap.queues["q"].received, 50);
        assert_eq!(snap.queues["q"].depth, 0);
    }
}
