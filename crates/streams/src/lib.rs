//! # insight-streams — a Streams-style dataflow middleware
//!
//! A Rust re-implementation of the concept set of the *Streams* framework
//! (Bockermann & Blom, TU Dortmund TR 5/2012) that forms the backbone of the
//! EDBT 2014 urban traffic management system:
//!
//! * **data items** — sets of key/value pairs flowing through the graph
//!   ([`item::DataItem`]);
//! * **processors** — functions applied to each item ([`processor::Processor`]),
//!   composed into sequences;
//! * **processes** — nodes of the data-flow graph: a source (stream or queue)
//!   plus a processor chain plus outputs ([`topology`]);
//! * **queues** — bounded channels connecting processes ([`queue`]);
//! * **services** — named, shared function sets accessible throughout the
//!   application ([`service::ServiceRegistry`]);
//! * an **XML description language** for data-flow graphs ([`xml`]), compiled
//!   into a runnable topology;
//! * a **multi-threaded runtime** executing one process per thread
//!   ([`runtime`]), plus a **deterministic replay runtime** driving the same
//!   workers single-threaded under a seeded scheduler ([`replay`]);
//! * **fault supervision** — per-process fault policies, panic isolation and
//!   dead-letter queues ([`fault`]), plus a deterministic fault-injection
//!   harness for robustness testing ([`chaos`]).
//!
//! ```
//! use insight_streams::prelude::*;
//!
//! let mut t = Topology::new();
//! t.add_source("numbers", VecSource::new((0..10).map(|i| {
//!     DataItem::new().with("n", i as i64)
//! })));
//! t.add_queue("evens", 16);
//! t.process("keep-even")
//!     .input(Input::Stream("numbers".into()))
//!     .processor(FnProcessor::new(|item: DataItem, _ctx: &mut Context| {
//!         Ok(item.get_i64("n").filter(|n| n % 2 == 0).map(|_| item.clone()))
//!     }))
//!     .output(Output::Queue("evens".into()))
//!     .done();
//! let collect = CollectSink::shared();
//! t.process("collect")
//!     .input(Input::Queue("evens".into()))
//!     .output(Output::Sink(Box::new(collect.clone())))
//!     .done();
//! Runtime::new(t).run().unwrap();
//! assert_eq!(collect.items().len(), 5);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod chaos;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod intern;
pub mod item;
pub mod json;
pub mod metrics;
pub mod partition;
pub mod processor;
pub mod queue;
pub mod replay;
pub mod runtime;
pub mod service;
pub mod sink;
pub mod source;
pub mod spsc;
pub mod topology;
pub mod xml;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::checkpoint::{Checkpoint, CheckpointStore, Checkpointable, StateBlob};
    pub use crate::error::StreamsError;
    pub use crate::fault::{DeadLetterQueue, DeadLetterRecord, FaultPolicy};
    pub use crate::item::{DataItem, Value};
    pub use crate::metrics::{MetricsRegistry, MetricsSnapshot};
    pub use crate::processor::{Context, FnProcessor, Processor};
    pub use crate::replay::ReplayRuntime;
    pub use crate::runtime::Runtime;
    pub use crate::service::{Service, ServiceRegistry};
    pub use crate::sink::{CollectSink, CountSink, NullSink, Sink};
    pub use crate::source::{FnSource, Source, VecSource};
    pub use crate::topology::{Input, Output, Topology};
}
