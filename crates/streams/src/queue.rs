//! Queues: bounded channels connecting processes.
//!
//! Processes take *a stream or a queue* as input; queues also serve as the
//! outputs derived events are emitted to (the RTEC processor of the paper
//! emits CEs "to a queue in the Streams framework"). Queues are bounded,
//! providing backpressure, multi-producer and single-consumer.

use crate::item::DataItem;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Messages travelling through a queue: items plus per-producer end-of-stream
/// markers.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A data item.
    Item(DataItem),
    /// One producer finished; the consumer terminates after collecting the
    /// marker of every producer.
    Eos,
}

/// Producer handle of a queue (cloneable: queues are multi-producer).
#[derive(Clone)]
pub struct QueueSender {
    tx: Sender<Message>,
}

impl QueueSender {
    /// Sends one item, blocking while the queue is full. Returns `false` if
    /// the consumer is gone.
    pub fn send(&self, item: DataItem) -> bool {
        self.tx.send(Message::Item(item)).is_ok()
    }

    /// Signals that this producer is done.
    pub fn finish(&self) {
        let _ = self.tx.send(Message::Eos);
    }
}

/// Consumer handle of a queue (single consumer).
pub struct QueueReceiver {
    rx: Receiver<Message>,
    producers: usize,
    eos_seen: usize,
}

impl QueueReceiver {
    /// Receives the next item, blocking until one is available or every
    /// producer finished (`None`).
    pub fn recv(&mut self) -> Option<DataItem> {
        loop {
            if self.eos_seen >= self.producers {
                return None;
            }
            match self.rx.recv() {
                Ok(Message::Item(item)) => return Some(item),
                Ok(Message::Eos) => self.eos_seen += 1,
                Err(_) => return None, // all senders dropped
            }
        }
    }

    /// Like [`QueueReceiver::recv`] with a timeout; `Ok(None)` = end of
    /// stream, `Err(Timeout)` = nothing arrived in time.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<DataItem>, Timeout> {
        loop {
            if self.eos_seen >= self.producers {
                return Ok(None);
            }
            match self.rx.recv_timeout(timeout) {
                Ok(Message::Item(item)) => return Ok(Some(item)),
                Ok(Message::Eos) => self.eos_seen += 1,
                Err(RecvTimeoutError::Timeout) => return Err(Timeout),
                Err(RecvTimeoutError::Disconnected) => return Ok(None),
            }
        }
    }
}

/// Returned by [`QueueReceiver::recv_timeout`] when no item arrived in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout;

/// Creates a bounded queue for `producers` producers.
pub fn queue(capacity: usize, producers: usize) -> (QueueSender, QueueReceiver) {
    let (tx, rx) = bounded(capacity.max(1));
    (QueueSender { tx }, QueueReceiver { rx, producers, eos_seen: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_then_eos() {
        let (tx, mut rx) = queue(4, 1);
        tx.send(DataItem::new().with("n", 1i64));
        tx.send(DataItem::new().with("n", 2i64));
        tx.finish();
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(1));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(2));
        assert!(rx.recv().is_none());
        assert!(rx.recv().is_none(), "stays terminated");
    }

    #[test]
    fn waits_for_all_producers() {
        let (tx1, mut rx) = queue(4, 2);
        let tx2 = tx1.clone();
        tx1.send(DataItem::new().with("p", 1i64));
        tx1.finish();
        tx2.send(DataItem::new().with("p", 2i64));
        // One EOS received, still one producer alive: items flow.
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_some());
        tx2.finish();
        assert!(rx.recv().is_none());
    }

    #[test]
    fn dropped_senders_terminate() {
        let (tx, mut rx) = queue(4, 1);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn timeout_variant() {
        let (tx, mut rx) = queue(4, 1);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err(), "times out while empty");
        tx.send(DataItem::new());
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Ok(Some(_))));
        tx.finish();
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Ok(None)));
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        let (tx, mut rx) = queue(1, 1);
        tx.send(DataItem::new().with("n", 1i64));
        let handle = std::thread::spawn(move || {
            // This send blocks until the consumer drains one item.
            tx.send(DataItem::new().with("n", 2i64));
            tx.finish();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(1));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(2));
        assert!(rx.recv().is_none());
        handle.join().unwrap();
    }
}
