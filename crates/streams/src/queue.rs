//! Queues: bounded channels connecting processes.
//!
//! Processes take *a stream or a queue* as input; queues also serve as the
//! outputs derived events are emitted to (the RTEC processor of the paper
//! emits CEs "to a queue in the Streams framework"). Queues are bounded,
//! providing backpressure, multi-producer and single-consumer.
//!
//! # Termination accounting
//!
//! The queue is created for a declared number of *logical producers*, each
//! expected to call [`QueueSender::finish`] exactly once. Two mechanisms
//! decide end-of-stream, and **both** only take effect once the buffer has
//! drained:
//!
//! 1. **EOS markers** — `finish()` increments `eos_seen`; the stream ends
//!    when `eos_seen ≥ producers`. `finish()` is idempotent *per handle*: a
//!    handle that finishes twice (e.g. a worker that flushes and is then
//!    dropped by supervision code that finishes again) still counts as one
//!    producer, so a double `finish()` cannot terminate the stream while
//!    another declared producer is still live.
//! 2. **Handle liveness** — every live [`QueueSender`] (clones included) is
//!    counted; when the count reaches zero the stream ends even if EOS
//!    markers are missing (a producer thread that panicked can never send
//!    again, so waiting for its marker would wedge the consumer forever).
//!
//! Items buffered before *any* `finish()` call are never lost: `recv`
//! returns `None` only once the buffer is empty **and** one of the two
//! conditions above holds, so concurrent `finish()` calls racing with
//! in-flight `send`s cannot reorder or drop the already-buffered prefix —
//! the per-producer FIFO order of the buffer is exactly send order.

use crate::item::DataItem;
use crate::metrics::QueueMetrics;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Messages travelling through a queue: items plus per-producer end-of-stream
/// markers.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A data item.
    Item(DataItem),
    /// One producer finished; the consumer terminates after collecting the
    /// marker of every producer.
    Eos,
}

struct Inner {
    buffer: VecDeque<DataItem>,
    /// `finish()` calls seen so far.
    eos_seen: usize,
    /// Live `QueueSender` handles (clones included).
    handles: usize,
    consumer_alive: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    producers: usize,
    metrics: Arc<QueueMetrics>,
}

impl Shared {
    /// End of stream: every declared producer finished, or no sender handle
    /// is left alive to ever produce more.
    fn stream_ended(&self, inner: &Inner) -> bool {
        inner.eos_seen >= self.producers || inner.handles == 0
    }
}

/// Mutex+Condvar producer handle (cloneable: multi-producer).
struct MpmcSender {
    shared: Arc<Shared>,
    /// Whether *this handle* already delivered its EOS marker; makes
    /// [`QueueSender::finish`] idempotent per handle (see the module docs on
    /// termination accounting).
    finished: AtomicBool,
}

impl Clone for MpmcSender {
    fn clone(&self) -> MpmcSender {
        self.shared.inner.lock().unwrap().handles += 1;
        MpmcSender { shared: Arc::clone(&self.shared), finished: AtomicBool::new(false) }
    }
}

impl Drop for MpmcSender {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.handles -= 1;
        if inner.handles == 0 {
            // Last handle gone: wake a consumer waiting on a queue that will
            // never receive the outstanding finish() markers.
            self.shared.not_empty.notify_all();
        }
    }
}

impl MpmcSender {
    /// Sends one item, blocking while the queue is full. Returns `false` if
    /// the consumer is gone.
    fn send(&self, item: DataItem) -> bool {
        let metrics = &self.shared.metrics;
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.buffer.len() >= self.shared.capacity && inner.consumer_alive {
            metrics.send_stalls.inc();
            let stalled_at = Instant::now();
            while inner.buffer.len() >= self.shared.capacity && inner.consumer_alive {
                inner = self.shared.not_full.wait(inner).unwrap();
            }
            metrics.stall_ns.add(stalled_at.elapsed().as_nanos() as u64);
        }
        if !inner.consumer_alive {
            return false;
        }
        inner.buffer.push_back(item);
        metrics.sent.inc();
        metrics.depth.add(1);
        self.shared.not_empty.notify_one();
        true
    }

    /// Sends a batch of items under a single lock acquisition, blocking in
    /// chunks while the queue is full. Items land in the buffer in vector
    /// order, indistinguishable from the same sequence of [`QueueSender::send`]
    /// calls — batching changes lock traffic, never observable FIFO order.
    /// Returns `false` (discarding the remainder) if the consumer is gone.
    fn send_batch(&self, items: Vec<DataItem>) -> bool {
        if items.is_empty() {
            return true;
        }
        let n = items.len();
        let metrics = &self.shared.metrics;
        let mut inner = self.shared.inner.lock().unwrap();
        let mut sent = 0u64;
        for item in items {
            if inner.buffer.len() >= self.shared.capacity && inner.consumer_alive {
                metrics.send_stalls.inc();
                let stalled_at = Instant::now();
                while inner.buffer.len() >= self.shared.capacity && inner.consumer_alive {
                    // The prefix pushed so far has not been announced yet —
                    // wake the consumer so it can drain and make room.
                    self.shared.not_empty.notify_one();
                    inner = self.shared.not_full.wait(inner).unwrap();
                }
                metrics.stall_ns.add(stalled_at.elapsed().as_nanos() as u64);
            }
            if !inner.consumer_alive {
                break;
            }
            inner.buffer.push_back(item);
            sent += 1;
        }
        if sent > 0 {
            metrics.sent.add(sent);
            metrics.depth.add(sent as i64);
            metrics.batch_sizes.record_ns(sent);
            self.shared.not_empty.notify_one();
        }
        sent == n as u64
    }

    /// Sends one item without blocking. `Ok(true)` means the item was
    /// enqueued; `Ok(false)` means the consumer is gone and the item was
    /// discarded (matching [`QueueSender::send`]); `Err(item)` returns the
    /// item because the queue is full. Backpressure stalls are *not*
    /// recorded: a rejected `try_send` costs the caller nothing, unlike a
    /// blocked `send` (used by the deterministic replay scheduler, which
    /// must never block).
    fn try_send(&self, item: DataItem) -> Result<bool, DataItem> {
        let mut inner = self.shared.inner.lock().unwrap();
        if !inner.consumer_alive {
            return Ok(false);
        }
        if inner.buffer.len() >= self.shared.capacity {
            return Err(item);
        }
        inner.buffer.push_back(item);
        self.shared.metrics.sent.inc();
        self.shared.metrics.depth.add(1);
        self.shared.not_empty.notify_one();
        Ok(true)
    }

    /// Whether a `try_send` would currently be accepted (the consumer is
    /// alive and the buffer has room). Advisory under concurrency; exact
    /// under a single-threaded scheduler.
    fn has_capacity(&self) -> bool {
        let inner = self.shared.inner.lock().unwrap();
        inner.consumer_alive && inner.buffer.len() < self.shared.capacity
    }

    /// Signals that this producer is done. Idempotent per handle: only the
    /// first call on a given handle counts towards the queue's EOS total.
    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut inner = self.shared.inner.lock().unwrap();
        inner.eos_seen += 1;
        if inner.eos_seen >= self.shared.producers {
            self.shared.not_empty.notify_all();
        }
    }
}

/// Mutex+Condvar consumer handle (single consumer).
struct MpmcReceiver {
    shared: Arc<Shared>,
}

impl Drop for MpmcReceiver {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.consumer_alive = false;
        // Unblock producers stuck on a full queue.
        self.shared.not_full.notify_all();
    }
}

impl MpmcReceiver {
    fn pop(&self, inner: &mut Inner) -> DataItem {
        let item = inner.buffer.pop_front().expect("pop on non-empty buffer");
        self.shared.metrics.received.inc();
        self.shared.metrics.depth.add(-1);
        self.shared.not_full.notify_one();
        item
    }

    /// Receives the next item, blocking until one is available or every
    /// producer finished (`None`).
    fn recv(&mut self) -> Option<DataItem> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.buffer.is_empty() {
                return Some(self.pop(&mut inner));
            }
            if self.shared.stream_ended(&inner) {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Receives up to `max` items under a single lock acquisition, blocking
    /// until at least one item is available or the stream ends (`None`). The
    /// call never waits for a *full* batch: whatever is buffered when the
    /// first item becomes available is drained, so batching adds no latency
    /// over repeated [`QueueReceiver::recv`] calls.
    fn recv_batch(&mut self, max: usize) -> Option<Vec<DataItem>> {
        let max = max.max(1);
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.buffer.is_empty() {
                let n = inner.buffer.len().min(max);
                let batch: Vec<DataItem> = inner.buffer.drain(..n).collect();
                let metrics = &self.shared.metrics;
                metrics.received.add(n as u64);
                metrics.depth.add(-(n as i64));
                metrics.batch_sizes.record_ns(n as u64);
                self.shared.not_full.notify_all();
                return Some(batch);
            }
            if self.shared.stream_ended(&inner) {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Receives without blocking: the front item if one is buffered,
    /// [`TryRecv::Ended`] once every producer finished (or vanished) and the
    /// buffer drained, [`TryRecv::Empty`] when the queue is merely empty but
    /// the stream is still open. Used by the deterministic replay scheduler,
    /// where a blocked `recv` on the single thread would deadlock the graph.
    fn try_recv(&mut self) -> TryRecv {
        let mut inner = self.shared.inner.lock().unwrap();
        if !inner.buffer.is_empty() {
            TryRecv::Item(self.pop(&mut inner))
        } else if self.shared.stream_ended(&inner) {
            TryRecv::Ended
        } else {
            TryRecv::Empty
        }
    }

    /// Like [`QueueReceiver::recv`] with a timeout; `Ok(None)` = end of
    /// stream, `Err(Timeout)` = nothing arrived in time.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<DataItem>, Timeout> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.buffer.is_empty() {
                return Ok(Some(self.pop(&mut inner)));
            }
            if self.shared.stream_ended(&inner) {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Timeout);
            }
            let (guard, _) = self.shared.not_empty.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }
}

/// Returned by [`QueueReceiver::recv_timeout`] when no item arrived in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout;

/// Outcome of a non-blocking [`QueueReceiver::try_recv`].
#[derive(Debug, Clone, PartialEq)]
pub enum TryRecv {
    /// The front item of the buffer.
    Item(DataItem),
    /// Buffer empty, but producers may still send.
    Empty,
    /// Buffer empty and the stream is terminated (all EOS markers collected
    /// or no sender handle left).
    Ended,
}

/// Producer handle of a queue. Cloneable for MPMC queues (multi-producer);
/// cloning an SPSC sender panics — the ring has exactly one producer by
/// construction, and a second handle would silently corrupt its ordering
/// guarantees.
pub struct QueueSender(SenderImpl);

enum SenderImpl {
    Mpmc(MpmcSender),
    Spsc(crate::spsc::SpscSender),
}

impl Clone for QueueSender {
    fn clone(&self) -> QueueSender {
        match &self.0 {
            SenderImpl::Mpmc(tx) => QueueSender(SenderImpl::Mpmc(tx.clone())),
            SenderImpl::Spsc(_) => {
                panic!("SPSC queue senders are single-owner and cannot be cloned")
            }
        }
    }
}

impl QueueSender {
    /// Sends one item, blocking while the queue is full. Returns `false` if
    /// the consumer is gone.
    pub fn send(&self, item: DataItem) -> bool {
        match &self.0 {
            SenderImpl::Mpmc(tx) => tx.send(item),
            SenderImpl::Spsc(tx) => tx.send(item),
        }
    }

    /// Sends a batch of items, blocking while the queue is full. Items land
    /// in vector order, indistinguishable from the same sequence of
    /// [`QueueSender::send`] calls — batching changes lock/wake traffic,
    /// never observable FIFO order. Returns `false` (discarding the
    /// remainder) if the consumer is gone.
    pub fn send_batch(&self, items: Vec<DataItem>) -> bool {
        match &self.0 {
            SenderImpl::Mpmc(tx) => tx.send_batch(items),
            SenderImpl::Spsc(tx) => tx.send_batch(items),
        }
    }

    /// Sends one item without blocking. `Ok(true)` means the item was
    /// enqueued; `Ok(false)` means the consumer is gone and the item was
    /// discarded (matching [`QueueSender::send`]); `Err(item)` returns the
    /// item because the queue is full. Backpressure stalls are *not*
    /// recorded: a rejected `try_send` costs the caller nothing, unlike a
    /// blocked `send` (used by the deterministic replay scheduler, which
    /// must never block).
    pub fn try_send(&self, item: DataItem) -> Result<bool, DataItem> {
        match &self.0 {
            SenderImpl::Mpmc(tx) => tx.try_send(item),
            SenderImpl::Spsc(tx) => tx.try_send(item),
        }
    }

    /// Whether a `try_send` would currently be accepted (the consumer is
    /// alive and the buffer has room). Advisory under concurrency; exact
    /// under a single-threaded scheduler.
    pub fn has_capacity(&self) -> bool {
        match &self.0 {
            SenderImpl::Mpmc(tx) => tx.has_capacity(),
            SenderImpl::Spsc(tx) => tx.has_capacity(),
        }
    }

    /// Signals that this producer is done. Idempotent per handle: only the
    /// first call on a given handle counts towards the queue's EOS total.
    pub fn finish(&self) {
        match &self.0 {
            SenderImpl::Mpmc(tx) => tx.finish(),
            SenderImpl::Spsc(tx) => tx.finish(),
        }
    }

    /// Whether this sender feeds a lock-free SPSC ring (picked by
    /// [`materialize`](crate::runtime) for provably single-producer edges).
    pub fn is_spsc(&self) -> bool {
        matches!(self.0, SenderImpl::Spsc(_))
    }
}

/// Consumer handle of a queue (single consumer).
pub struct QueueReceiver(ReceiverImpl);

enum ReceiverImpl {
    Mpmc(MpmcReceiver),
    Spsc(crate::spsc::SpscReceiver),
}

impl QueueReceiver {
    /// Receives the next item, blocking until one is available or every
    /// producer finished (`None`).
    pub fn recv(&mut self) -> Option<DataItem> {
        match &mut self.0 {
            ReceiverImpl::Mpmc(rx) => rx.recv(),
            ReceiverImpl::Spsc(rx) => rx.recv(),
        }
    }

    /// Receives up to `max` items, blocking until at least one item is
    /// available or the stream ends (`None`). The call never waits for a
    /// *full* batch: whatever is buffered when the first item becomes
    /// available is drained, so batching adds no latency over repeated
    /// [`QueueReceiver::recv`] calls.
    pub fn recv_batch(&mut self, max: usize) -> Option<Vec<DataItem>> {
        match &mut self.0 {
            ReceiverImpl::Mpmc(rx) => rx.recv_batch(max),
            ReceiverImpl::Spsc(rx) => rx.recv_batch(max),
        }
    }

    /// Receives without blocking: the front item if one is buffered,
    /// [`TryRecv::Ended`] once every producer finished (or vanished) and the
    /// buffer drained, [`TryRecv::Empty`] when the queue is merely empty but
    /// the stream is still open. Used by the deterministic replay scheduler,
    /// where a blocked `recv` on the single thread would deadlock the graph.
    pub fn try_recv(&mut self) -> TryRecv {
        match &mut self.0 {
            ReceiverImpl::Mpmc(rx) => rx.try_recv(),
            ReceiverImpl::Spsc(rx) => rx.try_recv(),
        }
    }

    /// Like [`QueueReceiver::recv`] with a timeout; `Ok(None)` = end of
    /// stream, `Err(Timeout)` = nothing arrived in time.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<DataItem>, Timeout> {
        match &mut self.0 {
            ReceiverImpl::Mpmc(rx) => rx.recv_timeout(timeout),
            ReceiverImpl::Spsc(rx) => rx.recv_timeout(timeout),
        }
    }
}

/// Creates a bounded queue for `producers` producers.
pub fn queue(capacity: usize, producers: usize) -> (QueueSender, QueueReceiver) {
    queue_with_metrics(capacity, producers, Arc::new(QueueMetrics::default()))
}

/// Like [`queue`], recording depth/throughput/backpressure into the given
/// instruments (typically obtained from a
/// [`MetricsRegistry`](crate::metrics::MetricsRegistry)).
pub fn queue_with_metrics(
    capacity: usize,
    producers: usize,
    metrics: Arc<QueueMetrics>,
) -> (QueueSender, QueueReceiver) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buffer: VecDeque::new(),
            eos_seen: 0,
            handles: 1,
            consumer_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
        producers,
        metrics,
    });
    (
        QueueSender(SenderImpl::Mpmc(MpmcSender {
            shared: Arc::clone(&shared),
            finished: AtomicBool::new(false),
        })),
        QueueReceiver(ReceiverImpl::Mpmc(MpmcReceiver { shared })),
    )
}

/// Creates a lock-free SPSC queue (see [`crate::spsc`]) behind the same
/// handle types. The runtime picks this flavour for edges with exactly one
/// declared producer; semantics (blocking, backpressure, termination, FIFO
/// order, metrics) match the MPMC queue with `producers = 1`.
pub fn spsc_queue_with_metrics(
    capacity: usize,
    metrics: Arc<QueueMetrics>,
) -> (QueueSender, QueueReceiver) {
    let (tx, rx) = crate::spsc::ring_with_metrics(capacity, metrics);
    (QueueSender(SenderImpl::Spsc(tx)), QueueReceiver(ReceiverImpl::Spsc(rx)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_then_eos() {
        let (tx, mut rx) = queue(4, 1);
        tx.send(DataItem::new().with("n", 1i64));
        tx.send(DataItem::new().with("n", 2i64));
        tx.finish();
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(1));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(2));
        assert!(rx.recv().is_none());
        assert!(rx.recv().is_none(), "stays terminated");
    }

    #[test]
    fn waits_for_all_producers() {
        let (tx1, mut rx) = queue(4, 2);
        let tx2 = tx1.clone();
        tx1.send(DataItem::new().with("p", 1i64));
        tx1.finish();
        tx2.send(DataItem::new().with("p", 2i64));
        // One EOS received, still one producer alive: items flow.
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_some());
        tx2.finish();
        assert!(rx.recv().is_none());
    }

    #[test]
    fn dropped_senders_terminate() {
        let (tx, mut rx) = queue(4, 1);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn dropped_clone_without_finish_does_not_wedge() {
        // Regression: a cloned sender dropped without finish() (e.g. its
        // producer thread panicked) used to leave the consumer blocked
        // forever waiting for an EOS marker that can no longer arrive.
        let (tx1, mut rx) = queue(4, 2);
        let tx2 = tx1.clone();
        tx2.send(DataItem::new().with("n", 7i64));
        drop(tx2); // vanishes without finish()
        tx1.finish();
        std::thread::spawn(move || drop(tx1));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(7), "buffered items still drain");
        assert!(rx.recv().is_none(), "stream ends once all handles are gone");
    }

    #[test]
    fn dropped_clone_after_finish_keeps_counting_once() {
        let (tx1, mut rx) = queue(4, 2);
        let tx2 = tx1.clone();
        tx2.finish();
        drop(tx2); // finish + drop of the same handle counts once
        assert!(
            rx.recv_timeout(Duration::from_millis(20)).is_err(),
            "one declared producer is still alive, stream must stay open"
        );
        tx1.finish();
        assert!(rx.recv().is_none());
    }

    #[test]
    fn double_finish_on_one_handle_counts_once() {
        // Regression: `finish()` called twice on the same handle used to
        // count as two producers finishing, terminating the stream while the
        // second declared producer was still live — its buffered items were
        // then silently stranded behind a `None`.
        let (tx1, mut rx) = queue(4, 2);
        let tx2 = tx1.clone();
        tx1.finish();
        tx1.finish(); // idempotent: still only one of two producers done
        assert!(
            rx.recv_timeout(Duration::from_millis(20)).is_err(),
            "stream must stay open for the second producer"
        );
        tx2.send(DataItem::new().with("n", 9i64));
        tx2.finish();
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(9), "late producer's item drains");
        assert!(rx.recv().is_none());
    }

    #[test]
    fn concurrent_finish_preserves_buffered_drain_order() {
        // Items buffered before any finish() must drain in exact send order
        // even while both producers race their EOS markers against the
        // consumer. Deterministic: all sends happen before the threads start.
        let (tx1, mut rx) = queue(8, 2);
        let tx2 = tx1.clone();
        for n in 0..3i64 {
            tx1.send(DataItem::new().with("n", n));
        }
        tx2.send(DataItem::new().with("n", 3i64));
        let h1 = std::thread::spawn(move || tx1.finish());
        let h2 = std::thread::spawn(move || tx2.finish());
        let drained: Vec<i64> =
            std::iter::from_fn(|| rx.recv()).map(|i| i.get_i64("n").unwrap()).collect();
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(drained, vec![0, 1, 2, 3], "FIFO order survives concurrent finish()");
    }

    #[test]
    fn try_send_and_try_recv_never_block() {
        let (tx, mut rx) = queue(1, 1);
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        assert_eq!(tx.try_send(DataItem::new().with("n", 1i64)), Ok(true));
        assert!(!tx.has_capacity());
        // Full queue: the item comes back instead of blocking.
        let bounced = tx.try_send(DataItem::new().with("n", 2i64)).unwrap_err();
        assert_eq!(bounced.get_i64("n"), Some(2));
        assert_eq!(rx.try_recv(), TryRecv::Item(DataItem::new().with("n", 1i64)));
        assert!(tx.has_capacity());
        assert_eq!(rx.try_recv(), TryRecv::Empty, "open stream, empty buffer");
        tx.finish();
        assert_eq!(rx.try_recv(), TryRecv::Ended);
        assert_eq!(rx.try_recv(), TryRecv::Ended, "stays terminated");
    }

    #[test]
    fn try_send_to_dropped_receiver_discards() {
        let (tx, rx) = queue(1, 1);
        drop(rx);
        assert_eq!(tx.try_send(DataItem::new()), Ok(false), "consumer gone, item dropped");
    }

    #[test]
    fn timeout_variant() {
        let (tx, mut rx) = queue(4, 1);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err(), "times out while empty");
        tx.send(DataItem::new());
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Ok(Some(_))));
        tx.finish();
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Ok(None)));
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        let (tx, mut rx) = queue(1, 1);
        tx.send(DataItem::new().with("n", 1i64));
        let handle = std::thread::spawn(move || {
            // This send blocks until the consumer drains one item.
            tx.send(DataItem::new().with("n", 2i64));
            tx.finish();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(1));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(2));
        assert!(rx.recv().is_none());
        handle.join().unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_returns_false() {
        let (tx, rx) = queue(1, 1);
        tx.send(DataItem::new().with("n", 1i64));
        drop(rx);
        assert!(!tx.send(DataItem::new().with("n", 2i64)), "consumer is gone");
    }

    #[test]
    fn batch_roundtrip_preserves_fifo_and_records_sizes() {
        let metrics = Arc::new(QueueMetrics::default());
        let (tx, mut rx) = queue_with_metrics(8, 1, Arc::clone(&metrics));
        assert!(tx.send_batch((0..5).map(|n| DataItem::new().with("n", n as i64)).collect()));
        assert!(tx.send_batch(Vec::new()), "empty batch is a no-op");
        let first = rx.recv_batch(3).unwrap();
        assert_eq!(first.iter().map(|i| i.get_i64("n").unwrap()).collect::<Vec<_>>(), [0, 1, 2]);
        let rest = rx.recv_batch(10).unwrap();
        assert_eq!(rest.iter().map(|i| i.get_i64("n").unwrap()).collect::<Vec<_>>(), [3, 4]);
        tx.finish();
        assert!(rx.recv_batch(4).is_none());
        assert_eq!(metrics.sent.get(), 5);
        assert_eq!(metrics.received.get(), 5);
        let sizes = metrics.batch_sizes.snapshot();
        // One send batch (5) + two recv batches (3, 2); the empty send did
        // not record a sample.
        assert_eq!(sizes.count, 3);
        assert_eq!(sizes.sum_ns, 10);
        assert_eq!(sizes.max_ns, 5);
    }

    #[test]
    fn send_batch_larger_than_capacity_drains_through() {
        // A batch bigger than the queue must interleave with the consumer
        // without deadlock and still arrive in order.
        let (tx, mut rx) = queue(2, 1);
        let producer = std::thread::spawn(move || {
            assert!(tx.send_batch((0..20).map(|n| DataItem::new().with("n", n as i64)).collect()));
            tx.finish();
        });
        let mut seen = Vec::new();
        while let Some(batch) = rx.recv_batch(4) {
            seen.extend(batch.iter().map(|i| i.get_i64("n").unwrap()));
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<i64>>());
    }

    #[test]
    fn send_batch_to_dropped_receiver_returns_false() {
        let (tx, rx) = queue(4, 1);
        drop(rx);
        assert!(!tx.send_batch(vec![DataItem::new()]));
    }

    #[test]
    fn metrics_track_depth_throughput_and_stalls() {
        let metrics = Arc::new(QueueMetrics::default());
        let (tx, mut rx) = queue_with_metrics(1, 1, Arc::clone(&metrics));
        tx.send(DataItem::new().with("n", 1i64));
        let blocked = std::thread::spawn(move || {
            tx.send(DataItem::new().with("n", 2i64));
            tx.finish();
        });
        std::thread::sleep(Duration::from_millis(20));
        while rx.recv().is_some() {}
        blocked.join().unwrap();
        assert_eq!(metrics.sent.get(), 2);
        assert_eq!(metrics.received.get(), 2);
        assert_eq!(metrics.depth.get(), 0);
        assert_eq!(metrics.depth.high_water(), 1);
        assert_eq!(metrics.send_stalls.get(), 1);
        assert!(metrics.stall_ns.get() > 0, "the blocked send waited measurably");
    }
}
