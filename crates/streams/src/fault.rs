//! Fault policies: per-process supervision of processor failures.
//!
//! The paper's inputs are inherently unreliable — SCATS sensors drop
//! readings, bus GPS arrives late or corrupted (§3), crowd workers miss
//! deadlines (§5) — so component failure is a steady-state condition, not an
//! exception. A [`FaultPolicy`] tells the runtime what to do when a
//! processor returns an error **or panics** while handling an item:
//!
//! | policy | behaviour |
//! |---|---|
//! | [`FaultPolicy::FailFast`] | abort the process on the first fault (the pre-supervision behaviour) |
//! | [`FaultPolicy::Skip`] | drop the faulted item and continue; more than `max_consecutive` consecutive faulted items escalates to failure |
//! | [`FaultPolicy::Retry`] | re-run the failing processor on a pristine copy of the item up to `attempts` times with linear backoff, then fail |
//! | [`FaultPolicy::DeadLetter`] | move the offending item plus its error context to a [`DeadLetterQueue`] for post-mortem and continue |
//!
//! Policies are set per process on the topology builder
//! ([`crate::topology::ProcessBuilder::fault_policy`]) or via the
//! `fault-policy` attribute of a `<process>` element in the XML data-flow
//! language ([`FaultPolicy::parse`] documents the attribute grammar).

use crate::error::StreamsError;
use crate::item::DataItem;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the runtime does when a processor errors or panics on an item.
#[derive(Debug, Clone, Default)]
pub enum FaultPolicy {
    /// Abort the whole run on the first fault (the default).
    #[default]
    FailFast,
    /// Drop the faulted item and keep consuming. Output order is preserved:
    /// the output stream equals the input stream minus the faulted items.
    Skip {
        /// A run of more than this many *consecutive* faulted items
        /// escalates to a process failure — a stage that faults on every
        /// item is broken, not unlucky. `usize::MAX` never escalates.
        max_consecutive: usize,
    },
    /// Re-invoke the failing processor with a pristine copy of the item.
    Retry {
        /// Additional attempts after the initial failure; when all are
        /// exhausted the fault escalates to a process failure.
        attempts: usize,
        /// Sleep `backoff × attempt_number` before each re-attempt (linear
        /// backoff; `Duration::ZERO` retries immediately).
        backoff: Duration,
    },
    /// Preserve the offending item plus error context in a dead-letter
    /// queue and continue with the next item.
    DeadLetter {
        /// The shared queue receiving [`DeadLetterRecord`]s.
        queue: DeadLetterQueue,
    },
}

impl FaultPolicy {
    /// Parses the `fault-policy` XML attribute. Grammar:
    ///
    /// * `fail-fast`
    /// * `skip` (unlimited) or `skip:N` (escalate after N consecutive)
    /// * `retry:N` or `retry:N:MS` (N attempts, MS milliseconds backoff)
    /// * `dead-letter` (records land in `dead_letters`, typically the
    ///   topology's shared queue)
    pub fn parse(spec: &str, dead_letters: &DeadLetterQueue) -> Result<FaultPolicy, StreamsError> {
        let bad = |detail: String| StreamsError::XmlSemantics { detail };
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let int = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| {
                bad(format!("fault-policy `{spec}`: `{what}` must be a non-negative integer"))
            })
        };
        match (head, args.as_slice()) {
            ("fail-fast", []) => Ok(FaultPolicy::FailFast),
            ("skip", []) => Ok(FaultPolicy::Skip { max_consecutive: usize::MAX }),
            ("skip", [n]) => Ok(FaultPolicy::Skip { max_consecutive: int(n, "N")? as usize }),
            ("retry", [n]) => {
                Ok(FaultPolicy::Retry { attempts: int(n, "N")? as usize, backoff: Duration::ZERO })
            }
            ("retry", [n, ms]) => Ok(FaultPolicy::Retry {
                attempts: int(n, "N")? as usize,
                backoff: Duration::from_millis(int(ms, "MS")?),
            }),
            ("dead-letter", []) => Ok(FaultPolicy::DeadLetter { queue: dead_letters.clone() }),
            _ => Err(bad(format!(
                "unknown fault-policy `{spec}` (expected fail-fast, skip[:N], \
                 retry:N[:MS] or dead-letter)"
            ))),
        }
    }
}

/// One item that a [`FaultPolicy::DeadLetter`] policy moved aside, with the
/// context needed for post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetterRecord {
    /// The process the fault happened in.
    pub process: String,
    /// Position of the failing processor in the process's chain.
    pub processor: Option<usize>,
    /// The offending item as it entered the failing processor (`None` for
    /// faults during the end-of-stream `finish` phase, which has no input
    /// item).
    pub item: Option<DataItem>,
    /// The fault itself ([`StreamsError::ProcessorPanicked`] for isolated
    /// panics).
    pub error: StreamsError,
}

/// A shared, unbounded queue of [`DeadLetterRecord`]s; clones observe the
/// same buffer (like [`crate::sink::CollectSink`]).
#[derive(Debug, Clone, Default)]
pub struct DeadLetterQueue {
    records: Arc<Mutex<Vec<DeadLetterRecord>>>,
}

impl DeadLetterQueue {
    /// A fresh shared queue.
    pub fn shared() -> DeadLetterQueue {
        DeadLetterQueue::default()
    }

    /// Appends one record (called by the runtime).
    pub fn push(&self, record: DeadLetterRecord) {
        self.records.lock().unwrap().push(record);
    }

    /// Snapshot of the records accumulated so far.
    pub fn records(&self) -> Vec<DeadLetterRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Removes and returns every record.
    pub fn drain(&self) -> Vec<DeadLetterRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// Whether no item was dead-lettered.
    pub fn is_empty(&self) -> bool {
        self.records.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar() {
        let dl = DeadLetterQueue::shared();
        assert!(matches!(FaultPolicy::parse("fail-fast", &dl), Ok(FaultPolicy::FailFast)));
        assert!(matches!(
            FaultPolicy::parse("skip", &dl),
            Ok(FaultPolicy::Skip { max_consecutive: usize::MAX })
        ));
        assert!(matches!(
            FaultPolicy::parse("skip:5", &dl),
            Ok(FaultPolicy::Skip { max_consecutive: 5 })
        ));
        match FaultPolicy::parse("retry:3", &dl) {
            Ok(FaultPolicy::Retry { attempts: 3, backoff }) => assert_eq!(backoff, Duration::ZERO),
            other => panic!("unexpected {other:?}"),
        }
        match FaultPolicy::parse("retry:2:10", &dl) {
            Ok(FaultPolicy::Retry { attempts: 2, backoff }) => {
                assert_eq!(backoff, Duration::from_millis(10))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            FaultPolicy::parse("dead-letter", &dl),
            Ok(FaultPolicy::DeadLetter { .. })
        ));
        for bad in ["", "skippy", "skip:x", "retry", "retry:a", "retry:1:b", "dead-letter:1"] {
            assert!(FaultPolicy::parse(bad, &dl).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn parsed_dead_letter_shares_the_queue() {
        let dl = DeadLetterQueue::shared();
        let policy = FaultPolicy::parse("dead-letter", &dl).unwrap();
        let FaultPolicy::DeadLetter { queue } = policy else { panic!("wrong variant") };
        queue.push(DeadLetterRecord {
            process: "p".into(),
            processor: Some(0),
            item: Some(DataItem::new().with("n", 1i64)),
            error: StreamsError::ServiceError { detail: "boom".into() },
        });
        assert_eq!(dl.len(), 1, "records are visible through the original handle");
    }

    #[test]
    fn queue_snapshot_and_drain() {
        let dl = DeadLetterQueue::shared();
        assert!(dl.is_empty());
        let record = DeadLetterRecord {
            process: "p".into(),
            processor: None,
            item: None,
            error: StreamsError::ServiceError { detail: "x".into() },
        };
        dl.push(record.clone());
        assert_eq!(dl.records(), vec![record.clone()]);
        assert_eq!(dl.drain(), vec![record]);
        assert!(dl.is_empty());
    }
}
