//! Fault policies: per-process supervision of processor failures.
//!
//! The paper's inputs are inherently unreliable — SCATS sensors drop
//! readings, bus GPS arrives late or corrupted (§3), crowd workers miss
//! deadlines (§5) — so component failure is a steady-state condition, not an
//! exception. A [`FaultPolicy`] tells the runtime what to do when a
//! processor returns an error **or panics** while handling an item:
//!
//! | policy | behaviour |
//! |---|---|
//! | [`FaultPolicy::FailFast`] | abort the process on the first fault (the pre-supervision behaviour) |
//! | [`FaultPolicy::Skip`] | drop the faulted item and continue; more than `max_consecutive` consecutive faulted items escalates to failure |
//! | [`FaultPolicy::Retry`] | re-run the failing processor on a pristine copy of the item up to `attempts` times with linear backoff, then fail |
//! | [`FaultPolicy::DeadLetter`] | move the offending item plus its error context to a [`DeadLetterQueue`] for post-mortem and continue |
//! | [`FaultPolicy::Restart`] | rebuild the processor chain from its factories, restore the latest checkpoint, replay the logged items and re-run the faulted item (see [`crate::checkpoint`]) |
//!
//! Policies are set per process on the topology builder
//! ([`crate::topology::ProcessBuilder::fault_policy`]) or via the
//! `fault-policy` attribute of a `<process>` element in the XML data-flow
//! language ([`FaultPolicy::parse`] documents the attribute grammar).

use crate::error::StreamsError;
use crate::item::DataItem;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the runtime does when a processor errors or panics on an item.
#[derive(Debug, Clone, Default)]
pub enum FaultPolicy {
    /// Abort the whole run on the first fault (the default).
    #[default]
    FailFast,
    /// Drop the faulted item and keep consuming. Output order is preserved:
    /// the output stream equals the input stream minus the faulted items.
    Skip {
        /// A run of more than this many *consecutive* faulted items
        /// escalates to a process failure — a stage that faults on every
        /// item is broken, not unlucky. `usize::MAX` never escalates.
        max_consecutive: usize,
    },
    /// Re-invoke the failing processor with a pristine copy of the item.
    Retry {
        /// Additional attempts after the initial failure; when all are
        /// exhausted the fault escalates to a process failure.
        attempts: usize,
        /// Sleep `backoff × attempt_number` before each re-attempt (linear
        /// backoff; `Duration::ZERO` retries immediately).
        backoff: Duration,
    },
    /// Preserve the offending item plus error context in a dead-letter
    /// queue and continue with the next item.
    DeadLetter {
        /// The shared queue receiving [`DeadLetterRecord`]s.
        queue: DeadLetterQueue,
    },
    /// Crash recovery: rebuild the processor chain from its factories
    /// (registered via
    /// [`processor_factory`](crate::topology::ProcessBuilder::processor_factory)),
    /// restore each checkpointable processor from its latest checkpoint,
    /// replay the input items logged since that barrier, then re-run the
    /// faulted item from the head of the rebuilt chain. Slots without a
    /// factory keep their (possibly inconsistent) instance, so restartable
    /// stages should be built entirely from factories.
    Restart {
        /// Lifetime restart budget of the process; one more fault after the
        /// budget is spent escalates to a process failure.
        max: usize,
        /// `true`: restore state from the latest checkpoint and replay the
        /// log (exact recovery — the barrier cadence bounds the log;
        /// processes that leave
        /// [`checkpoint_every`](crate::topology::ProcessBuilder::checkpoint_every)
        /// at `0` get
        /// [`DEFAULT_RESTART_CADENCE`](crate::runtime::DEFAULT_RESTART_CADENCE)).
        /// `false`: restart *fresh* — factory state only, for stages whose
        /// state is disposable.
        from_checkpoint: bool,
    },
}

impl FaultPolicy {
    /// Parses the `fault-policy` XML attribute. Grammar:
    ///
    /// * `fail-fast`
    /// * `skip` (unlimited) or `skip:N` (escalate after N consecutive)
    /// * `retry:N` or `retry:N:MS` (N attempts, MS milliseconds backoff)
    /// * `dead-letter` (records land in `dead_letters`, typically the
    ///   topology's shared queue)
    /// * `restart` (one restart, from checkpoint), `restart:N` (N restarts)
    ///   or `restart:N:fresh` (N restarts without checkpoint restore)
    pub fn parse(spec: &str, dead_letters: &DeadLetterQueue) -> Result<FaultPolicy, StreamsError> {
        let bad = |detail: String| StreamsError::XmlSemantics { detail };
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let int = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| {
                bad(format!("fault-policy `{spec}`: `{what}` must be a non-negative integer"))
            })
        };
        match (head, args.as_slice()) {
            ("fail-fast", []) => Ok(FaultPolicy::FailFast),
            ("skip", []) => Ok(FaultPolicy::Skip { max_consecutive: usize::MAX }),
            ("skip", [n]) => Ok(FaultPolicy::Skip { max_consecutive: int(n, "N")? as usize }),
            ("retry", [n]) => {
                Ok(FaultPolicy::Retry { attempts: int(n, "N")? as usize, backoff: Duration::ZERO })
            }
            ("retry", [n, ms]) => Ok(FaultPolicy::Retry {
                attempts: int(n, "N")? as usize,
                backoff: Duration::from_millis(int(ms, "MS")?),
            }),
            ("dead-letter", []) => Ok(FaultPolicy::DeadLetter { queue: dead_letters.clone() }),
            ("restart", []) => Ok(FaultPolicy::Restart { max: 1, from_checkpoint: true }),
            ("restart", [n]) => {
                Ok(FaultPolicy::Restart { max: int(n, "N")? as usize, from_checkpoint: true })
            }
            ("restart", [n, "fresh"]) => {
                Ok(FaultPolicy::Restart { max: int(n, "N")? as usize, from_checkpoint: false })
            }
            _ => Err(bad(format!(
                "unknown fault-policy `{spec}` (expected fail-fast, skip[:N], \
                 retry:N[:MS], dead-letter or restart[:N[:fresh]])"
            ))),
        }
    }
}

/// One item that a [`FaultPolicy::DeadLetter`] policy moved aside, with the
/// context needed for post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetterRecord {
    /// The process the fault happened in.
    pub process: String,
    /// Position of the failing processor in the process's chain.
    pub processor: Option<usize>,
    /// The offending item as it entered the failing processor (`None` for
    /// faults during the end-of-stream `finish` phase, which has no input
    /// item).
    pub item: Option<DataItem>,
    /// The fault itself ([`StreamsError::ProcessorPanicked`] for isolated
    /// panics).
    pub error: StreamsError,
}

#[derive(Debug)]
struct DeadLetterInner {
    records: std::collections::VecDeque<DeadLetterRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for DeadLetterInner {
    fn default() -> DeadLetterInner {
        DeadLetterInner {
            records: std::collections::VecDeque::new(),
            capacity: usize::MAX,
            dropped: 0,
        }
    }
}

/// A shared, *bounded* queue of [`DeadLetterRecord`]s; clones observe the
/// same buffer (like [`crate::sink::CollectSink`]).
///
/// Sustained faults must not grow memory without limit, so the queue keeps at
/// most `capacity` records: pushing into a full queue evicts the oldest
/// record and counts it in [`DeadLetterQueue::dropped`]. The default
/// ([`DeadLetterQueue::shared`]) capacity is effectively unbounded
/// (`usize::MAX`), preserving the historical behaviour; long-running
/// topologies should use [`DeadLetterQueue::bounded`].
#[derive(Debug, Clone, Default)]
pub struct DeadLetterQueue {
    inner: Arc<Mutex<DeadLetterInner>>,
}

impl DeadLetterQueue {
    /// A fresh shared queue with unbounded capacity.
    pub fn shared() -> DeadLetterQueue {
        DeadLetterQueue::default()
    }

    /// A fresh shared queue keeping at most `capacity` records (oldest
    /// evicted first; a capacity of 0 drops everything).
    pub fn bounded(capacity: usize) -> DeadLetterQueue {
        let q = DeadLetterQueue::default();
        q.inner.lock().unwrap().capacity = capacity;
        q
    }

    /// Appends one record (called by the runtime), evicting the oldest when
    /// the queue is at capacity.
    pub fn push(&self, record: DeadLetterRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        while inner.records.len() >= inner.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(record);
    }

    /// Snapshot of the records accumulated so far.
    pub fn records(&self) -> Vec<DeadLetterRecord> {
        self.inner.lock().unwrap().records.iter().cloned().collect()
    }

    /// Removes and returns every record.
    pub fn drain(&self) -> Vec<DeadLetterRecord> {
        self.inner.lock().unwrap().records.drain(..).collect()
    }

    /// Drains the queue and re-injects every record that still carries its
    /// item (records of `finish`-phase faults carry none and are discarded)
    /// through `inject` — e.g. back into the topology's input source after a
    /// recovery. Returns the number of items re-injected.
    pub fn drain_and_reinject<F: FnMut(DataItem)>(&self, mut inject: F) -> usize {
        let mut count = 0;
        for record in self.drain() {
            if let Some(item) = record.item {
                inject(item);
                count += 1;
            }
        }
        count
    }

    /// This queue's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// Records evicted (or refused) because the queue was at capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// Whether no item was dead-lettered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar() {
        let dl = DeadLetterQueue::shared();
        assert!(matches!(FaultPolicy::parse("fail-fast", &dl), Ok(FaultPolicy::FailFast)));
        assert!(matches!(
            FaultPolicy::parse("skip", &dl),
            Ok(FaultPolicy::Skip { max_consecutive: usize::MAX })
        ));
        assert!(matches!(
            FaultPolicy::parse("skip:5", &dl),
            Ok(FaultPolicy::Skip { max_consecutive: 5 })
        ));
        match FaultPolicy::parse("retry:3", &dl) {
            Ok(FaultPolicy::Retry { attempts: 3, backoff }) => assert_eq!(backoff, Duration::ZERO),
            other => panic!("unexpected {other:?}"),
        }
        match FaultPolicy::parse("retry:2:10", &dl) {
            Ok(FaultPolicy::Retry { attempts: 2, backoff }) => {
                assert_eq!(backoff, Duration::from_millis(10))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            FaultPolicy::parse("dead-letter", &dl),
            Ok(FaultPolicy::DeadLetter { .. })
        ));
        assert!(matches!(
            FaultPolicy::parse("restart", &dl),
            Ok(FaultPolicy::Restart { max: 1, from_checkpoint: true })
        ));
        assert!(matches!(
            FaultPolicy::parse("restart:3", &dl),
            Ok(FaultPolicy::Restart { max: 3, from_checkpoint: true })
        ));
        assert!(matches!(
            FaultPolicy::parse("restart:2:fresh", &dl),
            Ok(FaultPolicy::Restart { max: 2, from_checkpoint: false })
        ));
        let bad = [
            "",
            "skippy",
            "skip:x",
            "retry",
            "retry:a",
            "retry:1:b",
            "dead-letter:1",
            "restart:x",
            "restart:1:bogus",
        ];
        for bad in bad {
            assert!(FaultPolicy::parse(bad, &dl).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn bounded_queue_evicts_oldest_and_counts_drops() {
        let dl = DeadLetterQueue::bounded(2);
        assert_eq!(dl.capacity(), 2);
        let record = |n: i64| DeadLetterRecord {
            process: "p".into(),
            processor: Some(0),
            item: Some(DataItem::new().with("n", n)),
            error: StreamsError::ServiceError { detail: "boom".into() },
        };
        dl.push(record(1));
        dl.push(record(2));
        dl.push(record(3));
        assert_eq!(dl.len(), 2);
        assert_eq!(dl.dropped(), 1, "oldest record evicted");
        let kept: Vec<i64> =
            dl.records().iter().map(|r| r.item.as_ref().unwrap().get_i64("n").unwrap()).collect();
        assert_eq!(kept, vec![2, 3]);

        let none = DeadLetterQueue::bounded(0);
        none.push(record(9));
        assert!(none.is_empty());
        assert_eq!(none.dropped(), 1, "zero capacity refuses every record");
    }

    #[test]
    fn drain_and_reinject_replays_items_and_skips_itemless_records() {
        let dl = DeadLetterQueue::shared();
        dl.push(DeadLetterRecord {
            process: "p".into(),
            processor: Some(0),
            item: Some(DataItem::new().with("n", 1i64)),
            error: StreamsError::ServiceError { detail: "boom".into() },
        });
        dl.push(DeadLetterRecord {
            process: "p".into(),
            processor: None,
            item: None,
            error: StreamsError::ServiceError { detail: "finish".into() },
        });
        let mut seen = Vec::new();
        let n = dl.drain_and_reinject(|item| seen.push(item.get_i64("n").unwrap()));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![1]);
        assert!(dl.is_empty());
    }

    #[test]
    fn parsed_dead_letter_shares_the_queue() {
        let dl = DeadLetterQueue::shared();
        let policy = FaultPolicy::parse("dead-letter", &dl).unwrap();
        let FaultPolicy::DeadLetter { queue } = policy else { panic!("wrong variant") };
        queue.push(DeadLetterRecord {
            process: "p".into(),
            processor: Some(0),
            item: Some(DataItem::new().with("n", 1i64)),
            error: StreamsError::ServiceError { detail: "boom".into() },
        });
        assert_eq!(dl.len(), 1, "records are visible through the original handle");
    }

    #[test]
    fn queue_snapshot_and_drain() {
        let dl = DeadLetterQueue::shared();
        assert!(dl.is_empty());
        let record = DeadLetterRecord {
            process: "p".into(),
            processor: None,
            item: None,
            error: StreamsError::ServiceError { detail: "x".into() },
        };
        dl.push(record.clone());
        assert_eq!(dl.records(), vec![record.clone()]);
        assert_eq!(dl.drain(), vec![record]);
        assert!(dl.is_empty());
    }
}
