//! Error type for topology construction, XML parsing and execution.

use std::fmt;

/// Errors produced by the streams middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamsError {
    /// A process referenced a stream/queue/sink that does not exist.
    UnknownEndpoint {
        /// The missing name.
        name: String,
        /// What referenced it.
        referenced_by: String,
    },
    /// Two declarations share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A queue has more than one consuming process.
    MultipleConsumers {
        /// The contested queue.
        queue: String,
    },
    /// A topology element is unused/disconnected in a way that would hang
    /// the runtime (e.g. a queue no process writes to).
    Disconnected {
        /// Description of the problem.
        detail: String,
    },
    /// A processor signalled a failure while handling an item.
    ProcessorFailed {
        /// The process in which it ran.
        process: String,
        /// Position of the failing processor in the process's chain, when
        /// known (dead-letter records use it to identify the exact stage).
        processor: Option<usize>,
        /// The processor's error message.
        message: String,
    },
    /// A processor panicked while handling an item; the runtime isolates the
    /// panic and converts it into this policy-governed fault.
    ProcessorPanicked {
        /// The process in which it ran.
        process: String,
        /// The panic payload rendered to a string (`&str`/`String` payloads
        /// are preserved, anything else becomes a placeholder).
        payload: String,
    },
    /// XML syntax error.
    XmlSyntax {
        /// Byte offset of the error.
        offset: usize,
        /// Description.
        detail: String,
    },
    /// XML referenced an unknown element/class or missed an attribute.
    XmlSemantics {
        /// Description.
        detail: String,
    },
    /// A replicated process is misconfigured (missing partition keys,
    /// processors added outside the per-replica factory, ...).
    InvalidPartition {
        /// The offending process.
        process: String,
        /// Description.
        detail: String,
    },
    /// A service lookup failed (missing name or wrong type).
    ServiceError {
        /// Description.
        detail: String,
    },
    /// I/O failure in a file source/sink.
    Io {
        /// Stringified I/O error (kept as a string so the error stays `Clone`).
        detail: String,
    },
    /// The deterministic replay scheduler found no runnable process: every
    /// unfinished process is blocked on an empty or full queue. A validated
    /// acyclic topology cannot reach this state; it guards against cyclic
    /// graphs and scheduler bugs.
    ReplayDeadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
    },
}

impl fmt::Display for StreamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamsError::UnknownEndpoint { name, referenced_by } => {
                write!(f, "`{referenced_by}` references unknown stream/queue/sink `{name}`")
            }
            StreamsError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            StreamsError::MultipleConsumers { queue } => {
                write!(f, "queue `{queue}` has more than one consumer")
            }
            StreamsError::Disconnected { detail } => write!(f, "disconnected topology: {detail}"),
            StreamsError::ProcessorFailed { process, processor, message } => match processor {
                Some(i) => write!(f, "processor #{i} in `{process}` failed: {message}"),
                None => write!(f, "processor in `{process}` failed: {message}"),
            },
            StreamsError::ProcessorPanicked { process, payload } => {
                write!(f, "processor in `{process}` panicked: {payload}")
            }
            StreamsError::XmlSyntax { offset, detail } => {
                write!(f, "XML syntax error at byte {offset}: {detail}")
            }
            StreamsError::XmlSemantics { detail } => write!(f, "XML semantic error: {detail}"),
            StreamsError::InvalidPartition { process, detail } => {
                write!(f, "invalid partitioning on `{process}`: {detail}")
            }
            StreamsError::ServiceError { detail } => write!(f, "service error: {detail}"),
            StreamsError::Io { detail } => write!(f, "I/O error: {detail}"),
            StreamsError::ReplayDeadlock { blocked } => {
                write!(f, "replay deadlock: no runnable process (blocked: {})", blocked.join(", "))
            }
        }
    }
}

impl std::error::Error for StreamsError {}

impl From<std::io::Error> for StreamsError {
    fn from(e: std::io::Error) -> Self {
        StreamsError::Io { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = StreamsError::UnknownEndpoint { name: "q1".into(), referenced_by: "p".into() };
        assert!(e.to_string().contains("q1"));
        let e = StreamsError::MultipleConsumers { queue: "shared".into() };
        assert!(e.to_string().contains("shared"));
    }

    #[test]
    fn processor_errors_identify_the_stage() {
        let e = StreamsError::ProcessorFailed {
            process: "rtec-north".into(),
            processor: Some(2),
            message: "bad SDE".into(),
        };
        assert_eq!(e.to_string(), "processor #2 in `rtec-north` failed: bad SDE");
        let e = StreamsError::ProcessorPanicked {
            process: "rtec-north".into(),
            payload: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("index out of bounds"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StreamsError = io.into();
        assert!(matches!(e, StreamsError::Io { .. }));
    }
}
