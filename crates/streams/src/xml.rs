//! The XML data-flow description language.
//!
//! The Streams framework "provides an XML-based language for the description
//! of data flow graphs" (Section 3 of the paper). This module implements a
//! hand-rolled parser for the XML subset that language needs — elements,
//! attributes, comments, self-closing tags, the five predefined entities —
//! and a compiler turning a `<container>` document into process/queue
//! declarations on a [`Topology`].
//!
//! Sources and sinks are runtime objects, so the document references them by
//! name (`stream:NAME`, `sink:NAME`) and the caller binds the names before
//! compiling:
//!
//! ```
//! use insight_streams::prelude::*;
//! use insight_streams::processor::default_factories;
//! use insight_streams::xml::compile_into;
//! use std::collections::HashMap;
//!
//! let doc = r#"
//!   <container>
//!     <queue id="moves" capacity="64"/>
//!     <process id="filter" input="stream:sde" output="queue:moves">
//!       <processor class="FilterEquals" key="kind" value="move"/>
//!     </process>
//!     <process id="collect" input="queue:moves" output="sink:out"/>
//!   </container>
//! "#;
//! let mut t = Topology::new();
//! t.add_source("sde", VecSource::new([
//!     DataItem::new().with("kind", "move"),
//!     DataItem::new().with("kind", "traffic"),
//! ]));
//! let out = CollectSink::shared();
//! let mut sinks: HashMap<String, Box<dyn Sink>> = HashMap::new();
//! sinks.insert("out".into(), Box::new(out.clone()));
//! compile_into(&mut t, doc, &default_factories(), &mut sinks).unwrap();
//! Runtime::new(t).run().unwrap();
//! assert_eq!(out.len(), 1);
//! ```

use crate::error::StreamsError;
use crate::fault::FaultPolicy;
use crate::processor::ProcessorFactory;
use crate::sink::Sink;
use crate::topology::{Input, Output, Topology, DEFAULT_QUEUE_CAPACITY};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order (later duplicates win).
    pub attrs: HashMap<String, String>,
    /// Child elements (text content is ignored).
    pub children: Vec<Element>,
}

impl Element {
    /// Attribute accessor.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Required attribute accessor.
    pub fn required_attr(&self, key: &str) -> Result<&str, StreamsError> {
        self.attr(key).ok_or_else(|| StreamsError::XmlSemantics {
            detail: format!("element <{}> requires attribute `{key}`", self.name),
        })
    }

    /// Children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> StreamsError {
        StreamsError::XmlSyntax { offset: self.pos, detail: detail.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), StreamsError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with("<?") {
                match find(self.bytes, self.pos + 2, "?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, StreamsError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn attribute_value(&mut self) -> Result<String, StreamsError> {
        let quote = self.peek().ok_or_else(|| self.err("unexpected end in attribute"))?;
        if quote != b'"' && quote != b'\'' {
            return Err(self.err("attribute value must be quoted"));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 1;
                return unescape(&raw).map_err(|d| self.err(&d));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn element(&mut self) -> Result<Element, StreamsError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = Element { name, ..Element::default() };

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    el.attrs.insert(key, value);
                }
                None => return Err(self.err("unexpected end inside tag")),
            }
        }

        // Content: children and ignorable text, until the closing tag.
        loop {
            // Skip text (ignored) up to the next '<'.
            while let Some(c) = self.peek() {
                if c == b'<' {
                    break;
                }
                self.pos += 1;
            }
            if self.peek().is_none() {
                return Err(self.err(&format!("missing closing tag for <{}>", el.name)));
            }
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != el.name {
                    return Err(self.err(&format!(
                        "mismatched closing tag: expected </{}>, found </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                return Ok(el);
            }
            el.children.push(self.element()?);
        }
    }
}

fn find(bytes: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    (from..bytes.len().checked_sub(n.len() - 1)?).find(|&i| &bytes[i..i + n.len()] == n)
}

fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest.find(';').ok_or_else(|| "unterminated entity".to_string())?;
        match &rest[..=end] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(format!("unsupported entity `{other}`")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parses a document into its root element.
pub fn parse(doc: &str) -> Result<Element, StreamsError> {
    let mut p = Parser { bytes: doc.as_bytes(), pos: 0 };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

fn parse_input(spec: &str) -> Result<Input, StreamsError> {
    match spec.split_once(':') {
        Some(("stream", name)) => Ok(Input::Stream(name.to_string())),
        Some(("queue", name)) => Ok(Input::Queue(name.to_string())),
        _ => Err(StreamsError::XmlSemantics {
            detail: format!("input `{spec}` must be `stream:NAME` or `queue:NAME`"),
        }),
    }
}

fn parse_output(
    spec: &str,
    sinks: &mut HashMap<String, Box<dyn Sink>>,
) -> Result<Output, StreamsError> {
    if spec == "discard" {
        return Ok(Output::Discard);
    }
    match spec.split_once(':') {
        Some(("queue", name)) => Ok(Output::Queue(name.to_string())),
        Some(("sink", name)) => {
            let sink = sinks.remove(name).ok_or_else(|| StreamsError::XmlSemantics {
                detail: format!("sink `{name}` was not bound (or bound twice)"),
            })?;
            Ok(Output::Sink(sink))
        }
        _ => Err(StreamsError::XmlSemantics {
            detail: format!("output `{spec}` must be `queue:NAME`, `sink:NAME` or `discard`"),
        }),
    }
}

/// Compiles a `<container>` document into `topology`.
///
/// * `factories` maps processor class names to constructors;
/// * `sinks` binds `sink:NAME` references to sink objects — each may be
///   referenced exactly once.
pub fn compile_into(
    topology: &mut Topology,
    doc: &str,
    factories: &HashMap<String, ProcessorFactory>,
    sinks: &mut HashMap<String, Box<dyn Sink>>,
) -> Result<(), StreamsError> {
    let root = parse(doc)?;
    if root.name != "container" && root.name != "application" {
        return Err(StreamsError::XmlSemantics {
            detail: format!("root element must be <container>, found <{}>", root.name),
        });
    }

    for child in &root.children {
        match child.name.as_str() {
            "queue" => {
                let id = child.required_attr("id")?;
                let capacity = match child.attr("capacity") {
                    Some(c) => c.parse::<usize>().map_err(|_| StreamsError::XmlSemantics {
                        detail: format!("queue `{id}` has a non-numeric capacity"),
                    })?,
                    None => DEFAULT_QUEUE_CAPACITY,
                };
                topology.add_queue(id, capacity);
            }
            "process" => {
                let id = child.required_attr("id")?.to_string();
                let input = parse_input(child.required_attr("input")?)?;
                // Resolve the policy before `topology.process()` takes the
                // mutable borrow; `dead-letter` binds to the topology's
                // shared queue.
                let policy = match child.attr("fault-policy") {
                    Some(spec) => Some(FaultPolicy::parse(spec, &topology.dead_letters())?),
                    None => None,
                };
                let batch_size = match child.attr("batch-size") {
                    Some(raw) => {
                        Some(raw.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            StreamsError::XmlSemantics {
                                detail: format!(
                                    "process `{id}` has an invalid batch-size `{raw}` \
                                     (expected an integer ≥ 1)"
                                ),
                            }
                        })?)
                    }
                    None => None,
                };
                let checkpoint_every = match child.attr("checkpoint-every") {
                    Some(raw) => Some(raw.parse::<usize>().ok().ok_or_else(|| {
                        StreamsError::XmlSemantics {
                            detail: format!(
                                "process `{id}` has an invalid checkpoint-every `{raw}` \
                                 (expected an integer ≥ 0; 0 disables barriers)"
                            ),
                        }
                    })?),
                    None => None,
                };
                let replicas = match child.attr("replicas") {
                    Some(raw) => {
                        raw.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            StreamsError::XmlSemantics {
                                detail: format!(
                                    "process `{id}` has an invalid replicas `{raw}` \
                                     (expected an integer ≥ 1)"
                                ),
                            }
                        })?
                    }
                    None => 1,
                };
                let partition_keys: Vec<String> = match child.attr("partition-key") {
                    Some(spec) => spec
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                    None => Vec::new(),
                };
                if replicas > 1 && partition_keys.is_empty() {
                    return Err(StreamsError::XmlSemantics {
                        detail: format!(
                            "process `{id}` declares replicas=\"{replicas}\" but no \
                             partition-key attribute"
                        ),
                    });
                }
                // Optional enumeration of expected key values for balanced
                // low-cardinality routing (see `ProcessBuilder::partition_hints`).
                let partition_hints: Vec<String> = match child.attr("partition-hints") {
                    Some(spec) => spec
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                    None => Vec::new(),
                };
                let mut builder = topology.process(&id).input(input).replicas(replicas);
                if !partition_keys.is_empty() {
                    builder = builder.partition_by(partition_keys);
                }
                if !partition_hints.is_empty() {
                    builder = builder.partition_hints(partition_hints);
                }
                if let Some(policy) = policy {
                    builder = builder.fault_policy(policy);
                }
                if let Some(n) = batch_size {
                    builder = builder.batch_size(n);
                }
                if let Some(n) = checkpoint_every {
                    builder = builder.checkpoint_every(n);
                }
                for proc_el in child.children_named("processor") {
                    let class = proc_el.required_attr("class")?;
                    let factory =
                        factories.get(class).ok_or_else(|| StreamsError::XmlSemantics {
                            detail: format!("unknown processor class `{class}`"),
                        })?;
                    let mut attrs = proc_el.attrs.clone();
                    attrs.remove("class");
                    if replicas > 1 {
                        // Each replica owns a private processor instance, so
                        // run the class factory once per shard.
                        let instances = (0..replicas)
                            .map(|_| factory(&attrs))
                            .collect::<Result<Vec<_>, _>>()?;
                        builder = builder.replica_processors(instances);
                    } else {
                        builder = builder.boxed_processor(factory(&attrs)?);
                    }
                }
                match child.attr("output") {
                    Some(spec) => {
                        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                            builder = builder.output(parse_output(part, sinks)?);
                        }
                    }
                    None => builder = builder.output(Output::Discard),
                }
                builder.done();
            }
            other => {
                return Err(StreamsError::XmlSemantics {
                    detail: format!("unsupported element <{other}> in container"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::DataItem;
    use crate::processor::default_factories;
    use crate::runtime::Runtime;
    use crate::sink::CollectSink;
    use crate::source::VecSource;

    #[test]
    fn parses_nested_elements() {
        let doc = r#"
            <?xml version="1.0"?>
            <!-- top comment -->
            <container>
                <queue id="q" capacity="8"/>
                <process id="p" input="stream:s">
                    <processor class="A" key="k"/>
                    <!-- inner comment -->
                    <processor class="B"></processor>
                </process>
            </container>
        "#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "container");
        assert_eq!(root.children.len(), 2);
        let process = &root.children[1];
        assert_eq!(process.attr("id"), Some("p"));
        assert_eq!(process.children_named("processor").count(), 2);
    }

    #[test]
    fn parses_entities_and_quotes() {
        let root = parse(r#"<a x="&lt;&amp;&gt;" y='it&apos;s'/>"#).unwrap();
        assert_eq!(root.attr("x"), Some("<&>"));
        assert_eq!(root.attr("y"), Some("it's"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("<a>").is_err(), "unterminated element");
        assert!(parse("<a></b>").is_err(), "mismatched closing tag");
        assert!(parse("<a x=unquoted/>").is_err(), "unquoted attribute");
        assert!(parse("<a/><b/>").is_err(), "two roots");
        assert!(parse("<a x=\"&bogus;\"/>").is_err(), "unknown entity");
        assert!(parse("<!-- only a comment -->").is_err(), "no root element");
    }

    fn bound_sinks(sink: &CollectSink) -> HashMap<String, Box<dyn Sink>> {
        let mut m: HashMap<String, Box<dyn Sink>> = HashMap::new();
        m.insert("out".to_string(), Box::new(sink.clone()));
        m
    }

    #[test]
    fn compiles_and_runs_document() {
        let doc = r#"
            <container>
                <queue id="moves"/>
                <process id="filter" input="stream:sde" output="queue:moves">
                    <processor class="FilterEquals" key="kind" value="move"/>
                    <processor class="SetValue" key="checked" value="yes"/>
                </process>
                <process id="collect" input="queue:moves" output="sink:out"/>
            </container>
        "#;
        let mut t = Topology::new();
        t.add_source(
            "sde",
            VecSource::new([
                DataItem::new().with("kind", "move").with("bus", 1i64),
                DataItem::new().with("kind", "traffic"),
                DataItem::new().with("kind", "move").with("bus", 2i64),
            ]),
        );
        let out = CollectSink::shared();
        let mut sinks = bound_sinks(&out);
        compile_into(&mut t, doc, &default_factories(), &mut sinks).unwrap();
        Runtime::new(t).run().unwrap();
        let items = out.items();
        assert_eq!(items.len(), 2);
        assert!(items.iter().all(|i| i.get_str("checked") == Some("yes")));
    }

    #[test]
    fn compile_errors() {
        let factories = default_factories();
        let sink = CollectSink::shared();

        // wrong root
        let mut t = Topology::new();
        let err = compile_into(&mut t, "<x/>", &factories, &mut bound_sinks(&sink)).unwrap_err();
        assert!(matches!(err, StreamsError::XmlSemantics { .. }));

        // unknown processor class
        let doc = r#"<container><process id="p" input="stream:s">
            <processor class="Nope"/></process></container>"#;
        let mut t = Topology::new();
        let err = compile_into(&mut t, doc, &factories, &mut bound_sinks(&sink)).unwrap_err();
        assert!(err.to_string().contains("Nope"));

        // unbound sink
        let doc =
            r#"<container><process id="p" input="stream:s" output="sink:ghost"/></container>"#;
        let mut t = Topology::new();
        let err = compile_into(&mut t, doc, &factories, &mut bound_sinks(&sink)).unwrap_err();
        assert!(err.to_string().contains("ghost"));

        // bad input spec
        let doc = r#"<container><process id="p" input="bogus"/></container>"#;
        let mut t = Topology::new();
        let err = compile_into(&mut t, doc, &factories, &mut bound_sinks(&sink)).unwrap_err();
        assert!(matches!(err, StreamsError::XmlSemantics { .. }));
    }

    #[test]
    fn batch_size_attribute_is_compiled() {
        let doc = r#"
            <container>
                <queue id="q" capacity="4"/>
                <process id="p" input="stream:s" output="queue:q" batch-size="16"/>
                <process id="c" input="queue:q" output="sink:out" batch-size="16"/>
            </container>
        "#;
        let mut t = Topology::new();
        t.add_source("s", VecSource::new((0..40).map(|i| DataItem::new().with("n", i as i64))));
        let out = CollectSink::shared();
        compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&out)).unwrap();
        Runtime::new(t).run().unwrap();
        let values: Vec<i64> = out.items().iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert_eq!(values, (0..40).collect::<Vec<i64>>(), "batched transfer keeps FIFO order");

        for bad in ["0", "-1", "lots"] {
            let doc = format!(
                r#"<container><process id="p" input="stream:s" batch-size="{bad}"/></container>"#
            );
            let mut t = Topology::new();
            let sink = CollectSink::shared();
            let err = compile_into(&mut t, &doc, &default_factories(), &mut bound_sinks(&sink))
                .unwrap_err();
            assert!(err.to_string().contains("batch-size"), "rejects `{bad}`: {err}");
        }
    }

    #[test]
    fn checkpoint_every_attribute_is_compiled() {
        let doc = r#"
            <container>
                <process id="p" input="stream:s" output="sink:out" checkpoint-every="500"/>
            </container>
        "#;
        let mut t = Topology::new();
        t.add_source("s", VecSource::new([DataItem::new().with("n", 1i64)]));
        let out = CollectSink::shared();
        compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&out)).unwrap();
        assert_eq!(t.processes[0].checkpoint_every, 500);

        let doc = r#"<container>
            <process id="p" input="stream:s" checkpoint-every="sometimes"/>
        </container>"#;
        let mut t = Topology::new();
        let sink = CollectSink::shared();
        let err =
            compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&sink)).unwrap_err();
        assert!(err.to_string().contains("checkpoint-every"), "{err}");
    }

    #[test]
    fn replicas_attribute_compiles_a_sharded_stage() {
        let doc = r#"
            <container>
                <queue id="tagged" capacity="32"/>
                <process id="tag" input="stream:s" output="queue:tagged"
                         replicas="3" partition-key="region">
                    <processor class="SetValue" key="seen" value="yes"/>
                </process>
                <process id="collect" input="queue:tagged" output="sink:out"/>
            </container>
        "#;
        let mut t = Topology::new();
        let regions = ["north", "south", "east", "west"];
        t.add_source(
            "s",
            VecSource::new((0..60).map(|i| {
                DataItem::new().with("n", i as i64).with("region", regions[i % regions.len()])
            })),
        );
        let out = CollectSink::shared();
        compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&out)).unwrap();
        Runtime::new(t).run().unwrap();
        let items = out.items();
        let values: Vec<i64> = items.iter().map(|i| i.get_i64("n").unwrap()).collect();
        assert_eq!(values, (0..60).collect::<Vec<i64>>(), "merge restores input order");
        assert!(items.iter().all(|i| i.get_str("seen") == Some("yes")));
    }

    #[test]
    fn bad_replica_specs_are_rejected() {
        let factories = default_factories();
        for (attrs, needle) in [
            (r#"replicas="0" partition-key="k""#, "replicas"),
            (r#"replicas="many" partition-key="k""#, "replicas"),
            (r#"replicas="2""#, "partition-key"),
            (r#"replicas="2" partition-key=" , ""#, "partition-key"),
        ] {
            let doc =
                format!(r#"<container><process id="p" input="stream:s" {attrs}/></container>"#);
            let mut t = Topology::new();
            let sink = CollectSink::shared();
            let err = compile_into(&mut t, &doc, &factories, &mut bound_sinks(&sink)).unwrap_err();
            assert!(err.to_string().contains(needle), "rejects `{attrs}`: {err}");
        }
    }

    #[test]
    fn fault_policy_attribute_is_compiled() {
        let doc = r#"
            <container>
                <process id="strict" input="stream:s" output="sink:out"
                         fault-policy="dead-letter">
                    <processor class="AssertKey" key="n"/>
                </process>
            </container>
        "#;
        let mut t = Topology::new();
        t.add_source(
            "s",
            VecSource::new([
                DataItem::new().with("n", 1i64),
                DataItem::new().with("other", 2i64),
                DataItem::new().with("n", 3i64),
            ]),
        );
        let out = CollectSink::shared();
        compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&out)).unwrap();
        let dead = t.dead_letters();
        Runtime::new(t).run().unwrap();
        assert_eq!(out.len(), 2, "good items pass");
        let records = dead.records();
        assert_eq!(records.len(), 1, "the keyless item was dead-lettered");
        assert_eq!(records[0].process, "strict");
        assert_eq!(records[0].item.as_ref().unwrap().get_i64("other"), Some(2));
    }

    #[test]
    fn bad_fault_policy_is_rejected() {
        let doc = r#"<container>
            <process id="p" input="stream:s" fault-policy="sometimes"/>
        </container>"#;
        let mut t = Topology::new();
        let sink = CollectSink::shared();
        let err =
            compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&sink)).unwrap_err();
        assert!(err.to_string().contains("fault-policy") || err.to_string().contains("sometimes"));
    }

    #[test]
    fn multiple_outputs_and_discard() {
        let doc = r#"
            <container>
                <queue id="a"/>
                <queue id="b"/>
                <process id="split" input="stream:s" output="queue:a, queue:b"/>
                <process id="da" input="queue:a" output="sink:out"/>
                <process id="db" input="queue:b" output="discard"/>
            </container>
        "#;
        let mut t = Topology::new();
        t.add_source("s", VecSource::new((0..4).map(|i| DataItem::new().with("n", i as i64))));
        let out = CollectSink::shared();
        compile_into(&mut t, doc, &default_factories(), &mut bound_sinks(&out)).unwrap();
        Runtime::new(t).run().unwrap();
        assert_eq!(out.len(), 4);
    }
}
