//! A counting global allocator for allocation-budget tests and benches.
//!
//! The data plane claims specific allocation behaviour (one heap allocation
//! per built item, zero per clone/lookup for inline-width items) that only a
//! real allocator hook can verify. [`CountingAllocator`] wraps the system
//! allocator and counts every `alloc`/`realloc` in a process-wide atomic; a
//! test or bench binary installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: insight_streams::alloc::CountingAllocator =
//!     insight_streams::alloc::CountingAllocator;
//! ```
//!
//! and measures a window of work as the difference of two
//! [`allocation_count`] readings (same idiom as
//! [`DataItem::deep_copies`](crate::item::DataItem::deep_copies)). The
//! counter is process-global: multi-threaded sections attribute every
//! thread's allocations to the window, so precise pins belong on
//! single-threaded sections and threaded sections get budget bounds.
//!
//! The hook costs one relaxed atomic increment per allocation — safe to
//! leave installed in bench binaries, not meant for production ones.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of heap allocations (`alloc` + growing `realloc`)
/// since process start, when [`CountingAllocator`] is installed as the
/// global allocator. Monotone; measure windows by differencing. Always 0 if
/// the allocator is not installed.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counting allocator; see the module docs.
pub struct CountingAllocator;

// SAFETY: delegates verbatim to `System`, adding only a relaxed counter
// bump; all `GlobalAlloc` contract obligations are `System`'s.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
