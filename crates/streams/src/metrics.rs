//! Pipeline observability: lock-light counters, gauges and histograms.
//!
//! Every hot-path operation (recording an item, a latency sample or a queue
//! depth change) is a handful of `Relaxed` atomic operations on
//! pre-registered instruments — no locks, no allocation. The only lock in
//! the module guards instrument *registration* (cold path: once per stage or
//! queue at topology start-up).
//!
//! Instruments are grouped in a [`MetricsRegistry`], registered as a Streams
//! service so every processor can reach it through its
//! [`Context`](crate::processor::Context). [`MetricsRegistry::snapshot`]
//! returns a plain-data [`MetricsSnapshot`] that renders to JSON
//! ([`MetricsSnapshot::to_json`]) or a human-readable per-stage table
//! ([`MetricsSnapshot::render_table`]).

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous level (e.g. queue depth) with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Moves the level by `delta` (positive or negative).
    pub fn add(&self, delta: i64) {
        let new = self.value.fetch_add(delta, Relaxed) + delta;
        if delta > 0 {
            self.high_water.fetch_max(new, Relaxed);
        }
    }

    /// Sets the level outright.
    pub fn set(&self, value: i64) {
        self.value.store(value, Relaxed);
        self.high_water.fetch_max(value, Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }

    /// Highest level ever observed.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Relaxed)
    }
}

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds; the last one is open-ended ≈ 9 minutes+).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram (power-of-two nanosecond buckets).
///
/// Recording is four `Relaxed` atomic adds/maxes — no locks, suitable for
/// per-item hot paths.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
        self.min_ns.fetch_min(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        let min = self.min_ns.load(Relaxed);
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Relaxed);
        }
        HistogramSnapshot {
            count,
            sum_ns: self.sum_ns.load(Relaxed),
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max_ns.load(Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Power-of-two bucket counts (bucket `i` = `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the bucket
    /// holding the q-th sample, clamped to the observed max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = 1u64 << (i + 1).min(63);
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Folds another histogram's samples into this one (bucket-wise sums;
    /// min/max widen). Quantiles of the merge are as approximate as the
    /// operands' — buckets align, so no extra error is introduced.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 { other.min_ns } else { self.min_ns.min(other.min_ns) };
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        for (slot, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += b;
        }
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":",
            self.count, self.sum_ns, self.min_ns, self.max_ns
        ));
        json::float_into(out, self.mean_ns());
        out.push_str(&format!(
            ",\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
            self.quantile_ns(0.50),
            self.quantile_ns(0.90),
            self.quantile_ns(0.99)
        ));
    }
}

/// Per-processor instruments: item flow, per-call latency and fault
/// supervision outcomes (see [`crate::fault::FaultPolicy`]).
#[derive(Debug, Default)]
pub struct StageMetrics {
    /// Items entering the stage.
    pub items_in: Counter,
    /// Items leaving the stage (after filtering/fan-out).
    pub items_out: Counter,
    /// Latency of each `process`/`finish` call.
    pub process_ns: Histogram,
    /// Failed processor invocations (errors and panics; each re-attempt
    /// under `Retry` that fails counts again).
    pub faults: Counter,
    /// The subset of `faults` that were isolated panics.
    pub panics: Counter,
    /// Re-invocations performed by a `Retry` policy.
    pub retries: Counter,
    /// Items dropped by a `Skip` policy.
    pub skipped: Counter,
    /// Items moved to the dead-letter queue by a `DeadLetter` policy.
    pub dead_letters: Counter,
    /// Checkpoint barriers that snapshotted at least one chain slot.
    pub checkpoints: Counter,
    /// State restores: `Restart` recoveries plus checkpoint rollbacks
    /// performed before a `Retry` re-invocation.
    pub restores: Counter,
    /// Logged items replayed through the chain during recoveries.
    pub replayed_items: Counter,
    /// Total wall-clock time spent in recovery (rebuild + restore + replay),
    /// nanoseconds.
    pub recovery_ns: Counter,
}

/// Per-queue instruments: depth, throughput, backpressure stalls.
#[derive(Debug, Default)]
pub struct QueueMetrics {
    /// Current number of buffered items (high-water mark retained).
    pub depth: Gauge,
    /// Items pushed.
    pub sent: Counter,
    /// Items popped.
    pub received: Counter,
    /// Sends that found the queue full and had to block.
    pub send_stalls: Counter,
    /// Total time producers spent blocked on a full queue, nanoseconds.
    pub stall_ns: Counter,
    /// Sizes of batched transfers (`send_batch`/`recv_batch`). Samples are
    /// item counts, not nanoseconds; the power-of-two buckets still apply.
    pub batch_sizes: Histogram,
}

/// The per-run instrument registry.
///
/// Cheap to share (`Arc` per instrument group); instrument lookup takes a
/// short-lived registration lock, so fetch instruments once at start-up and
/// hold the `Arc` on the hot path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stages: Mutex<BTreeMap<String, Arc<StageMetrics>>>,
    queues: Mutex<BTreeMap<String, Arc<QueueMetrics>>>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl crate::service::Service for MetricsRegistry {}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The instruments of stage `name` (created on first use).
    pub fn stage(&self, name: &str) -> Arc<StageMetrics> {
        let mut stages = self.stages.lock().unwrap();
        Arc::clone(stages.entry(name.to_string()).or_default())
    }

    /// The instruments of queue `name` (created on first use).
    pub fn queue(&self, name: &str) -> Arc<QueueMetrics> {
        let mut queues = self.queues.lock().unwrap();
        Arc::clone(queues.entry(name.to_string()).or_default())
    }

    /// A free-standing named counter (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap();
        Arc::clone(counters.entry(name.to_string()).or_default())
    }

    /// A free-standing named histogram (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap();
        Arc::clone(histograms.entry(name.to_string()).or_default())
    }

    /// A point-in-time plain-data copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self
                .stages
                .lock()
                .unwrap()
                .iter()
                .map(|(name, m)| {
                    (
                        name.clone(),
                        StageSnapshot {
                            items_in: m.items_in.get(),
                            items_out: m.items_out.get(),
                            process_ns: m.process_ns.snapshot(),
                            faults: m.faults.get(),
                            panics: m.panics.get(),
                            retries: m.retries.get(),
                            skipped: m.skipped.get(),
                            dead_letters: m.dead_letters.get(),
                            checkpoints: m.checkpoints.get(),
                            restores: m.restores.get(),
                            replayed_items: m.replayed_items.get(),
                            recovery_ns: m.recovery_ns.get(),
                        },
                    )
                })
                .collect(),
            queues: self
                .queues
                .lock()
                .unwrap()
                .iter()
                .map(|(name, m)| {
                    (
                        name.clone(),
                        QueueSnapshot {
                            depth: m.depth.get(),
                            depth_high_water: m.depth.high_water(),
                            sent: m.sent.get(),
                            received: m.received.get(),
                            send_stalls: m.send_stalls.get(),
                            stall_ns: m.stall_ns.get(),
                            batch_sizes: m.batch_sizes.snapshot(),
                        },
                    )
                })
                .collect(),
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of one stage's instruments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    /// Items entering the stage.
    pub items_in: u64,
    /// Items leaving the stage.
    pub items_out: u64,
    /// Per-call latency distribution.
    pub process_ns: HistogramSnapshot,
    /// Failed processor invocations (errors + panics).
    pub faults: u64,
    /// The subset of `faults` that were isolated panics.
    pub panics: u64,
    /// Re-invocations performed by a `Retry` policy.
    pub retries: u64,
    /// Items dropped by a `Skip` policy.
    pub skipped: u64,
    /// Items moved to the dead-letter queue.
    pub dead_letters: u64,
    /// Checkpoint barriers taken.
    pub checkpoints: u64,
    /// State restores performed (`Restart` recoveries + `Retry` rollbacks).
    pub restores: u64,
    /// Logged items replayed during recoveries.
    pub replayed_items: u64,
    /// Total recovery wall-clock, nanoseconds.
    pub recovery_ns: u64,
}

impl StageSnapshot {
    /// Folds another stage's counters and latency histogram into this one.
    pub fn merge(&mut self, other: &StageSnapshot) {
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.process_ns.merge(&other.process_ns);
        self.faults += other.faults;
        self.panics += other.panics;
        self.retries += other.retries;
        self.skipped += other.skipped;
        self.dead_letters += other.dead_letters;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.replayed_items += other.replayed_items;
        self.recovery_ns += other.recovery_ns;
    }
}

/// One logical stage's metrics after replica rollup: the combined shard
/// totals plus the per-role breakdown (see [`MetricsSnapshot::rollup_stages`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRollup {
    /// Sum over the numeric shard replicas (`name[0]`, `name[1]`, ...). For
    /// an unreplicated stage this is the stage snapshot itself.
    pub combined: StageSnapshot,
    /// Every sub-stage keyed by its replica dimension — `"0"`, `"1"`, ...
    /// for the shards plus `"part"`/`"merge"` for the synthesized
    /// partitioner and merge. Empty for unreplicated stages.
    pub replicas: BTreeMap<String, StageSnapshot>,
}

/// Plain-data copy of one queue's instruments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Buffered items at snapshot time.
    pub depth: i64,
    /// Highest depth ever observed.
    pub depth_high_water: i64,
    /// Items pushed.
    pub sent: u64,
    /// Items popped.
    pub received: u64,
    /// Sends that blocked on a full queue.
    pub send_stalls: u64,
    /// Total producer blocking time, nanoseconds.
    pub stall_ns: u64,
    /// Batched-transfer size distribution (samples are item counts).
    pub batch_sizes: HistogramSnapshot,
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Per-stage flow and latency, keyed by stage name.
    pub stages: BTreeMap<String, StageSnapshot>,
    /// Per-queue depth and backpressure, keyed by queue name.
    pub queues: BTreeMap<String, QueueSnapshot>,
    /// Free-standing counters.
    pub counters: BTreeMap<String, u64>,
    /// Free-standing histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Groups replicated-stage metrics under their logical stage name.
    ///
    /// A process declared with `.replicas(n)` runs as sub-stages labelled
    /// `name[part]`, `name[0]`..`name[n-1]` and `name[merge]` (see
    /// [`crate::partition`]); each gets its own instruments so replicas never
    /// alias one counter. This helper re-groups those labels by `name`,
    /// summing the numeric shard replicas into
    /// [`StageRollup::combined`] (the partitioner and merge stay visible in
    /// [`StageRollup::replicas`] but are bookkeeping, not shard work, so
    /// they are excluded from the combined totals). Unreplicated stages pass
    /// through unchanged with an empty replica map.
    ///
    /// Note: shard `items_in` counts include the periodic watermark
    /// broadcasts every replica observes, so combined totals can slightly
    /// exceed the stage's logical input count.
    pub fn rollup_stages(&self) -> BTreeMap<String, StageRollup> {
        let mut out: BTreeMap<String, StageRollup> = BTreeMap::new();
        for (name, snap) in &self.stages {
            let split = name
                .strip_suffix(']')
                .and_then(|n| n.split_once('['))
                .map(|(base, dim)| (base.to_string(), dim.to_string()));
            match split {
                Some((base, dim)) => {
                    let entry = out.entry(base).or_insert_with(|| StageRollup {
                        combined: StageSnapshot::default(),
                        replicas: BTreeMap::new(),
                    });
                    if dim.parse::<usize>().is_ok() {
                        entry.combined.merge(snap);
                    }
                    entry.replicas.insert(dim, snap.clone());
                }
                None => {
                    out.insert(
                        name.clone(),
                        StageRollup { combined: snap.clone(), replicas: BTreeMap::new() },
                    );
                }
            }
        }
        out
    }

    /// Serialises the snapshot as one JSON object (schema documented in the
    /// repository README under *Metrics snapshot schema*).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"stages\":{");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            out.push_str(&format!(
                ":{{\"items_in\":{},\"items_out\":{},\"process_ns\":",
                s.items_in, s.items_out
            ));
            s.process_ns.json_into(&mut out);
            out.push_str(&format!(
                ",\"faults\":{},\"panics\":{},\"retries\":{},\"skipped\":{},\"dead_letters\":{},\"checkpoints\":{},\"restores\":{},\"replayed_items\":{},\"recovery_ns\":{}}}",
                s.faults, s.panics, s.retries, s.skipped, s.dead_letters,
                s.checkpoints, s.restores, s.replayed_items, s.recovery_ns
            ));
        }
        out.push_str("},\"queues\":{");
        for (i, (name, q)) in self.queues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            out.push_str(&format!(
                ":{{\"depth\":{},\"depth_high_water\":{},\"sent\":{},\"received\":{},\"send_stalls\":{},\"stall_ns\":{}",
                q.depth, q.depth_high_water, q.sent, q.received, q.send_stalls, q.stall_ns
            ));
            // Batch sizes count items, not nanoseconds, so they get their own
            // compact object instead of the `*_ns` histogram schema.
            let b = &q.batch_sizes;
            out.push_str(&format!(
                ",\"batch_sizes\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                b.count, b.sum_ns, b.min_ns, b.max_ns
            ));
            json::float_into(&mut out, b.mean_ns());
            out.push_str(&format!(
                ",\"p50\":{},\"p99\":{}}}}}",
                b.quantile_ns(0.50),
                b.quantile_ns(0.99)
            ));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, name);
            out.push(':');
            h.json_into(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Renders a fixed-width per-stage/per-queue summary table.
    pub fn render_table(&self) -> String {
        fn ms(ns: f64) -> String {
            format!("{:.3}", ns / 1e6)
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
            "stage", "in", "out", "mean ms", "p99 ms", "max ms", "faults"
        ));
        for (name, s) in &self.stages {
            out.push_str(&format!(
                "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
                name,
                s.items_in,
                s.items_out,
                ms(s.process_ns.mean_ns()),
                ms(s.process_ns.quantile_ns(0.99) as f64),
                ms(s.process_ns.max_ns as f64),
                s.faults,
            ));
        }
        let recovering: Vec<(&String, &StageSnapshot)> = self
            .stages
            .iter()
            .filter(|(_, s)| s.checkpoints > 0 || s.restores > 0 || s.replayed_items > 0)
            .collect();
        if !recovering.is_empty() {
            out.push('\n');
            out.push_str(&format!(
                "{:<28} {:>10} {:>10} {:>10} {:>12}\n",
                "recovery", "ckpts", "restores", "replayed", "recovery ms"
            ));
            for (name, s) in recovering {
                out.push_str(&format!(
                    "{:<28} {:>10} {:>10} {:>10} {:>12}\n",
                    name,
                    s.checkpoints,
                    s.restores,
                    s.replayed_items,
                    ms(s.recovery_ns as f64),
                ));
            }
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
            "queue", "sent", "received", "hwm", "stalls", "stall ms", "avg batch"
        ));
        for (name, q) in &self.queues {
            out.push_str(&format!(
                "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9.1}\n",
                name,
                q.sent,
                q.received,
                q.depth_high_water,
                q.send_stalls,
                ms(q.stall_ns as f64),
                q.batch_sizes.mean_ns(),
            ));
        }
        if !self.histograms.is_empty() {
            out.push('\n');
            out.push_str(&format!(
                "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "timer", "count", "mean ms", "p50 ms", "p99 ms", "max ms"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count,
                    ms(h.mean_ns()),
                    ms(h.quantile_ns(0.50) as f64),
                    ms(h.quantile_ns(0.99) as f64),
                    ms(h.max_ns as f64),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(3);
        g.add(2);
        g.add(-4);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 5);
        g.set(10);
        assert_eq!((g.get(), g.high_water()), (10, 10));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_ns(0.5), 0, "empty histogram");
        for ns in [100, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.sum_ns, 101_500);
        assert!((s.mean_ns() - 20_300.0).abs() < 1e-9);
        // p50 is the 3rd sample (400 ns) → bucket [256, 512) → upper 512.
        assert_eq!(s.quantile_ns(0.5), 512);
        // p99 lands in the top sample's bucket, clamped to the observed max.
        assert_eq!(s.quantile_ns(0.99), 100_000);
    }

    #[test]
    fn histogram_extremes_do_not_panic() {
        let h = Histogram::new();
        h.record_ns(0); // clamps into the first bucket
        h.record_ns(u64::MAX); // clamps into the last bucket
        h.record(Duration::from_secs(1));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn registry_reuses_instruments() {
        let r = MetricsRegistry::new();
        r.stage("rtec").items_in.add(7);
        r.stage("rtec").items_in.inc();
        r.queue("sde").depth.add(3);
        r.counter("alerts").add(2);
        r.histogram("window").record_ns(1000);
        let snap = r.snapshot();
        assert_eq!(snap.stages["rtec"].items_in, 8);
        assert_eq!(snap.queues["sde"].depth_high_water, 3);
        assert_eq!(snap.counters["alerts"], 2);
        assert_eq!(snap.histograms["window"].count, 1);
    }

    #[test]
    fn instruments_are_thread_safe() {
        let r = Arc::new(MetricsRegistry::new());
        let stage = r.stage("s");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stage = Arc::clone(&stage);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        stage.items_in.inc();
                        stage.process_ns.record_ns(50);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.stages["s"].items_in, 40_000);
        assert_eq!(snap.stages["s"].process_ns.count, 40_000);
    }

    #[test]
    fn rollup_groups_replicated_stages() {
        let r = MetricsRegistry::new();
        r.stage("rtec[part]").items_in.add(100);
        r.stage("rtec[0]").items_in.add(60);
        r.stage("rtec[0]").process_ns.record_ns(100);
        r.stage("rtec[1]").items_in.add(40);
        r.stage("rtec[1]").process_ns.record_ns(300);
        r.stage("rtec[1]").faults.add(2);
        r.stage("rtec[merge]").items_in.add(100);
        r.stage("plain").items_in.add(5);
        let rollup = r.snapshot().rollup_stages();

        let rtec = &rollup["rtec"];
        assert_eq!(rtec.combined.items_in, 100, "shards only; part/merge excluded");
        assert_eq!(rtec.combined.faults, 2);
        assert_eq!(rtec.combined.process_ns.count, 2);
        assert_eq!(rtec.combined.process_ns.sum_ns, 400);
        assert_eq!(rtec.combined.process_ns.min_ns, 100);
        assert_eq!(rtec.combined.process_ns.max_ns, 300);
        assert_eq!(
            rtec.replicas.keys().collect::<Vec<_>>(),
            ["0", "1", "merge", "part"],
            "every role keeps its own row"
        );
        assert_eq!(rtec.replicas["part"].items_in, 100);

        let plain = &rollup["plain"];
        assert_eq!(plain.combined.items_in, 5);
        assert!(plain.replicas.is_empty());
    }

    #[test]
    fn snapshot_serialises_and_renders() {
        let r = MetricsRegistry::new();
        r.stage("rtec-north").items_in.add(10);
        r.stage("rtec-north").items_out.add(2);
        r.stage("rtec-north").process_ns.record_ns(2_000_000);
        r.queue("sde-north").sent.add(10);
        r.queue("sde-north").batch_sizes.record_ns(4);
        r.histogram("rtec.window_ns").record_ns(5_000_000);
        let snap = r.snapshot();

        let json = snap.to_json();
        for needle in [
            "\"stages\":{\"rtec-north\":{\"items_in\":10,\"items_out\":2",
            "\"queues\":{\"sde-north\":{\"depth\":0",
            "\"batch_sizes\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4",
            "\"histograms\":{\"rtec.window_ns\":{\"count\":1",
            "\"p99_ns\":",
        ] {
            assert!(json.contains(needle), "JSON missing {needle}: {json}");
        }

        let table = snap.render_table();
        assert!(table.contains("rtec-north"));
        assert!(table.contains("sde-north"));
        assert!(table.contains("rtec.window_ns"));
    }
}
