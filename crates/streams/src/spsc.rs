//! Lock-free single-producer / single-consumer ring buffer.
//!
//! The general [`crate::queue`] channel guards a `VecDeque` with a mutex and
//! two condvars — correct for any producer count, but on the partitioned hot
//! path (`P[part] → P[i]` shard edges, and every other provably
//! single-producer edge) the lock round-trip per item dominates the work
//! being distributed. This module provides the classic Lamport ring for that
//! case: a fixed power-of-two slot array, a producer-owned `tail` counter and
//! a consumer-owned `head` counter. The producer writes a slot and publishes
//! it with a release store of `tail`; the consumer reads a slot it observed
//! via an acquire load of `tail` and releases it with a release store of
//! `head`. Neither side ever takes a lock to transfer an item.
//!
//! # Blocking
//!
//! `send` on a full ring and `recv` on an empty ring spin briefly, then park
//! on a mutex/condvar *slow path*. The fast path stays lock-free via the
//! Dekker-style parked-flag handshake: the sleeper sets its parked flag and
//! re-checks the ring under the lock before waiting; the waker publishes its
//! counter update, issues a [`fence`]`(SeqCst)` and checks the flag. Either
//! the sleeper's re-check sees the counter update (and skips the wait), or
//! the waker sees the parked flag (and notifies while holding the lock) — a
//! lost wakeup would require both loads to miss, which the fence pair
//! forbids.
//!
//! # Termination
//!
//! There is exactly one producer, so the two-mechanism EOS accounting of the
//! MPMC queue collapses to a single `closed` flag, set by `finish()` or the
//! sender drop. `closed` is stored *after* all item publications (release) —
//! a consumer that observes it (acquire) therefore also observes every
//! published item, and reports end-of-stream only once the ring is drained.
//!
//! # Ordering ⇒ determinism
//!
//! The ring is strictly FIFO: the consumer observes items in exactly the
//! producer's send order, the same guarantee the mutex queue gives a single
//! producer. Replacing a single-producer mutex queue with this ring is
//! therefore invisible to the partition merge protocol — per-shard sequences
//! arrive in identical order, so the merge releases identical output.

use crate::item::DataItem;
use crate::metrics::QueueMetrics;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Spins on the fast path before parking; a handful of iterations rides out
/// the common "consumer is one slot behind" races without a syscall. On a
/// single-core host the peer thread cannot make progress while we spin, so
/// spinning is pure waste there — park immediately instead.
fn spin_limit() -> u32 {
    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            64
        } else {
            0
        }
    })
}

/// One ring slot. Only the producer writes an un-published slot and only the
/// consumer reads a published one, so the `UnsafeCell` is never contended.
struct Slot(UnsafeCell<MaybeUninit<DataItem>>);

pub(crate) struct Ring {
    buf: Box<[Slot]>,
    /// `buf.len() - 1`; the buffer length is a power of two ≥ `capacity`.
    mask: usize,
    /// Declared capacity: `tail - head` never exceeds it, so backpressure
    /// semantics match a mutex queue of the same capacity exactly even when
    /// the slot array is rounded up.
    capacity: usize,
    /// Next slot to pop; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to push; written only by the producer.
    tail: AtomicUsize,
    /// Producer finished (or dropped); set after all pushes.
    closed: AtomicBool,
    consumer_alive: AtomicBool,
    producer_parked: AtomicBool,
    consumer_parked: AtomicBool,
    lock: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
    metrics: Arc<QueueMetrics>,
}

// The raw pointers inside `UnsafeCell` are only touched under the ownership
// protocol above (producer writes unpublished slots, consumer reads published
// ones), so sharing the ring across the two threads is sound.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Drop for Ring {
    fn drop(&mut self) {
        // Drop undelivered items; with both handles gone the counters are
        // plain values.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            unsafe { (*self.buf[i & self.mask].0.get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

impl Ring {
    fn new(capacity: usize, metrics: Arc<QueueMetrics>) -> Ring {
        let capacity = capacity.max(1);
        let len = capacity.next_power_of_two();
        let buf: Box<[Slot]> =
            (0..len).map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit()))).collect();
        Ring {
            buf,
            mask: len - 1,
            capacity,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            consumer_alive: AtomicBool::new(true),
            producer_parked: AtomicBool::new(false),
            consumer_parked: AtomicBool::new(false),
            lock: Mutex::new(()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            metrics,
        }
    }

    fn is_full(&self) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) >= self.capacity
    }

    fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        head == tail
    }

    /// Publishes an item without touching metrics or the wake protocol —
    /// the caller **must** account for it (`sent`/`depth`) and call
    /// [`wake_consumer`](Ring::wake_consumer) before it next blocks or
    /// returns, or a parked consumer never learns about the item.
    fn push_quiet(&self, item: DataItem) -> Result<(), DataItem> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.capacity {
            return Err(item);
        }
        unsafe { (*self.buf[tail & self.mask].0.get()).write(item) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Non-blocking push (producer thread only).
    fn push(&self, item: DataItem) -> Result<(), DataItem> {
        self.push_quiet(item)?;
        self.metrics.sent.inc();
        self.metrics.depth.add(1);
        self.wake_consumer();
        Ok(())
    }

    /// Consumes an item without touching metrics or the wake protocol — the
    /// same contract as [`push_quiet`](Ring::push_quiet), mirrored: the
    /// caller must account `received`/`depth` and call
    /// [`wake_producer`](Ring::wake_producer) before it next blocks or
    /// returns.
    fn pop_quiet(&self) -> Option<DataItem> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = unsafe { (*self.buf[head & self.mask].0.get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Non-blocking pop (consumer thread only).
    fn pop(&self) -> Option<DataItem> {
        let item = self.pop_quiet()?;
        self.metrics.received.inc();
        self.metrics.depth.add(-1);
        self.wake_producer();
        Some(item)
    }

    /// Waker half of the parked-flag handshake (see the module docs). Called
    /// after every counter publication; the fence pairs with the sleeper's.
    fn wake_consumer(&self) {
        fence(Ordering::SeqCst);
        if self.consumer_parked.load(Ordering::Relaxed) {
            let _guard = self.lock.lock().unwrap();
            self.not_empty.notify_all();
        }
    }

    fn wake_producer(&self) {
        fence(Ordering::SeqCst);
        if self.producer_parked.load(Ordering::Relaxed) {
            let _guard = self.lock.lock().unwrap();
            self.not_full.notify_all();
        }
    }

    /// Blocking send; `false` once the consumer is gone (item discarded).
    fn send(&self, mut item: DataItem) -> bool {
        let spin_max = spin_limit();
        for spin in 0..=spin_max {
            if !self.consumer_alive.load(Ordering::Acquire) {
                return false;
            }
            match self.push(item) {
                Ok(()) => return true,
                Err(back) => item = back,
            }
            if spin < spin_max {
                std::hint::spin_loop();
            }
        }
        // Park until the consumer makes room (or disappears).
        self.metrics.send_stalls.inc();
        let stalled_at = Instant::now();
        loop {
            {
                let guard = self.lock.lock().unwrap();
                self.producer_parked.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if self.is_full() && self.consumer_alive.load(Ordering::Relaxed) {
                    let _guard = self.not_full.wait(guard).unwrap();
                }
                self.producer_parked.store(false, Ordering::Relaxed);
            }
            if !self.consumer_alive.load(Ordering::Acquire) {
                self.metrics.stall_ns.add(stalled_at.elapsed().as_nanos() as u64);
                return false;
            }
            match self.push(item) {
                Ok(()) => {
                    self.metrics.stall_ns.add(stalled_at.elapsed().as_nanos() as u64);
                    return true;
                }
                Err(back) => item = back,
            }
        }
    }

    /// Blocking receive; `None` once the producer closed and the ring
    /// drained.
    fn recv(&self) -> Option<DataItem> {
        let mut spins = 0u32;
        loop {
            if let Some(item) = self.pop() {
                return Some(item);
            }
            if self.closed.load(Ordering::Acquire) {
                // `closed` is stored after the final push, so one more pop
                // observes anything that raced with the close.
                return self.pop();
            }
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            {
                let guard = self.lock.lock().unwrap();
                self.consumer_parked.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if self.is_empty() && !self.closed.load(Ordering::Relaxed) {
                    let _guard = self.not_empty.wait(guard).unwrap();
                }
                self.consumer_parked.store(false, Ordering::Relaxed);
            }
            spins = 0;
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<DataItem>, crate::queue::Timeout> {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if let Some(item) = self.pop() {
                return Ok(Some(item));
            }
            if self.closed.load(Ordering::Acquire) {
                return Ok(self.pop());
            }
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(crate::queue::Timeout);
            }
            let guard = self.lock.lock().unwrap();
            self.consumer_parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if self.is_empty() && !self.closed.load(Ordering::Relaxed) {
                let _ = self.not_empty.wait_timeout(guard, deadline - now).unwrap();
            }
            self.consumer_parked.store(false, Ordering::Relaxed);
            spins = 0;
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake_consumer();
    }

    fn drop_consumer(&self) {
        self.consumer_alive.store(false, Ordering::Release);
        self.wake_producer();
    }
}

/// Producer handle. **Single-owner**: the wrapping
/// [`QueueSender`](crate::queue::QueueSender) panics on `clone()` for the
/// SPSC variant.
pub(crate) struct SpscSender {
    ring: Arc<Ring>,
}

impl Drop for SpscSender {
    fn drop(&mut self) {
        // A dropped producer can never send again; this is `finish()`.
        self.ring.close();
    }
}

impl SpscSender {
    pub(crate) fn send(&self, item: DataItem) -> bool {
        self.ring.send(item)
    }

    /// See [`crate::queue::QueueSender::send_batch`]: same FIFO guarantee,
    /// one batch-size sample per call.
    ///
    /// Items are published with the quiet push and the metric counters are
    /// bulk-updated per *transfer* rather than per item — one `sent.add(k)` /
    /// `depth.add(k)` / wake instead of `k` of each. The wake discipline:
    /// every run of quiet pushes is flushed (counters + `wake_consumer`)
    /// **before** the producer can block on a full ring, so a parked consumer
    /// is always woken ahead of the producer parking itself — the
    /// parked-parked deadlock is impossible.
    pub(crate) fn send_batch(&self, items: Vec<DataItem>) -> bool {
        if items.is_empty() {
            return true;
        }
        let n = items.len();
        let mut sent = 0u64;
        let mut quiet = 0i64; // pushed since the last counter flush / wake
        let flush = |quiet: &mut i64| {
            if *quiet > 0 {
                self.ring.metrics.sent.add(*quiet as u64);
                self.ring.metrics.depth.add(*quiet);
                *quiet = 0;
                self.ring.wake_consumer();
            }
        };
        for item in items {
            match self.ring.push_quiet(item) {
                Ok(()) => {
                    quiet += 1;
                    sent += 1;
                }
                Err(back) => {
                    // Full: publish what we have (and wake the consumer) so
                    // it can drain while we take the blocking slow path.
                    flush(&mut quiet);
                    if !self.ring.send(back) {
                        break;
                    }
                    sent += 1;
                }
            }
        }
        flush(&mut quiet);
        if sent > 0 {
            self.ring.metrics.batch_sizes.record_ns(sent);
        }
        sent == n as u64
    }

    pub(crate) fn try_send(&self, item: DataItem) -> Result<bool, DataItem> {
        if !self.ring.consumer_alive.load(Ordering::Acquire) {
            return Ok(false);
        }
        match self.ring.push(item) {
            Ok(()) => Ok(true),
            Err(back) => Err(back),
        }
    }

    pub(crate) fn has_capacity(&self) -> bool {
        self.ring.consumer_alive.load(Ordering::Acquire) && !self.ring.is_full()
    }

    pub(crate) fn finish(&self) {
        self.ring.close();
    }
}

/// Consumer handle (single consumer by construction).
pub(crate) struct SpscReceiver {
    ring: Arc<Ring>,
}

impl Drop for SpscReceiver {
    fn drop(&mut self) {
        self.ring.drop_consumer();
    }
}

impl SpscReceiver {
    pub(crate) fn recv(&mut self) -> Option<DataItem> {
        self.ring.recv()
    }

    /// See [`crate::queue::QueueReceiver::recv_batch`]: blocks for the
    /// *first* item only, then drains whatever is already published — a
    /// partially filled ring yields a short batch rather than waiting, so
    /// batching never conflates "not fully drained" with "no progress".
    ///
    /// The drain after the first item uses the quiet pop and settles the
    /// metric counters (`received.add(k)` / `depth.add(-k)`) plus a single
    /// `wake_producer` once per call instead of once per item. The wake
    /// happens before this returns, so a producer parked on the full ring is
    /// always released by the batch that made room.
    pub(crate) fn recv_batch(&mut self, max: usize) -> Option<Vec<DataItem>> {
        let max = max.max(1);
        let first = self.ring.recv()?;
        let mut batch = Vec::with_capacity(max.min(self.ring.capacity));
        batch.push(first);
        let mut quiet = 0i64; // popped since recv()'s own accounting
        while batch.len() < max {
            match self.ring.pop_quiet() {
                Some(item) => {
                    batch.push(item);
                    quiet += 1;
                }
                None => break,
            }
        }
        if quiet > 0 {
            self.ring.metrics.received.add(quiet as u64);
            self.ring.metrics.depth.add(-quiet);
            self.ring.wake_producer();
        }
        self.ring.metrics.batch_sizes.record_ns(batch.len() as u64);
        Some(batch)
    }

    pub(crate) fn try_recv(&mut self) -> crate::queue::TryRecv {
        use crate::queue::TryRecv;
        if let Some(item) = self.ring.pop() {
            return TryRecv::Item(item);
        }
        if self.ring.closed.load(Ordering::Acquire) {
            match self.ring.pop() {
                Some(item) => TryRecv::Item(item),
                None => TryRecv::Ended,
            }
        } else {
            TryRecv::Empty
        }
    }

    pub(crate) fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<DataItem>, crate::queue::Timeout> {
        self.ring.recv_timeout(timeout)
    }
}

/// Creates an SPSC ring of the given capacity, recording into `metrics`.
pub(crate) fn ring_with_metrics(
    capacity: usize,
    metrics: Arc<QueueMetrics>,
) -> (SpscSender, SpscReceiver) {
    let ring = Arc::new(Ring::new(capacity, metrics));
    (SpscSender { ring: Arc::clone(&ring) }, SpscReceiver { ring })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::TryRecv;

    fn ring(capacity: usize) -> (SpscSender, SpscReceiver) {
        ring_with_metrics(capacity, Arc::new(QueueMetrics::default()))
    }

    fn item(n: i64) -> DataItem {
        DataItem::new().with("n", n)
    }

    #[test]
    fn fifo_roundtrip_and_close() {
        let (tx, mut rx) = ring(4);
        for n in 0..3 {
            assert!(tx.send(item(n)));
        }
        tx.finish();
        for n in 0..3 {
            assert_eq!(rx.recv().unwrap().get_i64("n"), Some(n));
        }
        assert!(rx.recv().is_none());
        assert!(rx.recv().is_none(), "stays terminated");
    }

    #[test]
    fn capacity_is_exact_not_rounded() {
        // Declared capacity 3 rides in a 4-slot buffer but still rejects the
        // 4th item, matching the mutex queue's backpressure bound.
        let (tx, mut rx) = ring(3);
        for n in 0..3 {
            assert_eq!(tx.try_send(item(n)), Ok(true));
        }
        assert!(!tx.has_capacity());
        let bounced = tx.try_send(item(9)).unwrap_err();
        assert_eq!(bounced.get_i64("n"), Some(9));
        assert!(matches!(rx.try_recv(), TryRecv::Item(_)));
        assert!(tx.has_capacity());
    }

    #[test]
    fn dropped_sender_terminates_after_drain() {
        let (tx, mut rx) = ring(4);
        tx.send(item(7));
        drop(tx);
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(7), "buffered item drains");
        assert!(rx.recv().is_none());
    }

    #[test]
    fn dropped_receiver_unblocks_producer() {
        let (tx, rx) = ring(1);
        assert!(tx.send(item(1)));
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
        });
        // Ring is full; this blocks until the receiver drop wakes it.
        assert!(!tx.send(item(2)), "consumer gone");
        assert_eq!(tx.try_send(item(3)), Ok(false), "discards after death");
        handle.join().unwrap();
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        let (tx, mut rx) = ring(1);
        assert!(tx.send(item(1)));
        let producer = std::thread::spawn(move || {
            assert!(tx.send(item(2)));
            tx.finish();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(1));
        assert_eq!(rx.recv().unwrap().get_i64("n"), Some(2));
        assert!(rx.recv().is_none());
        producer.join().unwrap();
    }

    #[test]
    fn try_recv_distinguishes_empty_from_ended() {
        let (tx, mut rx) = ring(2);
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        tx.send(item(1));
        assert!(matches!(rx.try_recv(), TryRecv::Item(_)));
        assert_eq!(rx.try_recv(), TryRecv::Empty, "open stream, empty ring");
        tx.finish();
        assert_eq!(rx.try_recv(), TryRecv::Ended);
        assert_eq!(rx.try_recv(), TryRecv::Ended, "stays terminated");
    }

    #[test]
    fn close_racing_with_last_push_never_loses_items() {
        for _ in 0..200 {
            let (tx, mut rx) = ring(8);
            let producer = std::thread::spawn(move || {
                for n in 0..5 {
                    tx.send(item(n));
                }
                // finish() happens via drop, racing with the consumer.
            });
            let mut got = Vec::new();
            while let Some(i) = rx.recv() {
                got.push(i.get_i64("n").unwrap());
            }
            producer.join().unwrap();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn recv_batch_drains_available_without_waiting_for_full_batch() {
        let (tx, mut rx) = ring(8);
        for n in 0..3 {
            tx.send(item(n));
        }
        let batch = rx.recv_batch(10).unwrap();
        assert_eq!(
            batch.iter().map(|i| i.get_i64("n").unwrap()).collect::<Vec<_>>(),
            [0, 1, 2],
            "short batch, no waiting"
        );
        tx.finish();
        assert!(rx.recv_batch(4).is_none());
    }

    #[test]
    fn send_batch_larger_than_capacity_drains_through() {
        let (tx, mut rx) = ring(2);
        let producer = std::thread::spawn(move || {
            assert!(tx.send_batch((0..20).map(item).collect()));
            tx.finish();
        });
        let mut seen = Vec::new();
        while let Some(batch) = rx.recv_batch(4) {
            seen.extend(batch.iter().map(|i| i.get_i64("n").unwrap()));
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<i64>>());
    }

    #[test]
    fn recv_timeout_variant() {
        let (tx, mut rx) = ring(4);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err(), "times out while empty");
        tx.send(item(1));
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Ok(Some(_))));
        tx.finish();
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Ok(None)));
    }

    #[test]
    fn metrics_parity_with_mutex_queue() {
        let metrics = Arc::new(QueueMetrics::default());
        let (tx, mut rx) = ring_with_metrics(1, Arc::clone(&metrics));
        assert!(tx.send(item(1)));
        let blocked = std::thread::spawn(move || {
            tx.send(item(2));
            tx.finish();
        });
        std::thread::sleep(Duration::from_millis(20));
        while rx.recv().is_some() {}
        blocked.join().unwrap();
        assert_eq!(metrics.sent.get(), 2);
        assert_eq!(metrics.received.get(), 2);
        assert_eq!(metrics.depth.get(), 0);
        assert_eq!(metrics.depth.high_water(), 1);
        assert_eq!(metrics.send_stalls.get(), 1);
        assert!(metrics.stall_ns.get() > 0, "the blocked send waited measurably");
    }

    #[test]
    fn undelivered_items_are_dropped_with_the_ring() {
        let (tx, rx) = ring(4);
        tx.send(item(1));
        tx.send(item(2));
        drop(tx);
        drop(rx); // must not leak the two buffered items (asan/miri-visible)
    }
}
