//! Processors: the functions applied to data items.
//!
//! A *process* comprises a sequence of *processors*; each processor applies a
//! function to the items of a stream (Section 3 of the paper). Returning
//! `None` drops the item (filtering); returning a (possibly modified) item
//! forwards it to the next processor in the chain.
//!
//! Besides the [`Processor`] trait this module ships the small library of
//! generic processors the XML topology language can instantiate by name:
//! filtering, key manipulation and counting.

use crate::error::StreamsError;
use crate::item::{DataItem, Value};
use crate::service::ServiceRegistry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Execution context handed to processors: access to the shared services and
/// the name of the owning process.
pub struct Context {
    services: ServiceRegistry,
    process: String,
}

impl Context {
    /// Creates a context (used by the runtime; public for direct testing of
    /// processors).
    pub fn new(services: ServiceRegistry, process: &str) -> Context {
        Context { services, process: process.to_string() }
    }

    /// The shared service registry.
    pub fn services(&self) -> &ServiceRegistry {
        &self.services
    }

    /// The name of the process this processor runs in.
    pub fn process_name(&self) -> &str {
        &self.process
    }
}

/// A function applied to every item of a stream.
///
/// # State contract under fault supervision
///
/// A `process` call that fails (error or isolated panic) may already have
/// mutated the processor's internal state — the runtime cannot roll that
/// back. Policies that re-invoke the processor
/// ([`Retry`](crate::fault::FaultPolicy::Retry),
/// [`Restart`](crate::fault::FaultPolicy::Restart)) therefore interact with
/// state as follows:
///
/// * a *stateless* processor (or one whose mutations are idempotent) is
///   always safe to re-invoke;
/// * a *stateful* processor should implement
///   [`Checkpointable`](crate::checkpoint::Checkpointable) and expose itself
///   through [`Processor::as_checkpointable`]: `Retry` then restores the
///   last checkpoint before each re-attempt (when one covering the current
///   position exists), and `Restart` rebuilds the processor from its factory,
///   restores the checkpoint and replays the logged items — so a failed
///   attempt's partial mutations never double-apply;
/// * a stateful processor without checkpoint support must tolerate partial
///   application of the failed item, or use `Skip`/`DeadLetter`/`FailFast`.
pub trait Processor: Send {
    /// Handles one item; `Ok(None)` drops it.
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError>;

    /// Called once after the input is exhausted; may emit trailing items
    /// (e.g. final aggregates). Default: nothing.
    fn finish(&mut self, _ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        Ok(Vec::new())
    }

    /// The checkpoint hook: stateful processors return `Some(self)` to opt
    /// into checkpoint barriers and checkpoint-based recovery (see
    /// [`crate::checkpoint`]). Default: `None` (stateless — rebuilding from
    /// the factory is recovery enough).
    fn as_checkpointable(&mut self) -> Option<&mut dyn crate::checkpoint::Checkpointable> {
        None
    }
}

/// Adapts a closure into a [`Processor`].
pub struct FnProcessor<F>(F);

impl<F> FnProcessor<F>
where
    F: FnMut(DataItem, &mut Context) -> Result<Option<DataItem>, StreamsError> + Send,
{
    /// Wraps the closure.
    pub fn new(f: F) -> FnProcessor<F> {
        FnProcessor(f)
    }
}

impl<F> Processor for FnProcessor<F>
where
    F: FnMut(DataItem, &mut Context) -> Result<Option<DataItem>, StreamsError> + Send,
{
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        (self.0)(item, ctx)
    }
}

// ---------------------------------------------------------------------------
// Generic processor library (instantiable from XML by class name)
// ---------------------------------------------------------------------------

/// Keeps only items where `key` equals the configured value (string
/// comparison on the rendered value).
pub struct FilterEquals {
    key: String,
    expected: String,
}

impl FilterEquals {
    /// Filter on `key == expected`.
    pub fn new(key: &str, expected: &str) -> FilterEquals {
        FilterEquals { key: key.to_string(), expected: expected.to_string() }
    }
}

impl Processor for FilterEquals {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        let keep = item.get(&self.key).map(|v| v.to_string() == self.expected).unwrap_or(false);
        Ok(keep.then_some(item))
    }
}

/// Keeps only items that carry the configured key.
pub struct RequireKey {
    key: String,
}

impl RequireKey {
    /// Filter on presence of `key`.
    pub fn new(key: &str) -> RequireKey {
        RequireKey { key: key.to_string() }
    }
}

impl Processor for RequireKey {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        Ok(item.contains(&self.key).then_some(item))
    }
}

/// Fails (rather than filters) items missing the configured key.
///
/// The erroring twin of [`RequireKey`]: it turns a schema violation into a
/// processor fault, so the process's [`crate::fault::FaultPolicy`] decides
/// whether to abort, skip, retry or dead-letter the item.
pub struct AssertKey {
    key: String,
}

impl AssertKey {
    /// Fault on items lacking `key`.
    pub fn new(key: &str) -> AssertKey {
        AssertKey { key: key.to_string() }
    }
}

impl Processor for AssertKey {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        if item.contains(&self.key) {
            Ok(Some(item))
        } else {
            Err(StreamsError::ServiceError {
                detail: format!("item is missing required key `{}`", self.key),
            })
        }
    }
}

/// Sets a constant attribute on every item.
pub struct SetValue {
    key: String,
    value: Value,
}

impl SetValue {
    /// Set `key` to `value` on every item.
    pub fn new(key: &str, value: Value) -> SetValue {
        SetValue { key: key.to_string(), value }
    }
}

impl Processor for SetValue {
    fn process(
        &mut self,
        mut item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        item.set(self.key.clone(), self.value.clone());
        Ok(Some(item))
    }
}

/// Renames an attribute.
pub struct RenameKey {
    from: String,
    to: String,
}

impl RenameKey {
    /// Rename `from` to `to` (no-op when `from` is absent).
    pub fn new(from: &str, to: &str) -> RenameKey {
        RenameKey { from: from.to_string(), to: to.to_string() }
    }
}

impl Processor for RenameKey {
    fn process(
        &mut self,
        mut item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        if let Some(v) = item.remove(&self.from) {
            item.set(self.to.clone(), v);
        }
        Ok(Some(item))
    }
}

/// Projects items to the configured key set.
pub struct SelectKeys {
    keys: Vec<String>,
}

impl SelectKeys {
    /// Keep only `keys`.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(keys: I) -> SelectKeys {
        SelectKeys { keys: keys.into_iter().map(Into::into).collect() }
    }
}

impl Processor for SelectKeys {
    fn process(
        &mut self,
        mut item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        let refs: Vec<&str> = self.keys.iter().map(String::as_str).collect();
        item.project(&refs);
        Ok(Some(item))
    }
}

/// Counts items, exposing the count through a shared atomic; items pass
/// through unchanged. At finish, emits one summary item `{count: N}`.
pub struct CountItems {
    counter: Arc<AtomicU64>,
}

impl CountItems {
    /// A counter backed by the given atomic.
    pub fn new(counter: Arc<AtomicU64>) -> CountItems {
        CountItems { counter }
    }
}

impl Processor for CountItems {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        self.counter.fetch_add(1, Ordering::Relaxed);
        Ok(Some(item))
    }

    fn finish(&mut self, _ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        let n = self.counter.load(Ordering::Relaxed) as i64;
        Ok(vec![DataItem::new().with("count", n)])
    }
}

/// Keeps every `k`-th item (stream thinning, as the mediators of the paper
/// apply).
pub struct Sample {
    every: usize,
    seen: usize,
}

impl Sample {
    /// Pass item 0, k, 2k, …; `every` is clamped to at least 1.
    pub fn new(every: usize) -> Sample {
        Sample { every: every.max(1), seen: 0 }
    }
}

impl Processor for Sample {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        let keep = self.seen.is_multiple_of(self.every);
        self.seen += 1;
        Ok(keep.then_some(item))
    }
}

/// Aggregates a numeric key over fixed-size batches: every `window` items
/// one summary item `{key_avg, key_min, key_max, count}` is emitted and the
/// originals are dropped — the "sensor readings are aggregated within fixed
/// time intervals" step of the paper's traffic modelling (§7.3), expressed
/// as a stream processor.
pub struct Aggregate {
    key: String,
    window: usize,
    values: Vec<f64>,
}

impl Aggregate {
    /// Aggregate `key` over batches of `window` items.
    pub fn new(key: &str, window: usize) -> Aggregate {
        Aggregate { key: key.to_string(), window: window.max(1), values: Vec::new() }
    }

    fn summary(&mut self) -> DataItem {
        let n = self.values.len().max(1) as f64;
        let sum: f64 = self.values.iter().sum();
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let item = DataItem::new()
            .with(format!("{}_avg", self.key), sum / n)
            .with(format!("{}_min", self.key), min)
            .with(format!("{}_max", self.key), max)
            .with("count", self.values.len() as i64);
        self.values.clear();
        item
    }
}

impl Processor for Aggregate {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        if let Some(v) = item.get_f64(&self.key) {
            self.values.push(v);
        }
        if self.values.len() >= self.window {
            Ok(Some(self.summary()))
        } else {
            Ok(None)
        }
    }

    fn finish(&mut self, _ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        if self.values.is_empty() {
            Ok(Vec::new())
        } else {
            Ok(vec![self.summary()])
        }
    }
}

/// A factory building processors from XML attributes, keyed by class name.
pub type ProcessorFactory =
    Box<dyn Fn(&HashMap<String, String>) -> Result<Box<dyn Processor>, StreamsError> + Send + Sync>;

/// Builds the default factory table covering the generic processor library.
///
/// | class | attributes |
/// |---|---|
/// | `FilterEquals` | `key`, `value` |
/// | `RequireKey` | `key` |
/// | `AssertKey` | `key` (faults instead of filtering) |
/// | `SetValue` | `key`, `value` (string) |
/// | `RenameKey` | `from`, `to` |
/// | `SelectKeys` | `keys` (comma-separated) |
pub fn default_factories() -> HashMap<String, ProcessorFactory> {
    fn required<'a>(
        attrs: &'a HashMap<String, String>,
        key: &str,
        class: &str,
    ) -> Result<&'a str, StreamsError> {
        attrs.get(key).map(String::as_str).ok_or_else(|| StreamsError::XmlSemantics {
            detail: format!("processor `{class}` requires attribute `{key}`"),
        })
    }

    let mut m: HashMap<String, ProcessorFactory> = HashMap::new();
    m.insert(
        "FilterEquals".into(),
        Box::new(|attrs| {
            Ok(Box::new(FilterEquals::new(
                required(attrs, "key", "FilterEquals")?,
                required(attrs, "value", "FilterEquals")?,
            )))
        }),
    );
    m.insert(
        "RequireKey".into(),
        Box::new(|attrs| Ok(Box::new(RequireKey::new(required(attrs, "key", "RequireKey")?)))),
    );
    m.insert(
        "AssertKey".into(),
        Box::new(|attrs| Ok(Box::new(AssertKey::new(required(attrs, "key", "AssertKey")?)))),
    );
    m.insert(
        "SetValue".into(),
        Box::new(|attrs| {
            Ok(Box::new(SetValue::new(
                required(attrs, "key", "SetValue")?,
                Value::from(required(attrs, "value", "SetValue")?.to_string()),
            )))
        }),
    );
    m.insert(
        "RenameKey".into(),
        Box::new(|attrs| {
            Ok(Box::new(RenameKey::new(
                required(attrs, "from", "RenameKey")?,
                required(attrs, "to", "RenameKey")?,
            )))
        }),
    );
    m.insert(
        "SelectKeys".into(),
        Box::new(|attrs| {
            let keys: Vec<String> = required(attrs, "keys", "SelectKeys")?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            Ok(Box::new(SelectKeys::new(keys)))
        }),
    );
    m.insert(
        "Sample".into(),
        Box::new(|attrs| {
            let every = required(attrs, "every", "Sample")?.parse::<usize>().map_err(|_| {
                StreamsError::XmlSemantics {
                    detail: "Sample `every` must be a positive integer".into(),
                }
            })?;
            Ok(Box::new(Sample::new(every)))
        }),
    );
    m.insert(
        "Aggregate".into(),
        Box::new(|attrs| {
            let key = required(attrs, "key", "Aggregate")?;
            let window =
                required(attrs, "window", "Aggregate")?.parse::<usize>().map_err(|_| {
                    StreamsError::XmlSemantics {
                        detail: "Aggregate `window` must be a positive integer".into(),
                    }
                })?;
            Ok(Box::new(Aggregate::new(key, window)))
        }),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(ServiceRegistry::new(), "test")
    }

    fn item() -> DataItem {
        DataItem::new().with("kind", "move").with("bus", 7i64).with("delay", 120i64)
    }

    #[test]
    fn filter_equals() {
        let mut p = FilterEquals::new("kind", "move");
        assert!(p.process(item(), &mut ctx()).unwrap().is_some());
        let mut p = FilterEquals::new("kind", "traffic");
        assert!(p.process(item(), &mut ctx()).unwrap().is_none());
        let mut p = FilterEquals::new("missing", "x");
        assert!(p.process(item(), &mut ctx()).unwrap().is_none());
    }

    #[test]
    fn filter_equals_renders_numbers() {
        let mut p = FilterEquals::new("bus", "7");
        assert!(p.process(item(), &mut ctx()).unwrap().is_some());
    }

    #[test]
    fn require_key() {
        let mut p = RequireKey::new("delay");
        assert!(p.process(item(), &mut ctx()).unwrap().is_some());
        let mut p = RequireKey::new("ghost");
        assert!(p.process(item(), &mut ctx()).unwrap().is_none());
    }

    #[test]
    fn set_and_rename_and_select() {
        let mut s = SetValue::new("region", Value::Str("north".into()));
        let it = s.process(item(), &mut ctx()).unwrap().unwrap();
        assert_eq!(it.get_str("region"), Some("north"));

        let mut r = RenameKey::new("bus", "vehicle");
        let it = r.process(it, &mut ctx()).unwrap().unwrap();
        assert_eq!(it.get_i64("vehicle"), Some(7));
        assert!(!it.contains("bus"));

        let mut sel = SelectKeys::new(["vehicle", "region"]);
        let it = sel.process(it, &mut ctx()).unwrap().unwrap();
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn count_items_emits_summary() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut p = CountItems::new(Arc::clone(&counter));
        for _ in 0..5 {
            p.process(item(), &mut ctx()).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 5);
        let summary = p.finish(&mut ctx()).unwrap();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].get_i64("count"), Some(5));
    }

    #[test]
    fn fn_processor_closure() {
        let mut p = FnProcessor::new(|mut item: DataItem, _| {
            let d = item.get_i64("delay").unwrap_or(0);
            item.set("delay_min", d / 60);
            Ok(Some(item))
        });
        let it = p.process(item(), &mut ctx()).unwrap().unwrap();
        assert_eq!(it.get_i64("delay_min"), Some(2));
    }

    #[test]
    fn factories_build_and_validate() {
        let f = default_factories();
        let mut attrs = HashMap::new();
        attrs.insert("key".to_string(), "kind".to_string());
        attrs.insert("value".to_string(), "move".to_string());
        let mut p = f["FilterEquals"](&attrs).unwrap();
        assert!(p.process(item(), &mut ctx()).unwrap().is_some());

        let missing: HashMap<String, String> = HashMap::new();
        assert!(f["FilterEquals"](&missing).is_err());
        assert!(f["SelectKeys"](&missing).is_err());
    }

    #[test]
    fn sample_keeps_every_kth() {
        let mut p = Sample::new(3);
        let kept: Vec<bool> =
            (0..7).map(|_| p.process(item(), &mut ctx()).unwrap().is_some()).collect();
        assert_eq!(kept, vec![true, false, false, true, false, false, true]);
        // every=0 clamps to 1 (identity)
        let mut p = Sample::new(0);
        assert!(p.process(item(), &mut ctx()).unwrap().is_some());
        assert!(p.process(item(), &mut ctx()).unwrap().is_some());
    }

    #[test]
    fn aggregate_emits_batch_summaries() {
        let mut p = Aggregate::new("delay", 3);
        let mk = |d: f64| DataItem::new().with("delay", d);
        assert!(p.process(mk(10.0), &mut ctx()).unwrap().is_none());
        assert!(p.process(mk(20.0), &mut ctx()).unwrap().is_none());
        let summary = p.process(mk(60.0), &mut ctx()).unwrap().unwrap();
        assert_eq!(summary.get_f64("delay_avg"), Some(30.0));
        assert_eq!(summary.get_f64("delay_min"), Some(10.0));
        assert_eq!(summary.get_f64("delay_max"), Some(60.0));
        assert_eq!(summary.get_i64("count"), Some(3));
        // Tail flushes at finish.
        assert!(p.process(mk(5.0), &mut ctx()).unwrap().is_none());
        let trailing = p.finish(&mut ctx()).unwrap();
        assert_eq!(trailing.len(), 1);
        assert_eq!(trailing[0].get_i64("count"), Some(1));
        // Nothing pending: finish is empty.
        assert!(p.finish(&mut ctx()).unwrap().is_empty());
    }

    #[test]
    fn aggregate_ignores_items_without_key() {
        let mut p = Aggregate::new("delay", 2);
        assert!(p.process(DataItem::new().with("other", 1i64), &mut ctx()).unwrap().is_none());
        assert!(p.finish(&mut ctx()).unwrap().is_empty());
    }

    #[test]
    fn sample_and_aggregate_factories() {
        let f = default_factories();
        let mut attrs = HashMap::new();
        attrs.insert("every".to_string(), "2".to_string());
        assert!(f["Sample"](&attrs).is_ok());
        attrs.insert("every".to_string(), "x".to_string());
        assert!(f["Sample"](&attrs).is_err());

        let mut attrs = HashMap::new();
        attrs.insert("key".to_string(), "flow".to_string());
        attrs.insert("window".to_string(), "5".to_string());
        assert!(f["Aggregate"](&attrs).is_ok());
        attrs.remove("window");
        assert!(f["Aggregate"](&attrs).is_err());
    }

    #[test]
    fn context_exposes_process_name() {
        let c = Context::new(ServiceRegistry::new(), "region-north");
        assert_eq!(c.process_name(), "region-north");
    }
}
