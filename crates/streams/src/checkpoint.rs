//! Checkpoint/restore: durable processor state for crash recovery.
//!
//! The paper's pipeline is meant to run continuously over city-scale SDE
//! streams, so a processor restart must not lose the RTEC window caches or
//! the crowd EM estimates. This module supplies the three pieces the
//! supervisor needs:
//!
//! * [`Checkpointable`] — implemented by stateful processors: serialise the
//!   semantic state into a [`StateBlob`] and rebuild it later;
//! * [`CheckpointStore`] — keeps the *latest* checkpoint per `(process,
//!   processor)` slot, in memory or persisted to a directory of JSON files
//!   (serialised over the hand-rolled [`crate::json`] layer);
//! * [`Checkpoint`] — one snapshot together with the input-edge *position*
//!   (items consumed when the barrier was taken), which is what lets the
//!   runtime bound its replay log.
//!
//! The runtime takes a checkpoint *barrier* every
//! [`checkpoint_every`](crate::topology::ProcessBuilder::checkpoint_every)
//! consumed items (aligned to watermark broadcasts on a shard partitioner so
//! a restored partitioner and its merge agree on the settled frontier) and
//! keeps the items consumed since the last barrier in a replay log. On a
//! [`FaultPolicy::Restart`](crate::fault::FaultPolicy::Restart) fault the
//! supervisor rebuilds the chain from its factories, restores the latest
//! checkpoint, silently replays the logged items (their outputs were already
//! emitted before the fault, and processors are deterministic, so the
//! regenerated outputs are discarded) and resumes with the faulted item.

use crate::error::StreamsError;
use crate::item::Value;
use crate::json;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A flat, JSON-serialisable bag of state fields.
///
/// Values are the scalar [`Value`] types of the attribute map; nested state
/// (per-region sub-blobs, buffered item lists) is string-encoded by the
/// implementor — typically as newline-joined JSON lines. Keys beginning with
/// `!` are reserved for [`CheckpointStore`] metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateBlob {
    fields: BTreeMap<String, Value>,
}

impl StateBlob {
    /// An empty blob.
    pub fn new() -> StateBlob {
        StateBlob::default()
    }

    /// Inserts/replaces one field.
    pub fn set<V: Into<Value>>(&mut self, key: &str, value: V) {
        debug_assert!(!key.starts_with('!'), "`!`-prefixed keys are reserved");
        self.fields.insert(key.to_string(), value.into());
    }

    /// Looks up a field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.get(key)
    }

    /// Integer field accessor.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_i64)
    }

    /// Boolean field accessor.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// String field accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Integer field, or a "field missing" restore error naming the field.
    pub fn require_i64(&self, key: &str) -> Result<i64, StreamsError> {
        self.get_i64(key).ok_or_else(|| missing(key))
    }

    /// String field, or a "field missing" restore error naming the field.
    pub fn require_str(&self, key: &str) -> Result<&str, StreamsError> {
        self.get_str(key).ok_or_else(|| missing(key))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the blob has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Consumes the blob, yielding its fields in key order. Lets composite
    /// processors fold sub-snapshots into a parent blob under prefixed keys
    /// without a serialise/re-parse round trip.
    pub fn into_fields(self) -> BTreeMap<String, Value> {
        self.fields
    }

    /// Serialises the blob as one JSON object.
    pub fn to_json(&self) -> String {
        json::object_to_string(self.iter())
    }

    /// Parses a blob from a JSON object (`!`-prefixed metadata keys are
    /// dropped).
    pub fn from_json(s: &str) -> Result<StateBlob, StreamsError> {
        let mut fields = json::parse_object(s).map_err(|detail| StreamsError::Io {
            detail: format!("corrupt checkpoint: {detail}"),
        })?;
        fields.retain(|k, _| !k.starts_with('!'));
        Ok(StateBlob { fields })
    }
}

fn missing(key: &str) -> StreamsError {
    StreamsError::Io { detail: format!("corrupt checkpoint: missing field `{key}`") }
}

/// A processor whose semantic state can be snapshotted and rebuilt.
///
/// `snapshot` takes `&mut self` so wrappers (the partition
/// [`ReplicaShell`](crate::partition)) can delegate to inner processors
/// through [`Processor::as_checkpointable`](crate::processor::Processor::as_checkpointable),
/// which needs `&mut`. A snapshot must never change observable behaviour.
///
/// The contract: `restore(snapshot())` on a *freshly constructed* processor
/// (same factory, same configuration) must yield a processor whose future
/// outputs are identical to the original's — the recovery-equivalence the
/// conformance suite checks end to end.
pub trait Checkpointable {
    /// Serialises the semantic state.
    fn snapshot(&mut self) -> StateBlob;

    /// Rebuilds the state recorded by [`Checkpointable::snapshot`]. Called on
    /// a freshly constructed instance; must fail (not panic) on a corrupt or
    /// incompatible blob.
    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError>;
}

/// One stored snapshot: the blob plus the input-edge position (items the
/// owning worker had consumed when the barrier was taken).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Items the worker had consumed from its input edge at barrier time.
    pub position: u64,
    /// The processor's serialised state.
    pub blob: StateBlob,
}

#[derive(Default)]
struct StoreInner {
    latest: HashMap<(String, usize), Checkpoint>,
    dir: Option<PathBuf>,
}

/// Keeps the latest [`Checkpoint`] per `(process, processor-slot)`. Clones
/// share the store (the runtime hands one clone to every worker).
///
/// The in-memory store is enough for supervised restarts within one run; the
/// file-backed store additionally persists every checkpoint as
/// `{process}.{slot}.ckpt.json` (written to a temp file and renamed, so a
/// crash mid-write never corrupts the previous checkpoint) and reloads the
/// directory on construction, which is what a restarted *process* would
/// recover from.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl CheckpointStore {
    /// A store that keeps checkpoints in memory only.
    pub fn in_memory() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// A store persisting to `dir` (created if absent); existing
    /// `*.ckpt.json` files are loaded as the latest checkpoints.
    pub fn file_backed<P: Into<PathBuf>>(dir: P) -> Result<CheckpointStore, StreamsError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut latest = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if !name.ends_with(".ckpt.json") {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let fields = json::parse_object(&text).map_err(|detail| StreamsError::Io {
                detail: format!("corrupt checkpoint file `{name}`: {detail}"),
            })?;
            let meta_str = |key: &str| {
                fields.get(key).and_then(Value::as_str).map(str::to_string).ok_or_else(|| {
                    StreamsError::Io {
                        detail: format!("corrupt checkpoint file `{name}`: missing `{key}`"),
                    }
                })
            };
            let meta_int = |key: &str| {
                fields.get(key).and_then(Value::as_i64).ok_or_else(|| StreamsError::Io {
                    detail: format!("corrupt checkpoint file `{name}`: missing `{key}`"),
                })
            };
            let process = meta_str("!process")?;
            let processor = meta_int("!processor")? as usize;
            let position = meta_int("!position")? as u64;
            let blob = StateBlob {
                fields: fields.into_iter().filter(|(k, _)| !k.starts_with('!')).collect(),
            };
            latest.insert((process, processor), Checkpoint { position, blob });
        }
        Ok(CheckpointStore { inner: Arc::new(Mutex::new(StoreInner { latest, dir: Some(dir) })) })
    }

    /// Stores the latest checkpoint for `(process, processor)`, persisting it
    /// when the store is file-backed.
    pub fn put(
        &self,
        process: &str,
        processor: usize,
        checkpoint: Checkpoint,
    ) -> Result<(), StreamsError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(dir) = inner.dir.clone() {
            let meta = [
                ("!process".to_string(), Value::from(process)),
                ("!processor".to_string(), Value::Int(processor as i64)),
                ("!position".to_string(), Value::Int(checkpoint.position as i64)),
            ];
            let text = json::object_to_string(
                meta.iter().map(|(k, v)| (k.as_str(), v)).chain(checkpoint.blob.iter()),
            );
            let file = dir.join(format!("{}.{processor}.ckpt.json", sanitize(process)));
            let tmp = file.with_extension("tmp");
            std::fs::write(&tmp, text)?;
            std::fs::rename(&tmp, &file)?;
        }
        inner.latest.insert((process.to_string(), processor), checkpoint);
        Ok(())
    }

    /// The latest checkpoint of `(process, processor)`, if any.
    pub fn latest(&self, process: &str, processor: usize) -> Option<Checkpoint> {
        self.inner.lock().unwrap().latest.get(&(process.to_string(), processor)).cloned()
    }

    /// Number of `(process, processor)` slots with a checkpoint.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().latest.len()
    }

    /// Whether no checkpoint has been taken.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().latest.is_empty()
    }
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("CheckpointStore")
            .field("slots", &inner.latest.len())
            .field("dir", &inner.dir)
            .finish()
    }
}

/// Process names may carry partition suffixes like `rtec[3]`; keep filenames
/// portable by replacing everything outside `[A-Za-z0-9._-]` with `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: i64) -> StateBlob {
        let mut b = StateBlob::new();
        b.set("count", n);
        b.set("name", "rtec");
        b.set("ratio", 0.5);
        b.set("armed", true);
        b
    }

    #[test]
    fn blob_json_roundtrip() {
        let b = blob(7);
        let back = StateBlob::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.get_i64("count"), Some(7));
        assert_eq!(back.get_str("name"), Some("rtec"));
        assert_eq!(back.get_bool("armed"), Some(true));
        assert!(StateBlob::from_json("not json").is_err());
    }

    #[test]
    fn blob_require_reports_missing_fields() {
        let b = blob(1);
        assert_eq!(b.require_i64("count").unwrap(), 1);
        let err = b.require_i64("ghost").unwrap_err().to_string();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn memory_store_keeps_latest_per_slot() {
        let store = CheckpointStore::in_memory();
        assert!(store.is_empty());
        store.put("p", 0, Checkpoint { position: 10, blob: blob(1) }).unwrap();
        store.put("p", 0, Checkpoint { position: 20, blob: blob(2) }).unwrap();
        store.put("p", 1, Checkpoint { position: 20, blob: blob(3) }).unwrap();
        assert_eq!(store.len(), 2);
        let cp = store.latest("p", 0).unwrap();
        assert_eq!(cp.position, 20);
        assert_eq!(cp.blob.get_i64("count"), Some(2));
        assert!(store.latest("q", 0).is_none());
    }

    #[test]
    fn file_store_persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::file_backed(&dir).unwrap();
        store.put("rtec[0]", 0, Checkpoint { position: 42, blob: blob(9) }).unwrap();
        store.put("rtec[0]", 0, Checkpoint { position: 50, blob: blob(10) }).unwrap();
        drop(store);
        let reloaded = CheckpointStore::file_backed(&dir).unwrap();
        let cp = reloaded.latest("rtec[0]", 0).unwrap();
        assert_eq!(cp.position, 50, "only the latest survives");
        assert_eq!(cp.blob.get_i64("count"), Some(10));
        assert!(cp.blob.get("!position").is_none(), "metadata keys are stripped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_the_store() {
        let a = CheckpointStore::in_memory();
        let b = a.clone();
        b.put("p", 0, Checkpoint { position: 1, blob: blob(1) }).unwrap();
        assert_eq!(a.len(), 1);
    }
}
