//! Topology: the data-flow graph description.
//!
//! A topology declares named *sources* (streams), named *queues*, and
//! *processes*. Each process reads from one input (a stream or a queue), runs
//! its items through a processor chain, and forwards survivors to its
//! outputs (queues and/or sinks). The [`crate::runtime::Runtime`] compiles a
//! validated topology into one thread per process.

use crate::checkpoint::CheckpointStore;
use crate::error::StreamsError;
use crate::fault::{DeadLetterQueue, FaultPolicy};
use crate::processor::Processor;
use crate::service::ServiceRegistry;
use crate::sink::Sink;
use crate::source::Source;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Default queue capacity when none is given.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// A shareable processor factory, retained per chain slot so the fault
/// supervisor can rebuild a processor after a crash
/// (see [`FaultPolicy::Restart`]).
pub type SharedProcessorFactory = Arc<dyn Fn() -> Box<dyn Processor> + Send + Sync>;

/// The input of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// A declared source stream.
    Stream(String),
    /// A declared queue.
    Queue(String),
}

/// One output of a process.
pub enum Output {
    /// Forward to a declared queue.
    Queue(String),
    /// Forward to a sink.
    Sink(Box<dyn Sink>),
    /// Drop survivors (useful for processes run for their side effects).
    Discard,
}

pub(crate) struct ProcessDef {
    pub(crate) name: String,
    pub(crate) input: Input,
    pub(crate) processors: Vec<Box<dyn Processor>>,
    pub(crate) outputs: Vec<Output>,
    pub(crate) fault_policy: FaultPolicy,
    pub(crate) batch_size: usize,
    /// Shard count; 1 means an ordinary (unreplicated) process.
    pub(crate) replicas: usize,
    /// Attribute names whose values select the shard (see [`crate::partition`]).
    pub(crate) partition_keys: Vec<String>,
    /// Known key values, round-robined over the shards by list position
    /// (see [`ProcessBuilder::partition_hints`]).
    pub(crate) partition_hints: Vec<String>,
    /// One pre-instantiated processor chain per replica (filled by
    /// [`ProcessBuilder::processor_factory`] / [`ProcessBuilder::replica_processors`]).
    pub(crate) replica_chains: Vec<Vec<Box<dyn Processor>>>,
    /// Set on the synthesized partitioner: route each survivor to the output
    /// named by its shard stamp instead of broadcasting.
    pub(crate) shard_dispatch: bool,
    /// One optional rebuild factory per chain slot (aligned with
    /// `processors` after expansion); only slots added through
    /// [`ProcessBuilder::processor_factory`] are restartable.
    pub(crate) factories: Vec<Option<SharedProcessorFactory>>,
    /// Checkpoint cadence in consumed items; 0 disables barriers.
    pub(crate) checkpoint_every: usize,
}

/// A data-flow graph under construction.
#[derive(Default)]
pub struct Topology {
    pub(crate) sources: HashMap<String, Box<dyn Source>>,
    pub(crate) queues: HashMap<String, usize>,
    pub(crate) processes: Vec<ProcessDef>,
    pub(crate) services: ServiceRegistry,
    pub(crate) dead_letters: DeadLetterQueue,
    pub(crate) checkpoint_store: Option<CheckpointStore>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Declares a named source stream.
    pub fn add_source<S: Source + 'static>(&mut self, name: &str, source: S) -> &mut Self {
        self.sources.insert(name.to_string(), Box::new(source));
        self
    }

    /// Declares a named queue with the given capacity.
    pub fn add_queue(&mut self, name: &str, capacity: usize) -> &mut Self {
        self.queues.insert(name.to_string(), capacity);
        self
    }

    /// The shared service registry of this topology.
    pub fn services(&self) -> &ServiceRegistry {
        &self.services
    }

    /// The topology-wide dead-letter queue. Processes whose fault policy is
    /// [`FaultPolicy::DeadLetter`] (set via `.fault_policy(...)` or the
    /// `fault-policy="dead-letter"` XML attribute) record into it; keep a
    /// clone to inspect the records after the run.
    pub fn dead_letters(&self) -> DeadLetterQueue {
        self.dead_letters.clone()
    }

    /// Installs the checkpoint store workers write barriers into and recover
    /// from (default: a fresh in-memory store per run). Keep a clone to
    /// inspect checkpoints after the run, or pass a
    /// [`CheckpointStore::file_backed`] store to make them durable.
    pub fn set_checkpoint_store(&mut self, store: CheckpointStore) -> &mut Self {
        self.checkpoint_store = Some(store);
        self
    }

    /// The installed checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<CheckpointStore> {
        self.checkpoint_store.clone()
    }

    /// Starts defining a process; finish with [`ProcessBuilder::done`].
    pub fn process(&mut self, name: &str) -> ProcessBuilder<'_> {
        ProcessBuilder {
            topology: self,
            def: ProcessDef {
                name: name.to_string(),
                input: Input::Stream(String::new()),
                processors: Vec::new(),
                outputs: Vec::new(),
                fault_policy: FaultPolicy::FailFast,
                batch_size: 1,
                replicas: 1,
                partition_keys: Vec::new(),
                partition_hints: Vec::new(),
                replica_chains: Vec::new(),
                shard_dispatch: false,
                factories: Vec::new(),
                checkpoint_every: 0,
            },
            input_set: false,
        }
    }

    /// Structural validation: name uniqueness, endpoint existence,
    /// single-consumer queues, no dangling queues.
    pub fn validate(&self) -> Result<(), StreamsError> {
        // Unique process names; source/queue namespaces are maps already.
        let mut names = HashSet::new();
        for p in &self.processes {
            if !names.insert(&p.name) {
                return Err(StreamsError::DuplicateName { name: p.name.clone() });
            }
        }
        for q in self.queues.keys() {
            if self.sources.contains_key(q) {
                return Err(StreamsError::DuplicateName { name: q.clone() });
            }
        }

        // Endpoint existence + consumer counting.
        let mut stream_consumers: HashMap<&str, usize> = HashMap::new();
        let mut queue_consumers: HashMap<&str, usize> = HashMap::new();
        let mut queue_producers: HashMap<&str, usize> = HashMap::new();
        for p in &self.processes {
            match &p.input {
                Input::Stream(s) => {
                    if !self.sources.contains_key(s) {
                        return Err(StreamsError::UnknownEndpoint {
                            name: s.clone(),
                            referenced_by: p.name.clone(),
                        });
                    }
                    *stream_consumers.entry(s).or_default() += 1;
                }
                Input::Queue(q) => {
                    if !self.queues.contains_key(q) {
                        return Err(StreamsError::UnknownEndpoint {
                            name: q.clone(),
                            referenced_by: p.name.clone(),
                        });
                    }
                    *queue_consumers.entry(q).or_default() += 1;
                }
            }
            for o in &p.outputs {
                if let Output::Queue(q) = o {
                    if !self.queues.contains_key(q) {
                        return Err(StreamsError::UnknownEndpoint {
                            name: q.clone(),
                            referenced_by: p.name.clone(),
                        });
                    }
                    *queue_producers.entry(q).or_default() += 1;
                }
            }
        }

        for (s, n) in stream_consumers {
            if n > 1 {
                return Err(StreamsError::MultipleConsumers { queue: s.to_string() });
            }
        }
        for q in self.queues.keys() {
            let consumers = queue_consumers.get(q.as_str()).copied().unwrap_or(0);
            let producers = queue_producers.get(q.as_str()).copied().unwrap_or(0);
            if consumers > 1 {
                return Err(StreamsError::MultipleConsumers { queue: q.clone() });
            }
            if consumers == 1 && producers == 0 {
                return Err(StreamsError::Disconnected {
                    detail: format!("queue `{q}` is consumed but never written"),
                });
            }
            if consumers == 0 && producers > 0 {
                return Err(StreamsError::Disconnected {
                    detail: format!("queue `{q}` is written but never consumed"),
                });
            }
        }
        Ok(())
    }
}

/// Fluent builder for one process.
pub struct ProcessBuilder<'a> {
    topology: &'a mut Topology,
    def: ProcessDef,
    input_set: bool,
}

impl<'a> ProcessBuilder<'a> {
    /// Sets the input (required).
    pub fn input(mut self, input: Input) -> Self {
        self.def.input = input;
        self.input_set = true;
        self
    }

    /// Appends a processor to the chain.
    pub fn processor<P: Processor + 'static>(mut self, p: P) -> Self {
        self.def.processors.push(Box::new(p));
        self.def.factories.push(None);
        self
    }

    /// Appends an already boxed processor.
    pub fn boxed_processor(mut self, p: Box<dyn Processor>) -> Self {
        self.def.processors.push(p);
        self.def.factories.push(None);
        self
    }

    /// Adds an output (items surviving the chain are cloned to every output).
    pub fn output(mut self, output: Output) -> Self {
        self.def.outputs.push(output);
        self
    }

    /// Sets the process's fault policy (default: [`FaultPolicy::FailFast`]).
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.def.fault_policy = policy;
        self
    }

    /// Shorthand: dead-letter faulted items into the topology's shared
    /// [`DeadLetterQueue`] (see [`Topology::dead_letters`]).
    pub fn dead_letter(self) -> Self {
        let queue = self.topology.dead_letters.clone();
        self.fault_policy(FaultPolicy::DeadLetter { queue })
    }

    /// Runs this process as `n` keyed shard replicas (default 1 = ordinary
    /// process). The runtimes expand such a process into a partitioner, `n`
    /// replica processes (each owning a private processor chain) and an
    /// order-restoring merge — see [`crate::partition`] for the protocol and
    /// the determinism guarantees. Requires [`partition_by`](Self::partition_by),
    /// and processors must be added through
    /// [`processor_factory`](Self::processor_factory) (each replica needs its
    /// own instance). Call `replicas` *before* adding processors.
    ///
    /// # Panics
    /// Panics if replica chains were already populated (factory calls must
    /// come after `replicas`).
    pub fn replicas(mut self, n: usize) -> Self {
        assert!(
            self.def.replica_chains.is_empty(),
            "process `{}`: call replicas() before processor_factory()",
            self.def.name
        );
        self.def.replicas = n.max(1);
        self
    }

    /// Sets the partition key(s) for a replicated process: items whose listed
    /// attributes render to the same values always land on the same shard,
    /// for any replica count.
    pub fn partition_by<I, S>(mut self, keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.def.partition_keys = keys.into_iter().map(Into::into).collect();
        self
    }

    /// Declares the key values this stage expects, for balanced routing of
    /// low-cardinality keys: a single string partition key whose value
    /// appears in this list is routed to shard `position % replicas`
    /// instead of by hash. With only a handful of distinct key values a
    /// hash assigns each value an independent random shard, and the odds
    /// that the heavy values collide on one replica are substantial — this
    /// is how a sharded stage ends up *slower* than serial. Enumerating the
    /// values spreads them as evenly as arithmetic allows, for every
    /// replica count, while values outside the list still fall back to the
    /// hash. Routing stays a pure function of the key value, so the
    /// same-key-same-shard guarantee (and with it merge determinism) is
    /// unchanged.
    ///
    /// Ignored for multi-key partitions and non-string key values.
    pub fn partition_hints<I, S>(mut self, hints: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.def.partition_hints = hints.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one processor *per replica*, instantiated by calling `make`
    /// once for each replica. For `replicas(1)` (the default) this is
    /// equivalent to [`processor`](Self::processor) with `make()`'s result.
    ///
    /// The factory is *retained*: under [`FaultPolicy::Restart`] the fault
    /// supervisor calls it again to rebuild a crashed processor before
    /// restoring its latest checkpoint. Only factory-built chain slots are
    /// restartable.
    pub fn processor_factory<F>(mut self, make: F) -> Self
    where
        F: Fn() -> Box<dyn Processor> + Send + Sync + 'static,
    {
        if self.def.replica_chains.is_empty() {
            self.def.replica_chains = (0..self.def.replicas).map(|_| Vec::new()).collect();
        }
        for chain in &mut self.def.replica_chains {
            chain.push(make());
        }
        self.def.factories.push(Some(Arc::new(make)));
        self
    }

    /// Appends one pre-instantiated processor per replica (`instances.len()`
    /// must equal the replica count). Used where a factory closure is
    /// impractical — e.g. the XML compiler, whose processor factories are
    /// borrowed — and by callers that build per-replica instances that differ
    /// only in construction-time state.
    ///
    /// # Panics
    /// Panics if `instances.len()` differs from the replica count.
    pub fn replica_processors(mut self, instances: Vec<Box<dyn Processor>>) -> Self {
        assert_eq!(
            instances.len(),
            self.def.replicas,
            "process `{}`: one processor instance per replica",
            self.def.name
        );
        if self.def.replica_chains.is_empty() {
            self.def.replica_chains = (0..self.def.replicas).map(|_| Vec::new()).collect();
        }
        for (chain, p) in self.def.replica_chains.iter_mut().zip(instances) {
            chain.push(p);
        }
        self.def.factories.push(None);
        self
    }

    /// Sets the transfer batch size (default 1). A process with batch size
    /// `n > 1` drains up to `n` items from its input queue per lock
    /// acquisition and forwards survivors to queue outputs in one batched
    /// send. Items are still processed one at a time, so results are
    /// identical to `batch_size(1)` — only lock traffic changes. Values
    /// below 1 are clamped to 1.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.def.batch_size = n.max(1);
        self
    }

    /// Sets the checkpoint cadence: every `n` consumed items the runtime
    /// snapshots each [`crate::checkpoint::Checkpointable`] chain slot into
    /// the topology's [`CheckpointStore`], together with the input-edge
    /// position, and truncates the recovery replay log. `0` (the default)
    /// disables barriers — unless `Restart { from_checkpoint: true }` is
    /// armed, in which case the runtime substitutes
    /// [`DEFAULT_RESTART_CADENCE`](crate::runtime::DEFAULT_RESTART_CADENCE)
    /// so the replay log stays bounded. On a sharding partitioner the
    /// barrier is deferred until the next watermark broadcast so checkpoints
    /// always align with settled sequence numbers.
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.def.checkpoint_every = n;
        self
    }

    /// Registers the process with the topology.
    ///
    /// # Panics
    /// Panics if no input was set — that is a programming error, caught
    /// immediately in development.
    pub fn done(self) {
        assert!(self.input_set, "process `{}` has no input", self.def.name);
        self.topology.processes.push(self.def);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::DataItem;
    use crate::sink::NullSink;
    use crate::source::VecSource;

    fn items(n: i64) -> VecSource {
        VecSource::new((0..n).map(|i| DataItem::new().with("n", i)))
    }

    #[test]
    fn valid_linear_topology() {
        let mut t = Topology::new();
        t.add_source("in", items(3));
        t.add_queue("q", 8);
        t.process("a").input(Input::Stream("in".into())).output(Output::Queue("q".into())).done();
        t.process("b")
            .input(Input::Queue("q".into()))
            .output(Output::Sink(Box::new(NullSink)))
            .done();
        t.validate().unwrap();
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut t = Topology::new();
        t.process("a").input(Input::Stream("ghost".into())).output(Output::Discard).done();
        assert!(matches!(t.validate(), Err(StreamsError::UnknownEndpoint { .. })));
    }

    #[test]
    fn unknown_queue_rejected() {
        let mut t = Topology::new();
        t.add_source("in", items(1));
        t.process("a")
            .input(Input::Stream("in".into()))
            .output(Output::Queue("ghost".into()))
            .done();
        assert!(matches!(t.validate(), Err(StreamsError::UnknownEndpoint { .. })));
    }

    #[test]
    fn duplicate_process_names_rejected() {
        let mut t = Topology::new();
        t.add_source("in", items(1));
        t.add_source("in2", items(1));
        t.process("a").input(Input::Stream("in".into())).output(Output::Discard).done();
        t.process("a").input(Input::Stream("in2".into())).output(Output::Discard).done();
        assert!(matches!(t.validate(), Err(StreamsError::DuplicateName { .. })));
    }

    #[test]
    fn queue_with_two_consumers_rejected() {
        let mut t = Topology::new();
        t.add_source("in", items(1));
        t.add_queue("q", 8);
        t.process("p").input(Input::Stream("in".into())).output(Output::Queue("q".into())).done();
        t.process("c1").input(Input::Queue("q".into())).output(Output::Discard).done();
        t.process("c2").input(Input::Queue("q".into())).output(Output::Discard).done();
        assert!(matches!(t.validate(), Err(StreamsError::MultipleConsumers { .. })));
    }

    #[test]
    fn consumed_but_never_written_queue_rejected() {
        let mut t = Topology::new();
        t.add_queue("q", 8);
        t.process("c").input(Input::Queue("q".into())).output(Output::Discard).done();
        assert!(matches!(t.validate(), Err(StreamsError::Disconnected { .. })));
    }

    #[test]
    fn written_but_never_consumed_queue_rejected() {
        let mut t = Topology::new();
        t.add_source("in", items(1));
        t.add_queue("q", 8);
        t.process("p").input(Input::Stream("in".into())).output(Output::Queue("q".into())).done();
        assert!(matches!(t.validate(), Err(StreamsError::Disconnected { .. })));
    }

    #[test]
    fn stream_with_two_consumers_rejected() {
        let mut t = Topology::new();
        t.add_source("in", items(1));
        t.process("a").input(Input::Stream("in".into())).output(Output::Discard).done();
        t.process("b").input(Input::Stream("in".into())).output(Output::Discard).done();
        assert!(matches!(t.validate(), Err(StreamsError::MultipleConsumers { .. })));
    }

    #[test]
    #[should_panic(expected = "has no input")]
    fn process_without_input_panics() {
        let mut t = Topology::new();
        t.process("a").output(Output::Discard).done();
    }

    #[test]
    fn queue_name_clashing_with_source_rejected() {
        let mut t = Topology::new();
        t.add_source("x", items(1));
        t.add_queue("x", 8);
        t.process("p").input(Input::Stream("x".into())).output(Output::Discard).done();
        assert!(matches!(t.validate(), Err(StreamsError::DuplicateName { .. })));
    }
}
