//! Minimal JSON reading/writing for flat attribute maps.
//!
//! The build environment has no access to crates.io, so instead of `serde`
//! this module hand-rolls exactly what the middleware needs: serialising a
//! [`DataItem`](crate::item::DataItem)'s flat `string → scalar` map to one
//! JSON object per line and parsing it back. Floats are written with Rust's
//! shortest-roundtrip formatting (so `1.0` keeps its decimal point and the
//! int/float distinction survives a round trip); non-finite floats become
//! `null`.
//!
//! Both directions avoid per-field heap traffic. The writer *appends* into a
//! caller-owned buffer (clean string runs are copied as slices, numbers are
//! formatted straight into the buffer), so serialising into a reused buffer
//! allocates nothing once the buffer has grown to the line length. The
//! parser is a byte-slice scanner that hands out **borrowed** slices of the
//! input wherever no escape sequence intervenes ([`Cow::Borrowed`]), which
//! [`parse_item`] turns into interned keys and inline small-strings without
//! ever materialising an intermediate `String`.

use crate::intern::Key;
use crate::item::{DataItem, SmallStr, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
///
/// Clean runs are copied as slices rather than char by char — checkpoint
/// blobs push multi-hundred-KB engine snapshots through here (twice, for
/// nested blobs), so this is a measured hot path. Every byte that needs
/// escaping is ASCII, so splitting the string at those byte offsets always
/// lands on a char boundary.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        let escaped: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            b if b < 0x20 => None,
            _ => continue,
        };
        out.push_str(&s[start..i]);
        match escaped {
            Some(e) => out.push_str(e),
            None => {
                let _ = write!(out, "\\u{:04x}", b as u32);
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Appends a finite float in shortest-roundtrip form (`1.0`, not `1`);
/// NaN/infinities have no JSON representation and are written as `null`.
/// Formats directly into `out` — no intermediate `String`.
pub fn float_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip form and always keeps a
        // decimal point or exponent, so floats re-parse as floats.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Appends one scalar [`Value`] to `out`.
pub fn value_into(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => float_into(out, *f),
        Value::Str(s) => escape_into(out, s.as_str()),
    }
}

/// Serialises a flat attribute sequence (already in canonical key order) as
/// one JSON object.
pub fn object_to_string<'a, I>(attrs: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a Value)>,
{
    let mut out = String::with_capacity(64);
    object_into(&mut out, attrs);
    out
}

/// Appends a flat attribute sequence (already in canonical key order) as one
/// JSON object — the reusable-buffer form of [`object_to_string`].
pub fn object_into<'a, I>(out: &mut String, attrs: I)
where
    I: IntoIterator<Item = (&'a str, &'a Value)>,
{
    out.push('{');
    for (i, (k, v)) in attrs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        value_into(out, v);
    }
    out.push('}');
}

/// Appends one [`DataItem`] as a JSON object to `out`.
pub fn item_into(out: &mut String, item: &DataItem) {
    object_into(out, item.iter());
}

/// Parses one JSON object of scalar values. Nested arrays/objects are
/// rejected: data items are flat by construction.
///
/// This is the owned-map form (checkpoint metadata and state blobs want a
/// `BTreeMap` they can pick apart); the data plane parses straight into a
/// [`DataItem`] via [`parse_item`].
pub fn parse_object(s: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut map = BTreeMap::new();
    parse_into(s, |key, value| {
        map.insert(key.into_owned(), value);
    })?;
    Ok(map)
}

/// Parses one JSON object straight into a [`DataItem`]: keys intern from the
/// borrowed input slice, short string values land in inline storage — no
/// intermediate `String` per field (escaped strings decode through one
/// scratch buffer). One heap allocation per item in steady state (the item's
/// own map).
pub fn parse_item(s: &str) -> Result<DataItem, String> {
    let mut item = DataItem::new();
    parse_into(s, |key, value| {
        item.set(Key::from(key.as_ref()), value);
    })?;
    Ok(item)
}

/// Shared driver: scans one complete JSON object and feeds each `key, value`
/// pair to `sink` (duplicate keys: last wins, matching map-insert
/// semantics).
fn parse_into<'a>(s: &'a str, mut sink: impl FnMut(Cow<'a, str>, Value)) -> Result<(), String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    p.object(&mut sink)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn object(&mut self, sink: &mut impl FnMut(Cow<'a, str>, Value)) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            sink(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(match self.string()? {
                Cow::Borrowed(s) => SmallStr::new(s),
                Cow::Owned(s) => SmallStr::from(s),
            })),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b'{') | Some(b'[') => {
                Err(format!("nested values are not supported (byte {})", self.pos))
            }
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'+' | b'-' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i64>().map(Value::Int).map_err(|_| format!("bad number '{text}'"))
        }
    }

    /// Scans one string literal. The common case — no escape sequences —
    /// returns a slice borrowed straight from the input; only escaped
    /// strings decode into an owned buffer.
    fn string(&mut self) -> Result<Cow<'a, str>, String> {
        self.expect(b'"')?;
        let clean_start = self.pos;
        // Fast path: scan to the closing quote; if no backslash intervenes,
        // the literal is the input slice itself.
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[clean_start..self.pos])
                    .map_err(|_| "non-utf8 string".to_string())?;
                self.pos += 1;
                return Ok(Cow::Borrowed(s));
            }
            if b == b'\\' {
                break;
            }
            self.pos += 1;
        }
        if self.peek().is_none() {
            return Err("unterminated string".to_string());
        }
        // Slow path: at least one escape — decode into an owned buffer,
        // starting from the clean prefix already scanned.
        let mut out = String::with_capacity(self.pos - clean_start + 16);
        out.push_str(
            std::str::from_utf8(&self.bytes[clean_start..self.pos])
                .map_err(|_| "non-utf8 string".to_string())?,
        );
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(Cow::Owned(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must pair with \uXXXX low.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| "bad surrogate pair".to_string())?
                            } else {
                                char::from_u32(cp).ok_or_else(|| "bad \\u escape".to_string())?
                            };
                            out.push(c);
                            continue; // hex4 leaves pos past the escape
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Reads 4 hex digits; leaves `pos` past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-utf8 \\u escape".to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json(attrs: &BTreeMap<String, Value>) -> String {
        object_to_string(attrs.iter().map(|(k, v)| (k.as_str(), v)))
    }

    fn roundtrip(attrs: BTreeMap<String, Value>) {
        let json = to_json(&attrs);
        assert_eq!(parse_object(&json).unwrap(), attrs, "roundtrip of {json}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(BTreeMap::new());
        roundtrip(BTreeMap::from([
            ("int".to_string(), Value::Int(-42)),
            ("float".to_string(), Value::Float(53.35)),
            ("whole_float".to_string(), Value::Float(1.0)),
            ("bool".to_string(), Value::Bool(true)),
            ("null".to_string(), Value::Null),
            ("str".to_string(), Value::Str("r10".into())),
        ]));
    }

    #[test]
    fn floats_keep_their_type() {
        let attrs = BTreeMap::from([("x".to_string(), Value::Float(2.0))]);
        let json = to_json(&attrs);
        assert!(json.contains("2.0"), "whole floats keep a decimal point: {json}");
        assert_eq!(parse_object(&json).unwrap()["x"], Value::Float(2.0));
    }

    #[test]
    fn escapes_roundtrip() {
        roundtrip(BTreeMap::from([("s".to_string(), Value::Str("a\"b\\c\nd\te\u{1}é€𝄞".into()))]));
        // Parse-side escapes we never emit.
        let parsed = parse_object(r#"{"s":"A𝄞\/"}"#).unwrap();
        assert_eq!(parsed["s"], Value::Str("A𝄞/".into()));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let attrs = BTreeMap::from([("x".to_string(), Value::Float(f64::NAN))]);
        assert_eq!(to_json(&attrs), r#"{"x":null}"#);
    }

    #[test]
    fn accepts_whitespace_and_exponents() {
        let parsed = parse_object(" { \"a\" : 1 , \"b\" : 2.5e3 } ").unwrap();
        assert_eq!(parsed["a"], Value::Int(1));
        assert_eq!(parsed["b"], Value::Float(2500.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "not json",
            "{",
            r#"{"a":}"#,
            r#"{"a":1"#,
            r#"{"a":1} extra"#,
            r#"{"a":[1]}"#,
            r#"{"a":{"b":1}}"#,
            r#"{"a":truth}"#,
            r#"{"a":"unterminated}"#,
            r#"{"a":"\uD800"}"#,
            "[1,2]",
        ] {
            assert!(parse_object(bad).is_err(), "should reject: {bad}");
            assert!(parse_item(bad).is_err(), "parse_item should reject: {bad}");
        }
    }

    #[test]
    fn parse_item_matches_parse_object() {
        let line = r#"{"bus":1,"kind":"bus","lat":53.35,"note":"a\"b","ok":true,"x":null}"#;
        let item = parse_item(line).unwrap();
        let map = parse_object(line).unwrap();
        assert_eq!(item.len(), map.len());
        for (k, v) in &map {
            assert_eq!(item.get(k), Some(v), "key {k}");
        }
        // Re-serialisation is byte-identical (canonical sorted form).
        assert_eq!(item.to_json(), line);
    }

    #[test]
    fn parse_item_duplicate_keys_last_wins() {
        let item = parse_item(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(item.len(), 1);
        assert_eq!(item.get_i64("a"), Some(2));
    }

    #[test]
    fn writer_into_reused_buffer_appends() {
        let item = DataItem::new().with("a", 1i64).with("s", "x");
        let mut buf = String::from("prefix ");
        item.to_json_into(&mut buf);
        assert_eq!(buf, r#"prefix {"a":1,"s":"x"}"#);
    }
}
