//! Graph kernels: the covariance functions of the GP.
//!
//! The paper uses the regularized Laplacian kernel
//! `K = [β (L + I/α²)]⁻¹` (equation 16), whose covariances reflect the
//! street-network structure: adjacent vertices are highly correlated. An RBF
//! kernel over raw planar coordinates is provided as the *non-structural*
//! baseline the evaluation compares against.

use crate::error::GpError;
use crate::graph::Graph;
use crate::linalg::Matrix;

/// A covariance-matrix factory over the vertices of a traffic graph.
pub trait Kernel {
    /// The full `n × n` covariance matrix over the graph's vertices.
    fn covariance(&self, graph: &Graph) -> Result<Matrix, GpError>;

    /// A short human-readable description (for experiment logs).
    fn describe(&self) -> String;
}

/// The regularized Laplacian kernel `K = [β (L + I/α²)]⁻¹` with
/// hyperparameters `α, β > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegularizedLaplacian {
    /// Smoothness hyperparameter `α` (larger ⇒ longer-range correlation).
    pub alpha: f64,
    /// Scale hyperparameter `β` (larger ⇒ smaller overall variance).
    pub beta: f64,
}

impl RegularizedLaplacian {
    /// Validates and builds the kernel.
    pub fn new(alpha: f64, beta: f64) -> Result<RegularizedLaplacian, GpError> {
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(GpError::InvalidHyperparameter { name: "alpha", value: alpha });
        }
        if !(beta > 0.0) || !beta.is_finite() {
            return Err(GpError::InvalidHyperparameter { name: "beta", value: beta });
        }
        Ok(RegularizedLaplacian { alpha, beta })
    }
}

impl Kernel for RegularizedLaplacian {
    fn covariance(&self, graph: &Graph) -> Result<Matrix, GpError> {
        // β (L + I/α²) is SPD: L is PSD and I/α² shifts all eigenvalues by a
        // positive amount, so the inverse exists.
        let shifted = graph.laplacian().add_diagonal(1.0 / (self.alpha * self.alpha));
        shifted.scale(self.beta).inverse_spd()
    }

    fn describe(&self) -> String {
        format!("RegularizedLaplacian(alpha={}, beta={})", self.alpha, self.beta)
    }
}

/// The diffusion kernel `K = σ_f² · exp(−βL)` (Smola & Kondor 2003 — the
/// paper's reference \[27\] for graph kernels). Covariance spreads along the
/// graph like heat; `β` controls the diffusion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionKernel {
    /// Diffusion time `β > 0`.
    pub beta: f64,
    /// Signal variance scaling.
    pub signal_variance: f64,
}

impl DiffusionKernel {
    /// Validates and builds the kernel.
    pub fn new(beta: f64, signal_variance: f64) -> Result<DiffusionKernel, GpError> {
        if !(beta > 0.0) || !beta.is_finite() {
            return Err(GpError::InvalidHyperparameter { name: "beta", value: beta });
        }
        if !(signal_variance > 0.0) || !signal_variance.is_finite() {
            return Err(GpError::InvalidHyperparameter {
                name: "signal_variance",
                value: signal_variance,
            });
        }
        Ok(DiffusionKernel { beta, signal_variance })
    }
}

impl Kernel for DiffusionKernel {
    fn covariance(&self, graph: &Graph) -> Result<Matrix, GpError> {
        Ok(graph.laplacian().scale(-self.beta).expm()?.scale(self.signal_variance))
    }

    fn describe(&self) -> String {
        format!("Diffusion(beta={}, sf2={})", self.beta, self.signal_variance)
    }
}

/// Squared-exponential kernel over planar vertex coordinates:
/// `k(i,j) = σ_f² · exp(−‖x_i − x_j‖² / (2ℓ²))`.
///
/// Ignores the street network entirely; serves as the non-structural
/// baseline in the Figure 9 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Length scale `ℓ > 0`.
    pub length_scale: f64,
    /// Signal variance `σ_f² > 0`.
    pub signal_variance: f64,
}

impl RbfKernel {
    /// Validates and builds the kernel.
    pub fn new(length_scale: f64, signal_variance: f64) -> Result<RbfKernel, GpError> {
        if !(length_scale > 0.0) || !length_scale.is_finite() {
            return Err(GpError::InvalidHyperparameter {
                name: "length_scale",
                value: length_scale,
            });
        }
        if !(signal_variance > 0.0) || !signal_variance.is_finite() {
            return Err(GpError::InvalidHyperparameter {
                name: "signal_variance",
                value: signal_variance,
            });
        }
        Ok(RbfKernel { length_scale, signal_variance })
    }
}

impl Kernel for RbfKernel {
    fn covariance(&self, graph: &Graph) -> Result<Matrix, GpError> {
        let n = graph.len();
        let mut k = Matrix::zeros(n, n);
        let inv_2l2 = 1.0 / (2.0 * self.length_scale * self.length_scale);
        for i in 0..n {
            let (xi, yi) = graph.coords(i);
            for j in i..n {
                let (xj, yj) = graph.coords(j);
                let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                let v = self.signal_variance * (-d2 * inv_2l2).exp();
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        Ok(k)
    }

    fn describe(&self) -> String {
        format!("Rbf(l={}, sf2={})", self.length_scale, self.signal_variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperparameter_validation() {
        assert!(RegularizedLaplacian::new(0.0, 1.0).is_err());
        assert!(RegularizedLaplacian::new(1.0, -1.0).is_err());
        assert!(RegularizedLaplacian::new(f64::NAN, 1.0).is_err());
        assert!(RegularizedLaplacian::new(2.0, 0.5).is_ok());
        assert!(RbfKernel::new(0.0, 1.0).is_err());
        assert!(RbfKernel::new(1.0, 0.0).is_err());
    }

    #[test]
    fn regularized_laplacian_is_spd_and_symmetric() {
        let g = Graph::grid(3, 3);
        let k = RegularizedLaplacian::new(2.0, 1.0).unwrap().covariance(&g).unwrap();
        assert!(k.is_symmetric(1e-10));
        assert!(k.cholesky().is_ok(), "covariance must be SPD");
    }

    #[test]
    fn adjacent_vertices_more_correlated_than_distant() {
        let g = Graph::grid(5, 1); // path graph 0-1-2-3-4
        let k = RegularizedLaplacian::new(2.0, 1.0).unwrap().covariance(&g).unwrap();
        // correlation with neighbour > correlation with far vertex
        assert!(k.get(0, 1) > k.get(0, 4));
        assert!(k.get(0, 0) > k.get(0, 1), "self-covariance dominates");
    }

    #[test]
    fn kernel_inverse_matches_definition() {
        let g = Graph::grid(2, 2);
        let rl = RegularizedLaplacian::new(1.5, 0.7).unwrap();
        let k = rl.covariance(&g).unwrap();
        let def = g.laplacian().add_diagonal(1.0 / (1.5f64 * 1.5)).scale(0.7);
        let prod = k.matmul(&def).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(4)) < 1e-10);
    }

    #[test]
    fn rbf_depends_only_on_distance() {
        let g = Graph::new(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (3.0, 4.0)], &[]).unwrap();
        let k = RbfKernel::new(1.0, 2.0).unwrap().covariance(&g).unwrap();
        assert!((k.get(0, 1) - k.get(0, 2)).abs() < 1e-12, "equal distances, equal covariance");
        assert!((k.get(0, 0) - 2.0).abs() < 1e-12, "diagonal = signal variance");
        assert!(k.get(0, 3) < k.get(0, 1));
        assert!(k.is_symmetric(1e-12));
    }

    #[test]
    fn describe_mentions_parameters() {
        assert!(RegularizedLaplacian::new(2.0, 1.0).unwrap().describe().contains("alpha=2"));
        assert!(RbfKernel::new(1.0, 1.0).unwrap().describe().contains("l=1"));
        assert!(DiffusionKernel::new(0.5, 1.0).unwrap().describe().contains("beta=0.5"));
    }

    #[test]
    fn diffusion_kernel_validation_and_structure() {
        assert!(DiffusionKernel::new(0.0, 1.0).is_err());
        assert!(DiffusionKernel::new(1.0, -1.0).is_err());
        let g = Graph::grid(5, 1);
        let k = DiffusionKernel::new(0.8, 1.0).unwrap().covariance(&g).unwrap();
        assert!(k.is_symmetric(1e-9));
        // Heat spreads along the path: neighbour > far vertex.
        assert!(k.get(0, 1) > k.get(0, 4));
        assert!(k.get(0, 0) > k.get(0, 1));
        // PSD up to jitter: Cholesky of K + εI succeeds.
        assert!(k.add_diagonal(1e-9).cholesky().is_ok());
    }

    #[test]
    fn diffusion_rows_sum_to_signal_variance() {
        // exp(-βL)·1 = 1 because L·1 = 0: each row sums to σ_f².
        let g = Graph::grid(3, 3);
        let k = DiffusionKernel::new(1.3, 2.0).unwrap().covariance(&g).unwrap();
        for i in 0..g.len() {
            let sum: f64 = (0..g.len()).map(|j| k.get(i, j)).sum();
            assert!((sum - 2.0).abs() < 1e-8, "row {i} sums to {sum}");
        }
    }
}
