//! Hyperparameter selection by grid search.
//!
//! "The hyperparameters are chosen in advance using grid search within the
//! interval [0, …, 10]" (§7.3). Candidates are scored by hold-out RMSE: a
//! fraction of the observed vertices is withheld, the GP is fitted on the
//! rest, and the error on the withheld readings is measured.

use crate::error::GpError;
use crate::graph::Graph;
use crate::kernel::RegularizedLaplacian;
use crate::regression::{rmse, GpRegression};

/// The outcome of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The winning kernel.
    pub best: RegularizedLaplacian,
    /// Hold-out RMSE of the winner.
    pub best_rmse: f64,
    /// Every evaluated `(alpha, beta, rmse)` triple.
    pub evaluated: Vec<(f64, f64, f64)>,
}

/// Grid-search configuration.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Candidate `α` values (non-positive candidates are skipped, matching
    /// the paper's `[0, 10]` interval which degenerates at 0).
    pub alphas: Vec<f64>,
    /// Candidate `β` values.
    pub betas: Vec<f64>,
    /// Observation noise `σ²` used during scoring fits.
    pub noise_variance: f64,
    /// Every k-th observation is withheld for scoring.
    pub holdout_every: usize,
}

impl Default for GridSearch {
    fn default() -> GridSearch {
        // 1..=10 in unit steps on both axes, as in the paper's interval.
        let steps: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        GridSearch { alphas: steps.clone(), betas: steps, noise_variance: 0.1, holdout_every: 3 }
    }
}

impl GridSearch {
    /// Runs the search over the observations `(vertex, value)`.
    pub fn run(
        &self,
        graph: &Graph,
        observations: &[(usize, f64)],
    ) -> Result<GridSearchResult, GpError> {
        if self.holdout_every < 2 {
            return Err(GpError::DegenerateObservations {
                detail: "holdout_every must be >= 2 (otherwise nothing is trained on)".into(),
            });
        }
        let holdout: Vec<(usize, f64)> = observations
            .iter()
            .enumerate()
            .filter(|(i, _)| i % self.holdout_every == 0)
            .map(|(_, &o)| o)
            .collect();
        let train: Vec<(usize, f64)> = observations
            .iter()
            .enumerate()
            .filter(|(i, _)| i % self.holdout_every != 0)
            .map(|(_, &o)| o)
            .collect();
        if holdout.is_empty() || train.is_empty() {
            return Err(GpError::DegenerateObservations {
                detail: format!(
                    "need at least {} observations for a {}-fold holdout",
                    self.holdout_every + 1,
                    self.holdout_every
                ),
            });
        }
        let holdout_targets: Vec<usize> = holdout.iter().map(|&(v, _)| v).collect();

        let mut evaluated = Vec::new();
        let mut best: Option<(RegularizedLaplacian, f64)> = None;
        for &alpha in &self.alphas {
            if alpha <= 0.0 {
                continue;
            }
            for &beta in &self.betas {
                if beta <= 0.0 {
                    continue;
                }
                let kernel = RegularizedLaplacian::new(alpha, beta)?;
                let gp = GpRegression::fit(graph, &kernel, &train, self.noise_variance, true)?;
                let posterior = gp.predict(&holdout_targets)?;
                let Some(err) = rmse(&posterior, &holdout) else { continue };
                evaluated.push((alpha, beta, err));
                if best.as_ref().map(|&(_, e)| err < e).unwrap_or(true) {
                    best = Some((kernel, err));
                }
            }
        }
        let (best, best_rmse) = best.ok_or_else(|| GpError::DegenerateObservations {
            detail: "grid contained no valid (alpha, beta) candidates".into(),
        })?;
        Ok(GridSearchResult { best, best_rmse, evaluated })
    }

    /// Runs the search scoring candidates by (negative) log marginal
    /// likelihood instead of hold-out RMSE — the evidence-based criterion;
    /// uses every observation for fitting. The `evaluated` triples carry
    /// `−log p(y)` in the score position (lower is better, as with RMSE).
    pub fn run_marginal_likelihood(
        &self,
        graph: &Graph,
        observations: &[(usize, f64)],
    ) -> Result<GridSearchResult, GpError> {
        if observations.is_empty() {
            return Err(GpError::DegenerateObservations { detail: "no observations".into() });
        }
        let mut evaluated = Vec::new();
        let mut best: Option<(RegularizedLaplacian, f64)> = None;
        for &alpha in &self.alphas {
            if alpha <= 0.0 {
                continue;
            }
            for &beta in &self.betas {
                if beta <= 0.0 {
                    continue;
                }
                let kernel = RegularizedLaplacian::new(alpha, beta)?;
                let gp =
                    GpRegression::fit(graph, &kernel, observations, self.noise_variance, true)?;
                let score = -gp.log_marginal_likelihood()?;
                if !score.is_finite() {
                    continue;
                }
                evaluated.push((alpha, beta, score));
                if best.as_ref().map(|&(_, s)| score < s).unwrap_or(true) {
                    best = Some((kernel, score));
                }
            }
        }
        let (best, best_rmse) = best.ok_or_else(|| GpError::DegenerateObservations {
            detail: "grid contained no valid (alpha, beta) candidates".into(),
        })?;
        Ok(GridSearchResult { best, best_rmse, evaluated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_observations(g: &Graph) -> Vec<(usize, f64)> {
        (0..g.len())
            .step_by(2)
            .map(|v| {
                let (x, y) = g.coords(v);
                (v, (x * 0.5).sin() * 5.0 + (y * 0.3).cos() * 3.0 + 10.0)
            })
            .collect()
    }

    #[test]
    fn finds_a_candidate_on_default_grid() {
        let g = Graph::grid(6, 6);
        let obs = smooth_observations(&g);
        let result = GridSearch::default().run(&g, &obs).unwrap();
        assert!(result.best.alpha >= 1.0 && result.best.alpha <= 10.0);
        assert!(result.best.beta >= 1.0 && result.best.beta <= 10.0);
        assert!(result.best_rmse.is_finite());
        assert_eq!(result.evaluated.len(), 100);
        // Winner is the minimum of the evaluated errors.
        let min = result.evaluated.iter().map(|e| e.2).fold(f64::INFINITY, f64::min);
        assert!((result.best_rmse - min).abs() < 1e-12);
    }

    #[test]
    fn skips_non_positive_candidates() {
        let g = Graph::grid(4, 4);
        let obs = smooth_observations(&g);
        let gs =
            GridSearch { alphas: vec![0.0, 2.0], betas: vec![-1.0, 1.0], ..GridSearch::default() };
        let result = gs.run(&g, &obs).unwrap();
        assert_eq!(result.evaluated.len(), 1);
        assert_eq!(result.best.alpha, 2.0);
        assert_eq!(result.best.beta, 1.0);
    }

    #[test]
    fn marginal_likelihood_search_finds_reasonable_candidate() {
        let g = Graph::grid(6, 6);
        let obs = smooth_observations(&g);
        let result = GridSearch::default().run_marginal_likelihood(&g, &obs).unwrap();
        assert_eq!(result.evaluated.len(), 100);
        assert!(result.best_rmse.is_finite(), "score (−LML) is finite");
        // The evidence-chosen kernel predicts the held-out style data at
        // least as well as a clearly bad kernel.
        let bad = crate::kernel::RegularizedLaplacian::new(0.5, 10.0).unwrap();
        let targets: Vec<usize> = (1..g.len()).step_by(4).collect();
        let truth: Vec<(usize, f64)> = targets
            .iter()
            .map(|&v| {
                let (x, y) = g.coords(v);
                (v, (x * 0.5).sin() * 5.0 + (y * 0.3).cos() * 3.0 + 10.0)
            })
            .collect();
        let fit = |k: &crate::kernel::RegularizedLaplacian| {
            let gp = crate::regression::GpRegression::fit(&g, k, &obs, 0.1, true).unwrap();
            crate::regression::rmse(&gp.predict(&targets).unwrap(), &truth).unwrap()
        };
        assert!(fit(&result.best) <= fit(&bad) * 1.5);
    }

    #[test]
    fn marginal_likelihood_search_rejects_empty() {
        let g = Graph::grid(3, 3);
        assert!(GridSearch::default().run_marginal_likelihood(&g, &[]).is_err());
    }

    #[test]
    fn degenerate_configurations_error() {
        let g = Graph::grid(4, 4);
        let obs = smooth_observations(&g);
        assert!(GridSearch { holdout_every: 1, ..GridSearch::default() }.run(&g, &obs).is_err());
        assert!(GridSearch::default().run(&g, &obs[..1]).is_err());
        let empty_grid =
            GridSearch { alphas: vec![0.0], betas: vec![1.0], ..GridSearch::default() };
        assert!(empty_grid.run(&g, &obs).is_err());
    }
}
