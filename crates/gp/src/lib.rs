//! # insight-gp — traffic modelling by Gaussian-process regression on graphs
//!
//! Implements Section 6 of the EDBT 2014 paper: traffic flow at unmeasured
//! street-network locations is estimated with a Gaussian process whose
//! covariance is a *graph kernel* — specifically the regularized Laplacian
//! kernel
//!
//! ```text
//! K = [ β (L + I/α²) ]⁻¹
//! ```
//!
//! where `L = D − A` is the combinatorial Laplacian of the traffic graph and
//! `α`, `β` are hyperparameters chosen by grid search in `[0, 10]`.
//!
//! Given noisy observations `y = f + ε`, `ε ∼ N(0, σ²)` at observed vertices
//! `ū`, the predictive distribution at unobserved vertices `u` is Gaussian
//! with
//!
//! ```text
//! m = K_{u,ū} (K_{ū,ū} + σ²I)⁻¹ y
//! Σ = K_{u,u} − K_{u,ū} (K_{ū,ū} + σ²I)⁻¹ K_{ū,u}
//! ```
//!
//! The crate is self-contained: [`linalg`] provides the dense symmetric
//! linear algebra (Cholesky factorisation, solves, SPD inverses), [`graph`]
//! the street-graph representation, [`kernel`] the graph kernels,
//! [`regression`] the GP posterior, [`gridsearch`] hyperparameter selection
//! and [`render`] the green-to-red map rendering of Figure 9.

#![warn(missing_docs)]
// `!(x > 0.0)` guards are deliberate: they reject NaN along with the
// out-of-range values, which `x <= 0.0` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod error;
pub mod graph;
pub mod gridsearch;
pub mod kernel;
pub mod linalg;
pub mod regression;
pub mod render;

pub use error::GpError;
pub use graph::Graph;
pub use kernel::{DiffusionKernel, Kernel, RbfKernel, RegularizedLaplacian};
pub use linalg::Matrix;
pub use regression::{GpRegression, Posterior};
