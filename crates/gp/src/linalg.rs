//! Dense linear algebra for symmetric kernels.
//!
//! The GP component needs exactly the operations implemented here: dense
//! matrix arithmetic, Cholesky factorisation of symmetric positive definite
//! matrices, triangular solves and SPD inverses. Implementing them in ~300
//! lines avoids an external linear-algebra dependency; matrices are stored
//! row-major.

// Index-based loops are kept where they mirror the textbook algorithms
// (Cholesky, triangular solves) — clarity over iterator zips here.
#![allow(clippy::needless_range_loop)]

use crate::error::GpError;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map(Vec::len).unwrap_or(0);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix { rows: r, cols: c, data: rows.iter().flatten().copied().collect() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, GpError> {
        if self.cols != rhs.rows {
            return Err(GpError::DimensionMismatch {
                detail: format!("matmul: {}×{} · {}×{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order for cache-friendly access of row-major operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, GpError> {
        if self.cols != v.len() {
            return Err(GpError::DimensionMismatch {
                detail: format!("matvec: {}×{} · len {}", self.rows, self.cols, v.len()),
            });
        }
        Ok((0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Elementwise sum. (Named like a matrix API, not `std::ops::Add`,
    /// because it is fallible.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, GpError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(GpError::DimensionMismatch { detail: "add: shape mismatch".into() });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Elementwise difference (fallible, hence not `std::ops::Sub`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, GpError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(GpError::DimensionMismatch { detail: "sub: shape mismatch".into() });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * s).collect() }
    }

    /// Adds `s` to the diagonal (jitter / noise term).
    pub fn add_diagonal(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for i in 0..self.rows.min(self.cols) {
            out.add_to(i, i, s);
        }
        out
    }

    /// Extracts the submatrix with the given row and column indices.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Result<Matrix, GpError> {
        for &i in row_idx.iter().chain(col_idx) {
            if i >= self.rows.max(self.cols) {
                return Err(GpError::VertexOutOfRange { index: i, n: self.rows });
            }
        }
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out.set(oi, oj, self.get(i, j));
            }
        }
        Ok(out)
    }

    /// Maximum absolute elementwise difference to another matrix.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        self.data.iter().zip(&rhs.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Whether the matrix is (numerically) symmetric.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Cholesky factorisation: returns lower-triangular `L` with
    /// `L·Lᵀ = self`. Fails when the matrix is not SPD.
    pub fn cholesky(&self) -> Result<Matrix, GpError> {
        if self.rows != self.cols {
            return Err(GpError::DimensionMismatch { detail: "cholesky: not square".into() });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(GpError::NotPositiveDefinite { pivot: i, value: sum });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solves `self · x = b` for SPD `self` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, GpError> {
        let l = self.cholesky()?;
        let y = forward_substitute(&l, b)?;
        backward_substitute_transposed(&l, &y)
    }

    /// Solves `self · X = B` (column-wise) for SPD `self`.
    pub fn solve_spd_matrix(&self, b: &Matrix) -> Result<Matrix, GpError> {
        if self.rows != b.rows {
            return Err(GpError::DimensionMismatch { detail: "solve: rhs rows".into() });
        }
        let l = self.cholesky()?;
        let mut out = Matrix::zeros(b.rows, b.cols);
        let mut col = vec![0.0; b.rows];
        for j in 0..b.cols {
            for i in 0..b.rows {
                col[i] = b.get(i, j);
            }
            let y = forward_substitute(&l, &col)?;
            let x = backward_substitute_transposed(&l, &y)?;
            for i in 0..b.rows {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Inverse of an SPD matrix.
    pub fn inverse_spd(&self) -> Result<Matrix, GpError> {
        self.solve_spd_matrix(&Matrix::identity(self.rows))
    }

    /// Maximum absolute row sum (the induced ∞-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows).map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>()).fold(0.0, f64::max)
    }

    /// Matrix exponential `exp(self)` by scaling-and-squaring with a
    /// truncated Taylor series — adequate for the symmetric, moderately
    /// sized matrices of graph kernels (the diffusion kernel `exp(−βL)`).
    pub fn expm(&self) -> Result<Matrix, GpError> {
        if self.rows != self.cols {
            return Err(GpError::DimensionMismatch { detail: "expm: not square".into() });
        }
        let n = self.rows;
        // Scale so the norm is below 0.5, then square back.
        let norm = self.norm_inf();
        let squarings = if norm > 0.5 { (norm / 0.5).log2().ceil() as u32 } else { 0 };
        let scaled = self.scale(1.0 / f64::powi(2.0, squarings as i32));

        // Taylor series Σ Aᵏ/k! — with ‖A‖ ≤ 0.5, 16 terms reach ~1e-16.
        let mut result = Matrix::identity(n);
        let mut term = Matrix::identity(n);
        for k in 1..=16u32 {
            term = term.matmul(&scaled)?.scale(1.0 / k as f64);
            result = result.add(&term)?;
        }
        for _ in 0..squarings {
            result = result.matmul(&result)?;
        }
        Ok(result)
    }
}

/// Solves `L · y = b` for lower-triangular `L`.
fn forward_substitute(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, GpError> {
    let n = l.rows();
    if b.len() != n {
        return Err(GpError::DimensionMismatch { detail: "forward substitution".into() });
    }
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        y[i] = sum / l.get(i, i);
    }
    Ok(y)
}

/// Solves `Lᵀ · x = y` for lower-triangular `L`.
fn backward_substitute_transposed(l: &Matrix, y: &[f64]) -> Result<Vec<f64>, GpError> {
    let n = l.rows();
    if y.len() != n {
        return Err(GpError::DimensionMismatch { detail: "backward substitution".into() });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A known SPD matrix.
        Matrix::from_rows(&[vec![4.0, 2.0, 0.6], vec![2.0, 5.0, 1.0], vec![0.6, 1.0, 3.0]])
    }

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(a.transpose(), Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let b = a.add(&a).unwrap();
        assert_eq!(b, a.scale(2.0));
        assert_eq!(b.sub(&a).unwrap(), a);
    }

    #[test]
    fn cholesky_reconstructs() {
        let m = spd3();
        let l = m.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(m.max_abs_diff(&back) < 1e-12);
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(matches!(m.cholesky(), Err(GpError::NotPositiveDefinite { .. })));
        let m = Matrix::zeros(2, 3);
        assert!(matches!(m.cholesky(), Err(GpError::DimensionMismatch { .. })));
    }

    #[test]
    fn solve_spd_solves() {
        let m = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = m.matvec(&x_true).unwrap();
        let x = m.solve_spd(&b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_spd_gives_identity() {
        let m = spd3();
        let inv = m.inverse_spd().unwrap();
        let prod = m.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
        // Inverse of SPD is symmetric.
        assert!(inv.is_symmetric(1e-12));
    }

    #[test]
    fn submatrix_extracts() {
        let m = spd3();
        let s = m.submatrix(&[0, 2], &[1]).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 1);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 0), 1.0);
        assert!(m.submatrix(&[5], &[0]).is_err());
    }

    #[test]
    fn add_diagonal_jitters() {
        let m = Matrix::zeros(2, 2).add_diagonal(0.5);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 1), 0.5);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn symmetry_check() {
        assert!(spd3().is_symmetric(0.0));
        let mut m = spd3();
        m.set(0, 1, 9.0);
        assert!(!m.is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let m = spd3();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let x = m.solve_spd_matrix(&b).unwrap();
        let back = m.matmul(&x).unwrap();
        assert!(back.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.25]]);
        assert_eq!(m.norm_inf(), 3.0);
        assert_eq!(Matrix::zeros(2, 2).norm_inf(), 0.0);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let e = Matrix::zeros(3, 3).expm().unwrap();
        assert!(e.max_abs_diff(&Matrix::identity(3)) < 1e-14);
    }

    #[test]
    fn expm_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, 1.0);
        m.set(1, 1, -2.0);
        let e = m.expm().unwrap();
        assert!((e.get(0, 0) - 1.0f64.exp()).abs() < 1e-12);
        assert!((e.get(1, 1) - (-2.0f64).exp()).abs() < 1e-12);
        assert!(e.get(0, 1).abs() < 1e-14);
    }

    #[test]
    fn expm_path_laplacian_closed_form() {
        // L of the 2-path: [[1,-1],[-1,1]], eigenvalues {0, 2}.
        // exp(-βL) = [[(1+e^{-2β})/2, (1-e^{-2β})/2], …] symmetric.
        let l = Matrix::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]);
        let beta = 0.7;
        let e = l.scale(-beta).expm().unwrap();
        let lam = (-2.0 * beta).exp();
        assert!((e.get(0, 0) - (1.0 + lam) / 2.0).abs() < 1e-10);
        assert!((e.get(0, 1) - (1.0 - lam) / 2.0).abs() < 1e-10);
        assert!(e.is_symmetric(1e-10));
    }

    #[test]
    fn expm_rejects_non_square() {
        assert!(Matrix::zeros(2, 3).expm().is_err());
    }
}
