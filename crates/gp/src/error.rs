//! Error type for the GP component.

use std::fmt;

/// Errors produced by graph construction, linear algebra and regression.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Matrix/vector dimensions do not line up.
    DimensionMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A matrix expected to be symmetric positive definite is not (Cholesky
    /// hit a non-positive pivot).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// The pivot value encountered.
        value: f64,
    },
    /// An invalid hyperparameter (e.g. `α ≤ 0` or `β ≤ 0`).
    InvalidHyperparameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A vertex index out of range.
    VertexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of vertices.
        n: usize,
    },
    /// Observation set empty or covering every vertex when a split is needed.
    DegenerateObservations {
        /// Description.
        detail: String,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::DimensionMismatch { detail } => write!(f, "dimension mismatch: {detail}"),
            GpError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix is not positive definite (pivot {pivot} = {value})")
            }
            GpError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyperparameter {name} = {value}")
            }
            GpError::VertexOutOfRange { index, n } => {
                write!(f, "vertex {index} out of range (graph has {n} vertices)")
            }
            GpError::DegenerateObservations { detail } => {
                write!(f, "degenerate observation set: {detail}")
            }
        }
    }
}

impl std::error::Error for GpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = GpError::NotPositiveDefinite { pivot: 3, value: -0.5 };
        assert!(e.to_string().contains("pivot 3"));
    }
}
