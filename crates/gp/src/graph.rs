//! The traffic graph: junctions as vertices, street segments as edges.
//!
//! "In the traffic graph G each junction corresponds to one vertex" (§6).
//! Vertices optionally carry planar coordinates (used by the RBF baseline
//! kernel and the renderer); the GP kernel itself only consumes the graph
//! structure through the combinatorial Laplacian `L = D − A`.

use crate::error::GpError;
use crate::linalg::Matrix;
use std::collections::VecDeque;

/// An undirected graph with optional vertex coordinates.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    adjacency: Vec<Vec<usize>>,
    coords: Vec<(f64, f64)>,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// A graph with `n` isolated vertices at the origin.
    pub fn with_vertices(n: usize) -> Graph {
        Graph { n, adjacency: vec![Vec::new(); n], coords: vec![(0.0, 0.0); n], edges: Vec::new() }
    }

    /// Builds a graph from explicit coordinates and undirected edges.
    pub fn new(coords: Vec<(f64, f64)>, edges: &[(usize, usize)]) -> Result<Graph, GpError> {
        let n = coords.len();
        let mut g = Graph { n, adjacency: vec![Vec::new(); n], coords, edges: Vec::new() };
        for &(a, b) in edges {
            g.add_edge(a, b)?;
        }
        Ok(g)
    }

    /// Adds an undirected edge; self-loops and duplicates are rejected
    /// silently (idempotent).
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<(), GpError> {
        if a >= self.n {
            return Err(GpError::VertexOutOfRange { index: a, n: self.n });
        }
        if b >= self.n {
            return Err(GpError::VertexOutOfRange { index: b, n: self.n });
        }
        if a == b || self.adjacency[a].contains(&b) {
            return Ok(());
        }
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
        self.edges.push((a.min(b), a.max(b)));
        Ok(())
    }

    /// Sets the planar coordinates of a vertex.
    pub fn set_coords(&mut self, v: usize, x: f64, y: f64) -> Result<(), GpError> {
        if v >= self.n {
            return Err(GpError::VertexOutOfRange { index: v, n: self.n });
        }
        self.coords[v] = (x, y);
        Ok(())
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edges `(min, max)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a vertex.
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Vertex degree.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Coordinates of a vertex.
    pub fn coords(&self, v: usize) -> (f64, f64) {
        self.coords[v]
    }

    /// All coordinates.
    pub fn all_coords(&self) -> &[(f64, f64)] {
        &self.coords
    }

    /// The adjacency matrix `A`.
    pub fn adjacency_matrix(&self) -> Matrix {
        let mut a = Matrix::zeros(self.n, self.n);
        for &(i, j) in &self.edges {
            a.set(i, j, 1.0);
            a.set(j, i, 1.0);
        }
        a
    }

    /// The combinatorial Laplacian `L = D − A`.
    pub fn laplacian(&self) -> Matrix {
        let mut l = Matrix::zeros(self.n, self.n);
        for v in 0..self.n {
            l.set(v, v, self.degree(v) as f64);
        }
        for &(i, j) in &self.edges {
            l.set(i, j, -1.0);
            l.set(j, i, -1.0);
        }
        l
    }

    /// Whether the graph is connected (trivially true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == self.n
    }

    /// Index of the vertex nearest (Euclidean) to `(x, y)` — the paper maps
    /// SCATS locations "to their nearest neighbours within this street
    /// network".
    pub fn nearest_vertex(&self, x: f64, y: f64) -> Option<usize> {
        (0..self.n).min_by(|&a, &b| {
            let da = dist2(self.coords[a], (x, y));
            let db = dist2(self.coords[b], (x, y));
            da.total_cmp(&db)
        })
    }

    /// Breadth-first hop distances from `start` (`usize::MAX` = unreachable).
    pub fn bfs_distances(&self, start: usize) -> Result<Vec<usize>, GpError> {
        if start >= self.n {
            return Err(GpError::VertexOutOfRange { index: start, n: self.n });
        }
        let mut dist = vec![usize::MAX; self.n];
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        Ok(dist)
    }

    /// A rectangular grid graph (useful for tests and synthetic scenarios):
    /// `w × h` vertices at integer coordinates, 4-connected.
    pub fn grid(w: usize, h: usize) -> Graph {
        let mut coords = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                coords.push((x as f64, y as f64));
            }
        }
        let mut g =
            Graph { n: w * h, adjacency: vec![Vec::new(); w * h], coords, edges: Vec::new() };
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    g.add_edge(v, v + 1).expect("in range");
                }
                if y + 1 < h {
                    g.add_edge(v, v + w).expect("in range");
                }
            }
        }
        g
    }
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::new(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbours(0), &[1]);
        assert!(g.is_connected());
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let mut g = Graph::with_vertices(2);
        assert!(g.add_edge(0, 5).is_err());
        assert!(g.add_edge(7, 0).is_err());
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let mut g = Graph::with_vertices(2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        g.add_edge(0, 0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn laplacian_is_degree_minus_adjacency() {
        let g = Graph::new(vec![(0.0, 0.0); 3], &[(0, 1), (1, 2)]).unwrap();
        let l = g.laplacian();
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 1), 2.0);
        assert_eq!(l.get(0, 1), -1.0);
        assert_eq!(l.get(0, 2), 0.0);
        // Row sums of a Laplacian are zero.
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| l.get(i, j)).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn connectivity_detection() {
        let g = Graph::new(vec![(0.0, 0.0); 4], &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert!(Graph::with_vertices(0).is_connected());
        assert!(Graph::with_vertices(1).is_connected());
    }

    #[test]
    fn nearest_vertex_matches_euclidean() {
        let g = Graph::new(vec![(0.0, 0.0), (10.0, 0.0), (5.0, 5.0)], &[]).unwrap();
        assert_eq!(g.nearest_vertex(9.0, 1.0), Some(1));
        assert_eq!(g.nearest_vertex(4.9, 4.9), Some(2));
        assert_eq!(Graph::with_vertices(0).nearest_vertex(0.0, 0.0), None);
    }

    #[test]
    fn grid_structure() {
        let g = Graph::grid(3, 2);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7); // 2*2 horizontal + 3 vertical
        assert!(g.is_connected());
        assert_eq!(g.coords(4), (1.0, 1.0));
        // corner has degree 2, middle of top edge degree 3
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn bfs_distances() {
        let g = Graph::grid(3, 3);
        let d = g.bfs_distances(0).unwrap();
        assert_eq!(d[0], 0);
        assert_eq!(d[8], 4); // manhattan distance on grid
        assert!(g.bfs_distances(99).is_err());
        let g2 = Graph::new(vec![(0.0, 0.0); 2], &[]).unwrap();
        assert_eq!(g2.bfs_distances(0).unwrap()[1], usize::MAX);
    }
}
