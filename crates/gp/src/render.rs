//! Rendering traffic-flow estimates (Figure 9 of the paper).
//!
//! "The results are plotted on a visual display and shaded according to
//! their value. High values obtain a red colour while low values obtain
//! green colour." This module maps vertex values to a green→red ramp and
//! renders them as a PPM image (dots at vertex coordinates) or a compact
//! ASCII heat map for terminal output.

use crate::graph::Graph;

/// An RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

/// Maps `value ∈ [lo, hi]` onto the green→yellow→red ramp of Figure 9.
/// Values outside the range clamp to the endpoints.
pub fn green_to_red(value: f64, lo: f64, hi: f64) -> Rgb {
    let t = if hi > lo { ((value - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 };
    // green (0,200,0) -> yellow (230,230,0) -> red (220,0,0)
    if t < 0.5 {
        let u = t * 2.0;
        Rgb((230.0 * u) as u8, (200.0 + 30.0 * u) as u8, 0)
    } else {
        let u = (t - 0.5) * 2.0;
        Rgb((230.0 - 10.0 * u) as u8, (230.0 * (1.0 - u)) as u8, 0)
    }
}

/// Renders per-vertex values as a PPM (P3) image: white background, one
/// filled square dot per vertex, coloured by value.
pub fn render_ppm(
    graph: &Graph,
    values: &[(usize, f64)],
    width: usize,
    height: usize,
    dot_radius: usize,
) -> String {
    let mut pixels = vec![Rgb(255, 255, 255); width * height];
    if graph.is_empty() || values.is_empty() || width == 0 || height == 0 {
        return to_ppm(&pixels, width, height);
    }

    let (min_x, max_x, min_y, max_y) = bounds(graph);
    let lo = values.iter().map(|v| v.1).fold(f64::INFINITY, f64::min);
    let hi = values.iter().map(|v| v.1).fold(f64::NEG_INFINITY, f64::max);

    let project = |x: f64, y: f64| -> (usize, usize) {
        let px = if max_x > min_x { (x - min_x) / (max_x - min_x) } else { 0.5 };
        let py = if max_y > min_y { (y - min_y) / (max_y - min_y) } else { 0.5 };
        (
            (px * (width.saturating_sub(1)) as f64).round() as usize,
            // flip y: north up
            ((1.0 - py) * (height.saturating_sub(1)) as f64).round() as usize,
        )
    };

    for &(v, value) in values {
        if v >= graph.len() {
            continue;
        }
        let (x, y) = graph.coords(v);
        let (cx, cy) = project(x, y);
        let colour = green_to_red(value, lo, hi);
        let r = dot_radius as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let px = cx as isize + dx;
                let py = cy as isize + dy;
                if px >= 0 && py >= 0 && (px as usize) < width && (py as usize) < height {
                    pixels[py as usize * width + px as usize] = colour;
                }
            }
        }
    }
    to_ppm(&pixels, width, height)
}

fn bounds(graph: &Graph) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for &(x, y) in graph.all_coords() {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    (min_x, max_x, min_y, max_y)
}

fn to_ppm(pixels: &[Rgb], width: usize, height: usize) -> String {
    let mut out = String::with_capacity(pixels.len() * 12 + 32);
    out.push_str(&format!("P3\n{width} {height}\n255\n"));
    for row in pixels.chunks(width.max(1)) {
        for p in row {
            out.push_str(&format!("{} {} {} ", p.0, p.1, p.2));
        }
        out.push('\n');
    }
    out
}

/// Renders per-vertex values as an ASCII heat map (`.` = no vertex,
/// `0`–`9` = low→high), suitable for terminal output.
pub fn render_ascii(graph: &Graph, values: &[(usize, f64)], width: usize, height: usize) -> String {
    let mut cells = vec![None::<f64>; width * height];
    if graph.is_empty() || values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let (min_x, max_x, min_y, max_y) = bounds(graph);
    let lo = values.iter().map(|v| v.1).fold(f64::INFINITY, f64::min);
    let hi = values.iter().map(|v| v.1).fold(f64::NEG_INFINITY, f64::max);
    for &(v, value) in values {
        if v >= graph.len() {
            continue;
        }
        let (x, y) = graph.coords(v);
        let px = if max_x > min_x { (x - min_x) / (max_x - min_x) } else { 0.5 };
        let py = if max_y > min_y { (y - min_y) / (max_y - min_y) } else { 0.5 };
        let cx = (px * (width - 1) as f64).round() as usize;
        let cy = ((1.0 - py) * (height - 1) as f64).round() as usize;
        let cell = &mut cells[cy * width + cx];
        // Several vertices may fall in one cell: keep the max (worst traffic).
        *cell = Some(cell.map_or(value, |prev: f64| prev.max(value)));
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in cells.chunks(width) {
        for cell in row {
            match cell {
                None => out.push('.'),
                Some(v) => {
                    let t = if hi > lo { ((v - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 };
                    let digit = (t * 9.0).round() as u32;
                    out.push(char::from_digit(digit, 10).expect("0..=9"));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_endpoints() {
        assert_eq!(green_to_red(0.0, 0.0, 1.0), Rgb(0, 200, 0));
        let red = green_to_red(1.0, 0.0, 1.0);
        assert!(red.0 > 200 && red.1 == 0, "high end is red, got {red:?}");
        let mid = green_to_red(0.5, 0.0, 1.0);
        assert!(mid.0 > 200 && mid.1 > 200, "midpoint is yellow, got {mid:?}");
    }

    #[test]
    fn ramp_clamps_and_handles_degenerate_range() {
        assert_eq!(green_to_red(-5.0, 0.0, 1.0), green_to_red(0.0, 0.0, 1.0));
        assert_eq!(green_to_red(5.0, 0.0, 1.0), green_to_red(1.0, 0.0, 1.0));
        let _ = green_to_red(3.0, 3.0, 3.0); // must not panic / divide by zero
    }

    #[test]
    fn ppm_has_header_and_size() {
        let g = Graph::grid(3, 3);
        let values: Vec<(usize, f64)> = (0..9).map(|v| (v, v as f64)).collect();
        let ppm = render_ppm(&g, &values, 30, 20, 1);
        assert!(ppm.starts_with("P3\n30 20\n255\n"));
        // 20 pixel rows + 3 header lines
        assert_eq!(ppm.lines().count(), 23);
    }

    #[test]
    fn ppm_colours_extremes_differently() {
        let g = Graph::grid(2, 1);
        let ppm_text = render_ppm(&g, &[(0, 0.0), (1, 100.0)], 10, 3, 0);
        assert!(ppm_text.contains("0 200 0"), "low vertex green");
        assert!(ppm_text.contains("220 0 0"), "high vertex red");
    }

    #[test]
    fn ascii_shape_and_symbols() {
        let g = Graph::grid(5, 1);
        let values: Vec<(usize, f64)> = (0..5).map(|v| (v, v as f64)).collect();
        let art = render_ascii(&g, &values, 5, 1);
        assert_eq!(art, "02579\n".to_string());
    }

    #[test]
    fn empty_inputs_are_safe() {
        let g = Graph::with_vertices(0);
        assert!(render_ascii(&g, &[], 5, 5).is_empty());
        let ppm = render_ppm(&g, &[], 4, 4, 1);
        assert!(ppm.starts_with("P3\n4 4\n"));
    }
}
