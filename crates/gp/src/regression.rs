//! GP regression: the predictive distribution at unmeasured locations.
//!
//! Implements the closed-form Gaussian conditional of Section 6:
//!
//! ```text
//! m = K_{u,ū} (K_{ū,ū} + σ²I)⁻¹ y
//! Σ = K_{u,u} − K_{u,ū} (K_{ū,ū} + σ²I)⁻¹ K_{ū,u}
//! ```
//!
//! where `ū` are the observed vertices (SCATS locations mapped to their
//! nearest junctions) and `u` the unobserved ones. The paper assumes a zero
//! prior mean "without loss of generality"; we optionally centre the
//! observations and add the mean back, which is the standard way to realise
//! that assumption on real data.

use crate::error::GpError;
use crate::graph::Graph;
use crate::kernel::Kernel;
use crate::linalg::Matrix;

/// The Gaussian posterior at a set of target vertices.
#[derive(Debug, Clone)]
pub struct Posterior {
    /// The target vertex indices, in the order of `mean`/`variance`.
    pub targets: Vec<usize>,
    /// Posterior means.
    pub mean: Vec<f64>,
    /// Posterior (marginal) variances — the diagonal of `Σ`.
    pub variance: Vec<f64>,
}

impl Posterior {
    /// Mean at a specific vertex, if it is among the targets.
    pub fn mean_at(&self, vertex: usize) -> Option<f64> {
        self.targets.iter().position(|&v| v == vertex).map(|i| self.mean[i])
    }

    /// Variance at a specific vertex, if it is among the targets.
    pub fn variance_at(&self, vertex: usize) -> Option<f64> {
        self.targets.iter().position(|&v| v == vertex).map(|i| self.variance[i])
    }
}

/// A fitted GP over a traffic graph.
pub struct GpRegression {
    kernel_matrix: Matrix,
    observed: Vec<usize>,
    /// `(K_{ū,ū} + σ²I)⁻¹ (y − μ)`
    alpha: Vec<f64>,
    /// Cholesky-based solver input `K_{ū,ū} + σ²I`.
    gram: Matrix,
    /// The (centred) observation vector.
    y: Vec<f64>,
    mean_offset: f64,
    n: usize,
}

impl GpRegression {
    /// Fits the GP: computes the full kernel matrix over `graph` and
    /// conditions on the observations `(vertex, value)` with noise `σ²`.
    ///
    /// `centre` subtracts the observation mean before conditioning (and adds
    /// it back in predictions), realising the paper's zero-mean assumption.
    pub fn fit(
        graph: &Graph,
        kernel: &dyn Kernel,
        observations: &[(usize, f64)],
        noise_variance: f64,
        centre: bool,
    ) -> Result<GpRegression, GpError> {
        if observations.is_empty() {
            return Err(GpError::DegenerateObservations { detail: "no observations".into() });
        }
        if !(noise_variance >= 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "noise_variance",
                value: noise_variance,
            });
        }
        let n = graph.len();
        for &(v, _) in observations {
            if v >= n {
                return Err(GpError::VertexOutOfRange { index: v, n });
            }
        }
        let k = kernel.covariance(graph)?;

        let observed: Vec<usize> = observations.iter().map(|&(v, _)| v).collect();
        let mut y: Vec<f64> = observations.iter().map(|&(_, val)| val).collect();
        let mean_offset = if centre { y.iter().sum::<f64>() / y.len() as f64 } else { 0.0 };
        for v in &mut y {
            *v -= mean_offset;
        }

        // K_{ū,ū} + σ²I (with a tiny jitter for numerical robustness when
        // σ² = 0 and observations repeat a vertex).
        let k_oo = k.submatrix(&observed, &observed)?;
        let gram = k_oo.add_diagonal(noise_variance + 1e-10);
        let alpha = gram.solve_spd(&y)?;

        Ok(GpRegression { kernel_matrix: k, observed, alpha, gram, y, mean_offset, n })
    }

    /// The log marginal likelihood `log p(y | X, θ)` of the (centred)
    /// observations under the fitted kernel + noise — the standard
    /// evidence-based criterion for hyperparameter selection, offered as an
    /// alternative to the paper's hold-out grid search:
    ///
    /// ```text
    /// log p(y) = −½ yᵀ(K+σ²I)⁻¹y − ½ log|K+σ²I| − (n/2) log 2π
    /// ```
    pub fn log_marginal_likelihood(&self) -> Result<f64, GpError> {
        let l = self.gram.cholesky()?;
        let data_fit: f64 = self.y.iter().zip(&self.alpha).map(|(y, a)| y * a).sum();
        let log_det: f64 = (0..l.rows()).map(|i| l.get(i, i).ln()).sum::<f64>() * 2.0;
        let n = self.y.len() as f64;
        Ok(-0.5 * data_fit - 0.5 * log_det - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }

    /// Number of vertices of the underlying graph.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// The observed vertex indices.
    pub fn observed(&self) -> &[usize] {
        &self.observed
    }

    /// Predicts the posterior at the given target vertices.
    pub fn predict(&self, targets: &[usize]) -> Result<Posterior, GpError> {
        for &v in targets {
            if v >= self.n {
                return Err(GpError::VertexOutOfRange { index: v, n: self.n });
            }
        }
        // K_{u,ū}
        let k_uo = self.kernel_matrix.submatrix(targets, &self.observed)?;
        let mean: Vec<f64> =
            k_uo.matvec(&self.alpha)?.into_iter().map(|m| m + self.mean_offset).collect();

        // Marginal variances: diag(K_uu) − row_i(K_uo) · G⁻¹ · row_i(K_uo)ᵀ.
        let k_ou = k_uo.transpose();
        let solved = self.gram.solve_spd_matrix(&k_ou)?; // G⁻¹ K_{ū,u}
        let mut variance = Vec::with_capacity(targets.len());
        for (i, &v) in targets.iter().enumerate() {
            let prior = self.kernel_matrix.get(v, v);
            let reduction: f64 =
                (0..self.observed.len()).map(|o| k_uo.get(i, o) * solved.get(o, i)).sum();
            variance.push((prior - reduction).max(0.0));
        }

        Ok(Posterior { targets: targets.to_vec(), mean, variance })
    }

    /// Predicts at every vertex not in the observation set (the paper's
    /// "unobserved traffic flows").
    pub fn predict_unobserved(&self) -> Result<Posterior, GpError> {
        let targets: Vec<usize> = (0..self.n).filter(|v| !self.observed.contains(v)).collect();
        self.predict(&targets)
    }

    /// Predicts at every vertex (observed ones included — useful for
    /// rendering the full map of Figure 9).
    pub fn predict_all(&self) -> Result<Posterior, GpError> {
        self.predict(&(0..self.n).collect::<Vec<_>>())
    }
}

/// Root-mean-square error between predictions and a ground truth, evaluated
/// at the intersection of vertices present in both.
pub fn rmse(posterior: &Posterior, truth: &[(usize, f64)]) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &(v, t) in truth {
        if let Some(m) = posterior.mean_at(v) {
            sum += (m - t) * (m - t);
            count += 1;
        }
    }
    (count > 0).then(|| (sum / count as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RegularizedLaplacian;

    fn kernel() -> RegularizedLaplacian {
        RegularizedLaplacian::new(2.0, 1.0).unwrap()
    }

    #[test]
    fn interpolates_exactly_with_zero_noise() {
        let g = Graph::grid(4, 1);
        let obs = [(0, 1.0), (3, 4.0)];
        let gp = GpRegression::fit(&g, &kernel(), &obs, 0.0, false).unwrap();
        let p = gp.predict(&[0, 3]).unwrap();
        assert!((p.mean[0] - 1.0).abs() < 1e-4);
        assert!((p.mean[1] - 4.0).abs() < 1e-4);
        // Variance at observed points ≈ 0.
        assert!(p.variance[0] < 1e-4);
    }

    #[test]
    fn unobserved_predictions_interpolate_between_neighbours() {
        let g = Graph::grid(3, 1); // 0-1-2
        let obs = [(0, 0.0), (2, 10.0)];
        let gp = GpRegression::fit(&g, &kernel(), &obs, 1e-6, true).unwrap();
        let p = gp.predict(&[1]).unwrap();
        let m = p.mean[0];
        assert!(m > 2.0 && m < 8.0, "middle vertex between endpoint values, got {m}");
    }

    #[test]
    fn posterior_variance_grows_with_graph_distance() {
        let g = Graph::grid(7, 1);
        let obs = [(0, 5.0)];
        let gp = GpRegression::fit(&g, &kernel(), &obs, 0.01, false).unwrap();
        let p = gp.predict(&[1, 6]).unwrap();
        assert!(
            p.variance[1] > p.variance[0],
            "far vertex more uncertain: {} vs {}",
            p.variance[1],
            p.variance[0]
        );
    }

    #[test]
    fn centring_restores_offset() {
        let g = Graph::grid(3, 3);
        let obs = [(0, 100.0), (8, 102.0)];
        let gp = GpRegression::fit(&g, &kernel(), &obs, 0.1, true).unwrap();
        let p = gp.predict_unobserved().unwrap();
        for m in &p.mean {
            assert!(*m > 90.0 && *m < 112.0, "means near the observation level, got {m}");
        }
    }

    #[test]
    fn predict_unobserved_excludes_observed() {
        let g = Graph::grid(3, 1);
        let gp = GpRegression::fit(&g, &kernel(), &[(1, 1.0)], 0.1, false).unwrap();
        let p = gp.predict_unobserved().unwrap();
        assert_eq!(p.targets, vec![0, 2]);
        let all = gp.predict_all().unwrap();
        assert_eq!(all.targets.len(), 3);
    }

    #[test]
    fn validation_errors() {
        let g = Graph::grid(2, 2);
        assert!(matches!(
            GpRegression::fit(&g, &kernel(), &[], 0.1, false),
            Err(GpError::DegenerateObservations { .. })
        ));
        assert!(matches!(
            GpRegression::fit(&g, &kernel(), &[(99, 1.0)], 0.1, false),
            Err(GpError::VertexOutOfRange { .. })
        ));
        assert!(GpRegression::fit(&g, &kernel(), &[(0, 1.0)], -1.0, false).is_err());
        let gp = GpRegression::fit(&g, &kernel(), &[(0, 1.0)], 0.1, false).unwrap();
        assert!(gp.predict(&[99]).is_err());
    }

    #[test]
    fn posterior_accessors() {
        let g = Graph::grid(3, 1);
        let gp = GpRegression::fit(&g, &kernel(), &[(0, 1.0)], 0.1, false).unwrap();
        let p = gp.predict(&[1, 2]).unwrap();
        assert!(p.mean_at(1).is_some());
        assert!(p.mean_at(0).is_none());
        assert!(p.variance_at(2).is_some());
    }

    #[test]
    fn rmse_computes_over_overlap() {
        let p = Posterior { targets: vec![1, 2], mean: vec![1.0, 3.0], variance: vec![0.0, 0.0] };
        let truth = [(1, 2.0), (2, 3.0), (5, 100.0)];
        let e = rmse(&p, &truth).unwrap();
        assert!((e - (0.5f64).sqrt()).abs() < 1e-12);
        assert!(rmse(&p, &[(9, 1.0)]).is_none());
    }

    #[test]
    fn log_marginal_likelihood_matches_univariate_gaussian() {
        // One vertex, one observation, no centring: p(y) = N(0, k + σ²).
        let g = Graph::with_vertices(1);
        let kern = crate::kernel::RbfKernel::new(1.0, 2.0).unwrap(); // k(0,0)=2
        let sigma2 = 0.5;
        let y = 1.3;
        let gp = GpRegression::fit(&g, &kern, &[(0, y)], sigma2, false).unwrap();
        let lml = gp.log_marginal_likelihood().unwrap();
        let var: f64 = 2.0 + sigma2 + 1e-10;
        let expected =
            -0.5 * y * y / var - 0.5 * var.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((lml - expected).abs() < 1e-9, "{lml} vs {expected}");
    }

    #[test]
    fn log_marginal_likelihood_prefers_fitting_hyperparameters() {
        // Smooth graph signal: a matched length-scale should score higher
        // evidence than an absurd one.
        let g = Graph::grid(10, 1);
        let obs: Vec<(usize, f64)> = (0..10).map(|v| (v, (v as f64 / 3.0).sin() * 5.0)).collect();
        let good = GpRegression::fit(&g, &kernel(), &obs, 0.1, true).unwrap();
        let bad_kernel = RegularizedLaplacian::new(0.01, 100.0).unwrap();
        let bad = GpRegression::fit(&g, &bad_kernel, &obs, 0.1, true).unwrap();
        assert!(good.log_marginal_likelihood().unwrap() > bad.log_marginal_likelihood().unwrap());
    }

    #[test]
    fn structural_kernel_beats_naive_mean_on_smooth_graph_signal() {
        // Ground truth varies smoothly along a path graph; observing every
        // second vertex, the GP should reconstruct the rest better than the
        // global mean.
        let n = 21;
        let g = Graph::grid(n, 1);
        let truth: Vec<f64> = (0..n).map(|i| (i as f64 / 4.0).sin() * 10.0).collect();
        let obs: Vec<(usize, f64)> = (0..n).step_by(2).map(|i| (i, truth[i])).collect();
        let gp = GpRegression::fit(&g, &kernel(), &obs, 0.01, true).unwrap();
        let p = gp.predict_unobserved().unwrap();
        let truth_pairs: Vec<(usize, f64)> = p.targets.iter().map(|&v| (v, truth[v])).collect();
        let gp_err = rmse(&p, &truth_pairs).unwrap();
        let mean_val = obs.iter().map(|&(_, v)| v).sum::<f64>() / obs.len() as f64;
        let mean_err =
            (truth_pairs.iter().map(|&(_, t)| (t - mean_val) * (t - mean_val)).sum::<f64>()
                / truth_pairs.len() as f64)
                .sqrt();
        assert!(gp_err < mean_err * 0.6, "GP rmse {gp_err} should beat mean rmse {mean_err}");
    }
}
