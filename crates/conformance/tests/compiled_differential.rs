//! The compiled-plan differential suite: three-way equivalence between the
//! compiled engine, the interpreted engine and the naive full-history oracle
//! over **fuzzed rule sets** and seeded adversarial streams.
//!
//! Every proptest case draws a fresh well-stratified rule set from
//! [`insight_datagen::adversarial::fuzz_ruleset`] (mixed pivotable and
//! non-pivotable bodies, negation over lower strata, multi-stratum chains,
//! unused fluents) plus a stream with adversarial arrivals, then requires:
//!
//! 1. compiled engine == oracle (via [`Harness::check`] with the
//!    `configure_engine` hook flipping `set_compiled(true)`), and
//! 2. compiled engine == interpreted engine at every `holdsAt` time-point of
//!    every window and on every derived-event set (via
//!    [`Harness::compare_engine_modes`]), in both incremental and
//!    full-recompute modes.
//!
//! Failures replay from the printed seed. Two proptests at 128 cases each
//! (512 in the nightly `PROPTEST_CASES=512` CI variant) plus the pinned
//! deterministic families below put the run well past 256 distinct streams.

use insight_conformance::{
    fixture_grid, fixture_harness, fixture_stream, seed_offset, Harness, StimulusConfig, Stream,
};
use insight_datagen::adversarial::{fuzz_ruleset, FuzzCase, FuzzConfig, LatenessMix, QueryGrid};
use proptest::prelude::*;

fn fuzz_grid() -> QueryGrid {
    QueryGrid { first: 100, step: 50, wm: 100, last: 500 }
}

fn stream_of(case: &FuzzCase) -> Stream {
    Stream {
        label: case.label.clone(),
        seed: case.seed,
        events: case.events.clone(),
        obs: case.obs.clone(),
    }
}

/// Compiled engine against the oracle, then compiled against interpreted in
/// both evaluation modes, on one fuzzed seed.
///
/// The oracle leg uses the caller's config (which must keep
/// `aux_lookback = 0`: out-of-window `holdsAt` references are answered from
/// truncated knowledge by *any* windowed engine — designed §4.2 loss, not a
/// bug). The engine-vs-engine legs rerun the same seed with a real lookback,
/// so non-pivotable conditions genuinely roam the past: both engines share
/// the same windowed knowledge, so they must still agree tick-for-tick.
fn check_three_way(seed: u64, grid: QueryGrid, cfg: &FuzzConfig) {
    let case = fuzz_ruleset(seed, &grid, cfg);
    let stream = stream_of(&case);
    let harness = Harness::new(case.rules.clone(), grid).configure_engine(|e| e.set_compiled(true));
    match harness.check(&stream) {
        Ok(stats) => assert!(stats.queries > 0 && stats.ticks > 0),
        Err(report) => panic!("compiled vs oracle: {report}"),
    }

    let deep = FuzzConfig { aux_lookback: grid.wm / 2, ..*cfg };
    let deep_case = fuzz_ruleset(seed, &grid, &deep);
    let deep_stream = stream_of(&deep_case);
    let deep_harness = Harness::new(deep_case.rules.clone(), grid);
    // Compiled vs interpreted, incremental (the default) …
    deep_harness
        .compare_engine_modes(&deep_stream, |a| a.set_compiled(true), |b| b.set_compiled(false))
        .unwrap_or_else(|e| panic!("compiled vs interpreted (incremental): {e}"));
    // … and full-recompute on both sides.
    deep_harness
        .compare_engine_modes(
            &deep_stream,
            |a| {
                a.set_incremental(false);
                a.set_compiled(true);
            },
            |b| b.set_incremental(false),
        )
        .unwrap_or_else(|e| panic!("compiled vs interpreted (full): {e}"));
}

proptest! {
    /// Fuzzed rule sets under the default lateness mix.
    #[test]
    fn fuzzed_rule_sets_three_way_equivalent(seed in any::<u64>()) {
        let grid = fuzz_grid();
        check_three_way(seed, grid, &FuzzConfig::default());
    }

    /// Fuzzed rule sets under late-heavy arrivals (amendment and loss paths)
    /// and a tumbling grid, which exercises the full-window re-derivation
    /// path of the compiled plan rather than the incremental deltas.
    #[test]
    fn fuzzed_rule_sets_survive_late_arrivals(seed in any::<u64>(), tumbling in any::<bool>()) {
        let grid = if tumbling {
            QueryGrid { first: 80, step: 80, wm: 80, last: 480 }
        } else {
            fuzz_grid()
        };
        let mix = LatenessMix { on_time: 0.3, within_wm: 0.3, beyond_wm: 0.2, boundary: 0.2 };
        let cfg = FuzzConfig { mix, ..FuzzConfig::default() };
        check_three_way(seed, grid, &cfg);
    }
}

/// A pinned family of fuzzed cases per CI seed job — exactly reproducible
/// locally with `CONFORMANCE_SEED={0,77,777}`.
#[test]
fn pinned_fuzz_family_three_way_equivalent() {
    let grid = fuzz_grid();
    let base = 3000 + seed_offset() * 100_000;
    for seed in base..base + 12 {
        check_three_way(seed, grid, &FuzzConfig::default());
    }
}

/// The fixture rule set (relations, builtins, statically-determined fluents
/// — vocabulary the fuzzer does not draw) through the compiled engine
/// against the oracle.
#[test]
fn fixture_streams_compiled_match_oracle() {
    let grid = fixture_grid();
    let harness = fixture_harness(grid).configure_engine(|e| e.set_compiled(true));
    let cfg = StimulusConfig::default();
    let base = 4000 + seed_offset() * 100_000;
    for seed in base..base + 8 {
        match harness.check(&fixture_stream(seed, grid, &cfg)) {
            Ok(stats) => assert!(stats.queries > 0),
            Err(report) => panic!("{report}"),
        }
    }
}

/// Fixture streams, compiled vs interpreted at every tick: shard replicas
/// and the single-process pipeline must be able to flip the mode without
/// changing one recognition.
#[test]
fn fixture_streams_compiled_match_interpreted() {
    let grid = fixture_grid();
    let harness = fixture_harness(grid);
    let cfg = StimulusConfig::default();
    let base = 5000 + seed_offset() * 100_000;
    for seed in base..base + 8 {
        let stream = fixture_stream(seed, grid, &cfg);
        harness
            .compare_engine_modes(&stream, |a| a.set_compiled(true), |_| {})
            .unwrap_or_else(|e| panic!("{e}"));
    }
}
