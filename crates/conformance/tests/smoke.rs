//! First-light differential check: a handful of fixed seeds.

use insight_conformance::{fixture_grid, fixture_harness, fixture_stream, StimulusConfig};

#[test]
fn fixed_seeds_agree() {
    let grid = fixture_grid();
    let harness = fixture_harness(grid);
    let cfg = StimulusConfig::default();
    for seed in 0..4u64 {
        let stream = fixture_stream(seed, grid, &cfg);
        match harness.check(&stream) {
            Ok(stats) => {
                assert!(stats.queries > 0 && stats.ticks > 0, "vacuous check: {stats:?}");
            }
            Err(report) => panic!("{report}"),
        }
    }
}
