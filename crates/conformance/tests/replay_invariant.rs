//! Tentpole part 3: the Dublin topology's recognition output must be
//! invariant under the process interleaving.
//!
//! Each seed drives the deterministic replay scheduler
//! (`insight_streams::replay::ReplayRuntime`) through one exact single-
//! threaded interleaving of the §3 topology — feed processes, the sharded
//! RTEC stage, the sharded crowd task stage and the EM merge — and the
//! canonical (sorted, wall-clock-stripped) recognition output must be
//! byte-identical across all of them, and across every shard count of the
//! partitioned stages. A failure names the two diverging seeds, which
//! replay the interleavings exactly.

use insight_conformance::seed_offset;
use insight_core::replay::{assert_schedule_invariant, replay_recognitions};
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_rtec::window::WindowConfig;
use insight_traffic::TrafficRulesConfig;

/// `n` scheduler seeds starting at `CONFORMANCE_SEED * 1000` (0 by default),
/// so each CI seed pin exercises a disjoint family of interleavings.
fn scheduler_seeds(n: u64) -> Vec<u64> {
    let base = seed_offset() * 1000;
    (base..base + n).collect()
}

#[test]
fn dublin_topology_recognitions_are_schedule_invariant() {
    let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).expect("scenario");
    let window = WindowConfig::new(600, 300).expect("window");
    assert_schedule_invariant(
        &scenario,
        TrafficRulesConfig::default(),
        window,
        &scheduler_seeds(9),
    );
}

#[test]
fn schedule_invariance_holds_with_crowd_resolutions_in_the_loop() {
    // A faulty fleet produces source disagreements, so the crowd stage's
    // order-sensitive resolve path actually runs; rule-set (4) surfaces
    // the disagreements as CEs.
    let mut cfg = ScenarioConfig::small(2400, 91);
    cfg.fleet.faulty_fraction = 0.5;
    cfg.fleet.n_buses = 40;
    let scenario = Scenario::generate(cfg).expect("scenario");
    let window = WindowConfig::new(900, 450).expect("window");
    let rules = TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated);
    let out = replay_recognitions(&scenario, rules.clone(), window, 0).expect("replay runs");
    assert!(
        out.lines().any(|l| l.contains("crowd_verdict_congested")),
        "the crowd stage must have resolved at least one disagreement:\n{out}"
    );
    assert_schedule_invariant(&scenario, rules, window, &scheduler_seeds(8));
}

#[test]
fn recognitions_invariant_in_shard_count_under_replay() {
    // The keyed shard-parallel stages must be pure plumbing: for every
    // scheduler seed, running the same scenario with 1, 2, or 4 replicas of
    // the RTEC and crowd task stages yields byte-identical canonical output.
    use insight_core::pipeline::PipelineOptions;
    use insight_core::replay::replay_recognitions_with;

    let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).expect("scenario");
    let window = WindowConfig::new(600, 300).expect("window");
    let rules = TrafficRulesConfig::default();
    for seed in [0, 77, 777] {
        let shapes = [
            PipelineOptions { rtec_replicas: 1, crowd_replicas: 1, ..PipelineOptions::standard() },
            PipelineOptions { rtec_replicas: 2, crowd_replicas: 2, ..PipelineOptions::standard() },
            PipelineOptions { rtec_replicas: 4, crowd_replicas: 3, ..PipelineOptions::standard() },
        ];
        let outputs: Vec<String> = shapes
            .iter()
            .map(|o| {
                replay_recognitions_with(&scenario, rules.clone(), window, seed, o)
                    .expect("replay runs")
            })
            .collect();
        assert!(!outputs[0].is_empty(), "seed {seed} produced recognitions");
        for (o, shape) in outputs.iter().zip(&shapes) {
            assert_eq!(o, &outputs[0], "seed {seed}, shape {shape:?} diverged");
        }
    }
}

#[test]
fn replay_output_matches_threaded_runtime_content() {
    // The replay scheduler is not a parallel implementation to trust
    // separately: its canonical output must equal what the threaded runtime
    // produces for the same scenario.
    use insight_core::pipeline::build_pipeline;
    use insight_core::replay::canonical_recognitions;
    use insight_streams::runtime::Runtime;

    let scenario = Scenario::generate(ScenarioConfig::small(900, 42)).expect("scenario");
    let window = WindowConfig::new(300, 300).expect("window");
    let rules = TrafficRulesConfig::static_mode();
    let (topology, sink) = build_pipeline(&scenario, rules.clone(), window).expect("topology");
    Runtime::new(topology).run().expect("threaded run");
    let threaded = canonical_recognitions(&sink.items());
    let replayed = replay_recognitions(&scenario, rules, window, 123).expect("replayed run");
    assert_eq!(threaded, replayed, "replay and threaded runtimes recognise identically");
}
