//! The harness must *detect* divergence, not just bless agreement.
//!
//! A simple fluent initiated by a **spanning** derived event is the textbook
//! case where windowed recognition genuinely differs from naive
//! recomputation: once the earlier half of the evidence slides out of the
//! working memory, the engine can no longer re-derive the initiating event
//! and the fluent's state is lost, while the full-history oracle keeps it.
//! The differential harness must flag exactly that, with a replayable seed
//! and a minimal fluent diff.

use insight_conformance::{diff, Harness, Stream};
use insight_datagen::adversarial::QueryGrid;
use insight_rtec::dsl::{
    cmp, event_head, event_pat, fluent, guard, happens, pat, term_ne, val, RuleSet, RuleSetBuilder,
};
use insight_rtec::event::{Event, Stamped};
use insight_rtec::rule::{CmpOp, NumExpr};
use insight_rtec::term::Term;

/// `hop(Bus, From, To)` spans two `enter` events; `tracking(Bus)` is
/// initiated by it — deliberately violating the co-timed-evidence discipline
/// the real rule library keeps.
fn state_from_spanning_event_rules() -> RuleSet {
    let mut b = RuleSetBuilder::new();
    b.declare_event("enter", 2);
    let bus = b.var("Bus");
    let s1 = b.var("S1");
    let s2 = b.var("S2");
    let t = b.var("T");
    let t1 = b.var("T1");
    b.derived_event(
        event_head("hop", [pat(bus), pat(s1), pat(s2)]),
        t,
        [
            happens(event_pat("enter", [pat(bus), pat(s1)]), t1),
            happens(event_pat("enter", [pat(bus), pat(s2)]), t),
            guard(term_ne(s1, s2)),
            guard(cmp(
                NumExpr::Sub(Box::new(NumExpr::Var(t)), Box::new(NumExpr::Var(t1))),
                CmpOp::Gt,
                0.0,
            )),
        ],
    );
    b.initiated(
        fluent("tracking", [pat(bus)], val(true)),
        t,
        [happens(event_pat("hop", [pat(bus), pat(s1), pat(s2)]), t)],
    );
    b.build().expect("rule set builds")
}

#[test]
fn windowed_state_loss_is_detected_and_reported() {
    let grid = QueryGrid { first: 100, step: 50, wm: 100, last: 300 };
    let harness = Harness::new(state_from_spanning_event_rules(), grid);
    // Evidence span (190, 210]: both halves are inside the window of q=250,
    // so `tracking(9)` initiates at 210. At q=300 the window is (200, 300]
    // — the first `enter` is gone, `hop` cannot be re-derived, and the
    // engine has no cached interval covering the window start, so the
    // engine drops `tracking(9)` while the oracle keeps it by inertia.
    let stream = Stream {
        label: "state-from-spanning-event".into(),
        seed: 77,
        events: vec![
            Stamped::arriving_at(Event::new("enter", vec![Term::int(9), Term::int(1)], 190), 190),
            Stamped::arriving_at(Event::new("enter", vec![Term::int(9), Term::int(2)], 210), 210),
        ],
        obs: vec![],
    };
    let report = harness.check(&stream).expect_err("divergence must be detected");
    assert_eq!(report.seed, 77);
    assert_eq!(report.query_time, 300);
    assert!(!report.fluent_diffs.is_empty(), "fluent diff expected: {report}");
    let d = &report.fluent_diffs[0];
    assert_eq!(d.fluent, "tracking");
    assert_eq!(d.args, vec![Term::int(9)]);
    assert!(!d.engine_holds_at_first, "the engine side lost the state");
    assert_eq!(d.first_tick, 210);
    assert_eq!(d.last_tick, 300);

    // The rendered report carries everything needed to replay the case.
    let rendered = report.to_string();
    assert!(rendered.contains("replay with seed 77"), "{rendered}");
    assert!(rendered.contains("ORACLE DIVERGENCE at query 300"), "{rendered}");
    assert!(rendered.contains("tracking"), "{rendered}");

    // And it persists for CI artifact upload.
    let path = diff::write_report(&report).expect("report written");
    let on_disk = std::fs::read_to_string(&path).expect("report readable");
    assert_eq!(on_disk, rendered);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn spurious_engine_events_would_be_reported() {
    // Sanity-check the event-diff side of the report type: render both
    // directions and make sure the wording distinguishes them.
    let report = diff::DivergenceReport {
        label: "synthetic".into(),
        seed: 5,
        query_time: 100,
        window_start: 0,
        fluent_diffs: vec![],
        event_diffs: vec![
            diff::EventDiff {
                kind: "alert".into(),
                args: vec![Term::int(1)],
                time: 40,
                side: diff::Side::SpuriousInEngine,
            },
            diff::EventDiff {
                kind: "alert".into(),
                args: vec![Term::int(2)],
                time: 60,
                side: diff::Side::MissingFromEngine,
            },
        ],
    };
    let rendered = report.to_string();
    assert!(rendered.contains("oracle does not derive it"), "{rendered}");
    assert!(rendered.contains("engine missed it"), "{rendered}");
    assert!(!report.is_empty());
}
