//! The tentpole differential suite: the windowed `insight_rtec::Engine`
//! against the naive full-history oracle, over ≥ 256 seeded SDE streams per
//! run.
//!
//! Two proptests (128 cases each by default; `PROPTEST_CASES=512` in the
//! nightly CI variant) cover the fixture rule set under adversarial arrival
//! schedules and three different query grids; deterministic tests pin the
//! two hardest schedules (occurrences exactly on the `Qi − WM` boundary,
//! arrivals beyond the working memory) and run the *real* Dublin traffic
//! rule library over perturbed scenario traces.

use insight_conformance::{
    fixture_grid, fixture_harness, fixture_stream, seed_offset, Harness, StimulusConfig, Stream,
};
use insight_datagen::adversarial::{perturb_sdes, LatenessMix, QueryGrid};
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_traffic::config::TrafficRulesConfig;
use insight_traffic::geo::close_builtin;
use insight_traffic::rules::{build_ruleset, rel};
use insight_traffic::sde::to_rtec;
use proptest::prelude::*;

fn run(harness: &Harness, stream: &Stream) {
    match harness.check(stream) {
        Ok(stats) => {
            assert!(stats.queries > 0, "no queries executed");
            assert!(stats.ticks > 0, "no time-points compared");
        }
        Err(report) => panic!("{report}"),
    }
}

proptest! {
    /// The default overlapping grid (WM = 2·step) under a seed-drawn
    /// lateness mix, duplicates included.
    #[test]
    fn overlapping_window_streams_match_oracle(
        seed in any::<u64>(),
        late_heavy in any::<bool>(),
    ) {
        let grid = fixture_grid();
        let mix = if late_heavy {
            LatenessMix { on_time: 0.3, within_wm: 0.3, beyond_wm: 0.2, boundary: 0.2 }
        } else {
            LatenessMix::default()
        };
        let cfg = StimulusConfig { mix, ..StimulusConfig::default() };
        let harness = fixture_harness(grid);
        run(&harness, &fixture_stream(seed, grid, &cfg));
    }

    /// Tumbling (WM = step) and long-memory (WM = 3·step) grids: the window
    /// arithmetic differs, the recognition must not.
    #[test]
    fn alternate_grids_match_oracle(seed in any::<u64>(), tumbling in any::<bool>()) {
        let grid = if tumbling {
            QueryGrid { first: 60, step: 60, wm: 60, last: 540 }
        } else {
            QueryGrid { first: 120, step: 40, wm: 120, last: 560 }
        };
        let cfg = StimulusConfig::default();
        let harness = fixture_harness(grid);
        run(&harness, &fixture_stream(seed, grid, &cfg));
    }
}

/// Occurrences exactly on `Qi − WM` (excluded by the half-open window) and
/// on `Qi − WM + 1` (the first included tick) dominate these streams.
#[test]
fn boundary_occurrences_match_oracle() {
    let grid = fixture_grid();
    let harness = fixture_harness(grid);
    let mix = LatenessMix { on_time: 0.1, within_wm: 0.0, beyond_wm: 0.0, boundary: 0.9 };
    let cfg = StimulusConfig { mix, ..StimulusConfig::default() };
    let base = 1000 + seed_offset() * 100_000;
    for seed in base..base + 16 {
        run(&harness, &fixture_stream(seed, grid, &cfg));
    }
}

/// Arrivals after the occurrence time left the working memory must be
/// irrevocably dropped — by the engine and by the oracle's knowledge base.
#[test]
fn beyond_wm_arrivals_match_oracle() {
    let grid = fixture_grid();
    let harness = fixture_harness(grid);
    let mix = LatenessMix { on_time: 0.3, within_wm: 0.1, beyond_wm: 0.6, boundary: 0.0 };
    let cfg = StimulusConfig { mix, ..StimulusConfig::default() };
    let base = 2000 + seed_offset() * 100_000;
    for seed in base..base + 16 {
        run(&harness, &fixture_stream(seed, grid, &cfg));
    }
}

/// The real Dublin rule library over mediated scenario traces whose arrival
/// times were adversarially perturbed (delays within and beyond WM, plus
/// duplicates).
#[test]
fn traffic_scenario_streams_match_oracle() {
    let grid = QueryGrid { first: 600, step: 300, wm: 600, last: 1200 };
    for (seed, config) in
        [(3u64, TrafficRulesConfig::static_mode()), (11u64, TrafficRulesConfig::default())]
    {
        let mut cfg = ScenarioConfig::small(1200, seed);
        cfg.fleet.n_buses = 10;
        cfg.n_scats_sensors = 12;
        let scenario = Scenario::generate(cfg).expect("scenario generates");
        let mut sdes = scenario.sdes.clone();
        perturb_sdes(&mut sdes, seed, &grid, &LatenessMix::default(), 0.05);

        let mut events = Vec::new();
        let mut obs = Vec::new();
        for sde in &sdes {
            let (e, o) = to_rtec(sde);
            events.extend(e);
            obs.extend(o);
        }
        let stream = Stream { label: format!("traffic-small-{seed}"), seed, events, obs };

        let rules = build_ruleset(&config).expect("traffic rule set builds");
        let close = close_builtin(config.close_threshold_m);
        let intersections: Vec<Vec<insight_rtec::term::Term>> = scenario
            .scats
            .intersections()
            .iter()
            .map(|i| {
                vec![
                    insight_rtec::term::Term::int(i.id as i64),
                    insight_rtec::term::Term::float(i.lon),
                    insight_rtec::term::Term::float(i.lat),
                ]
            })
            .collect();
        let areas: Vec<Vec<insight_rtec::term::Term>> = scenario
            .scats
            .intersections()
            .iter()
            .map(|i| {
                vec![insight_rtec::term::Term::float(i.lon), insight_rtec::term::Term::float(i.lat)]
            })
            .collect();
        let harness = Harness::new(rules, grid)
            .builtin("close", move |args| close(args))
            .relation(rel::SCATS_INTERSECTION, intersections)
            .relation(rel::AREA, areas);
        run(&harness, &stream);
    }
}
