//! Arena A/B differential: the slot-indexed compiled path (arena on, the
//! default) against the legacy rebuild compiled path (arena off) and the
//! naive full-history oracle.
//!
//! The slot-indexed data plane keeps grounding tables, derivation pools and
//! interval arenas alive across windows instead of rebuilding per-window
//! maps; these tests pin that the retained state is observationally
//! invisible: over fuzzed rule sets, fixture streams (relations, builtins
//! and statically-determined fluents — the clamp-reuse and interval-algebra
//! paths) and mid-stream mode toggles, both paths must produce identical
//! recognitions at every query.
//!
//! Failures replay from the printed seed; the pinned families run per CI
//! seed job, reproducible locally with `CONFORMANCE_SEED={0,77,777}`.

use insight_conformance::{
    fixture_grid, fixture_harness, fixture_stream, seed_offset, Harness, StimulusConfig, Stream,
};
use insight_datagen::adversarial::{fuzz_ruleset, FuzzCase, FuzzConfig, QueryGrid};
use insight_rtec::prelude::{Engine, WindowConfig};
use proptest::prelude::*;

fn fuzz_grid() -> QueryGrid {
    QueryGrid { first: 100, step: 50, wm: 100, last: 500 }
}

fn stream_of(case: &FuzzCase) -> Stream {
    Stream {
        label: case.label.clone(),
        seed: case.seed,
        events: case.events.clone(),
        obs: case.obs.clone(),
    }
}

/// Arena-on vs arena-off on one fuzzed seed, in both evaluation modes, plus
/// arena-on against the oracle.
fn check_arena_ab(seed: u64, grid: QueryGrid, cfg: &FuzzConfig) {
    let case = fuzz_ruleset(seed, &grid, cfg);
    let stream = stream_of(&case);

    let harness = Harness::new(case.rules.clone(), grid).configure_engine(|e| {
        e.set_compiled(true);
        e.set_arena(true);
    });
    match harness.check(&stream) {
        Ok(stats) => assert!(stats.queries > 0 && stats.ticks > 0),
        Err(report) => panic!("arena vs oracle: {report}"),
    }

    let ab = Harness::new(case.rules.clone(), grid);
    // Slot-indexed vs legacy rebuild, incremental (the default) …
    ab.compare_engine_modes(
        &stream,
        |a| {
            a.set_compiled(true);
            a.set_arena(true);
        },
        |b| {
            b.set_compiled(true);
            b.set_arena(false);
        },
    )
    .unwrap_or_else(|e| panic!("arena on vs off (incremental): {e}"));
    // … and full-recompute on both sides.
    ab.compare_engine_modes(
        &stream,
        |a| {
            a.set_incremental(false);
            a.set_compiled(true);
            a.set_arena(true);
        },
        |b| {
            b.set_incremental(false);
            b.set_compiled(true);
            b.set_arena(false);
        },
    )
    .unwrap_or_else(|e| panic!("arena on vs off (full): {e}"));
}

proptest! {
    /// Fuzzed rule sets: the retained slot state must be invisible.
    #[test]
    fn fuzzed_rule_sets_arena_ab_equivalent(seed in any::<u64>()) {
        check_arena_ab(seed, fuzz_grid(), &FuzzConfig::default());
    }
}

/// A pinned family of fuzzed cases per CI seed job.
#[test]
fn pinned_fuzz_family_arena_ab_equivalent() {
    let grid = fuzz_grid();
    let base = 6000 + seed_offset() * 100_000;
    for seed in base..base + 12 {
        check_arena_ab(seed, grid, &FuzzConfig::default());
    }
}

/// Fixture streams (relations, builtins, statically-determined fluents —
/// vocabulary the fuzzer does not draw) through arena on vs off: this is the
/// coverage for the static-fluent clamp-reuse and arena interval algebra.
#[test]
fn fixture_streams_arena_ab_equivalent() {
    let grid = fixture_grid();
    let harness = fixture_harness(grid);
    let cfg = StimulusConfig::default();
    let base = 7000 + seed_offset() * 100_000;
    for seed in base..base + 8 {
        let stream = fixture_stream(seed, grid, &cfg);
        harness
            .compare_engine_modes(
                &stream,
                |a| {
                    a.set_compiled(true);
                    a.set_arena(true);
                },
                |b| {
                    b.set_compiled(true);
                    b.set_arena(false);
                },
            )
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Flipping the arena mode *mid-stream* must not change one recognition:
/// engine A toggles between the slot-indexed and legacy paths every window
/// (exercising the lazy cache resync in both directions), engine B stays on
/// the default path.
#[test]
fn arena_toggle_mid_stream_is_equivalent() {
    let grid = fuzz_grid();
    let base = 8000 + seed_offset() * 100_000;
    for seed in base..base + 6 {
        let case = fuzz_ruleset(seed, &grid, &FuzzConfig::default());
        let window = WindowConfig::new(grid.wm, grid.step).unwrap();
        let mut a = Engine::new(case.rules.clone(), window);
        let mut b = Engine::new(case.rules.clone(), window);
        a.set_compiled(true);
        b.set_compiled(true);
        for ev in &case.events {
            a.add_stamped_event(ev.clone()).unwrap();
            b.add_stamped_event(ev.clone()).unwrap();
        }
        for ob in &case.obs {
            a.add_stamped_obs(ob.clone()).unwrap();
            b.add_stamped_obs(ob.clone()).unwrap();
        }
        for (w, &q) in grid.queries().iter().enumerate() {
            a.set_arena(w % 2 == 0);
            let ra = a.query(q).unwrap();
            let rb = b.query(q).unwrap();
            assert_eq!(
                ra.derived_events, rb.derived_events,
                "seed {seed}: derived events diverged at q={q}"
            );
            let mut names: Vec<_> = ra.fluent_store().names().collect();
            names.extend(rb.fluent_store().names());
            names.sort_unstable();
            names.dedup();
            for name in names {
                let mut ea: Vec<_> = ra
                    .fluent_store()
                    .entries(name)
                    .iter()
                    .map(|e| (e.args.clone(), e.value.clone(), e.ivs.clone()))
                    .collect();
                let mut eb: Vec<_> = rb
                    .fluent_store()
                    .entries(name)
                    .iter()
                    .map(|e| (e.args.clone(), e.value.clone(), e.ivs.clone()))
                    .collect();
                ea.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
                eb.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
                assert_eq!(ea, eb, "seed {seed}: fluent `{name}` diverged at q={q}");
            }
        }
    }
}
