//! Crash-recovery conformance: a supervised Dublin topology that loses a
//! stateful worker mid-stream must recognise exactly what the kill-free run
//! recognises.
//!
//! Each case injects a deterministic kill (`insight_streams::chaos::KillAt`
//! behind a shared `KillSwitch`) into a stage running under
//! `FaultPolicy::Restart { from_checkpoint: true }`: the supervisor rebuilds
//! the worker from its factory, restores the latest checkpoint (RTEC engine
//! snapshot, watermarks, EM estimator, held/pending queues) and silently
//! replays the logged suffix. The kill point sweeps the whole input range —
//! including item 1, before any checkpoint exists — and every run executes
//! under the deterministic replay scheduler with seeds {0, 77, 777}, for
//! both the plain (1-replica) and the paper's 4-way region-sharded RTEC
//! stage. Recovery is correct iff the canonical recognition output is
//! byte-identical to the kill-free baseline in every combination.

use insight_core::pipeline::PipelineOptions;
use insight_core::replay::replay_recognitions_with;
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_rtec::window::WindowConfig;
use insight_streams::chaos::KillSwitch;
use insight_traffic::TrafficRulesConfig;

const SCHEDULER_SEEDS: [u64; 3] = [0, 77, 777];

/// Supervision used throughout: checkpoint every 8 items, 2 restarts per
/// worker lifetime (one kill needs one), single crowd task replica so the
/// sweep varies exactly one axis.
fn supervised(rtec_replicas: usize) -> PipelineOptions {
    PipelineOptions { rtec_replicas, crowd_replicas: 1, ..PipelineOptions::recovering(8, 2) }
}

/// Kill points covering the input range: the first items (no checkpoint
/// taken yet, recovery replays from the start), then evenly spaced steps up
/// to and including the last item.
fn kill_points(n: u64) -> Vec<u64> {
    assert!(n >= 2, "stream too short to sweep ({n} items)");
    let mut points = vec![1, 2];
    for i in 1..=6 {
        points.push(n * i / 6);
    }
    points.sort_unstable();
    points.dedup();
    points.retain(|&k| (1..=n).contains(&k));
    points
}

/// Sweeps kills over the RTEC stage of the given shard shape and asserts
/// recovery equivalence for every scheduler seed.
fn assert_rtec_kill_sweep_recovers(rtec_replicas: usize) {
    let scenario = Scenario::generate(ScenarioConfig::small(900, 42)).expect("scenario");
    let window = WindowConfig::new(300, 300).expect("window");
    let rules = TrafficRulesConfig::static_mode();
    // The RTEC stage consumes every SDE of the scenario (the feeds forward
    // 1:1 into the `sde` queue), so the sweep range is the SDE count.
    let n = scenario.sdes.len() as u64;
    for seed in SCHEDULER_SEEDS {
        let baseline = replay_recognitions_with(
            &scenario,
            rules.clone(),
            window,
            seed,
            &supervised(rtec_replicas),
        )
        .expect("kill-free replay");
        assert!(!baseline.is_empty(), "seed {seed} produced recognitions");
        for k in kill_points(n) {
            let switch = KillSwitch::new();
            let options = PipelineOptions {
                kill_rtec_at: Some((k, switch.clone())),
                ..supervised(rtec_replicas)
            };
            let out = replay_recognitions_with(&scenario, rules.clone(), window, seed, &options)
                .unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}, kill at {k}/{n}, {rtec_replicas} replica(s): \
                         recovery failed: {e}"
                    )
                });
            assert!(switch.fired(), "seed {seed}: kill at {k}/{n} never struck");
            assert_eq!(
                out, baseline,
                "seed {seed}, kill at {k}/{n}, {rtec_replicas} RTEC replica(s): \
                 recovered output diverged from the kill-free run"
            );
        }
    }
}

#[test]
fn plain_rtec_stage_recovers_from_kills_across_the_whole_stream() {
    assert_rtec_kill_sweep_recovers(1);
}

#[test]
fn sharded_rtec_stage_recovers_from_kills_across_the_whole_stream() {
    // Four replicas — the paper's one-engine-per-region decomposition; the
    // shared switch kills whichever replica happens to process the k-th
    // item, so the sweep exercises partitioned recovery too.
    assert_rtec_kill_sweep_recovers(4);
}

#[test]
fn crowd_em_stage_recovers_with_its_estimator_state_intact() {
    // The faulty-fleet scenario produces source disagreements, so the EM
    // merge stage is genuinely stateful when the kill strikes: a restore
    // that lost the estimator or the held-summary gate would change the
    // verdicts downstream of the kill point.
    let mut cfg = ScenarioConfig::small(2400, 91);
    cfg.fleet.faulty_fraction = 0.5;
    cfg.fleet.n_buses = 40;
    let scenario = Scenario::generate(cfg).expect("scenario");
    let window = WindowConfig::new(900, 450).expect("window");
    let rules = TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated);
    let supervised =
        || PipelineOptions { checkpoint_every: 1, ..PipelineOptions::recovering(1, 2) };
    for seed in SCHEDULER_SEEDS {
        let baseline =
            replay_recognitions_with(&scenario, rules.clone(), window, seed, &supervised())
                .expect("kill-free replay");
        assert!(
            baseline.contains("crowd_verdict_congested"),
            "seed {seed}: baseline resolves at least one disagreement"
        );
        // The EM stage consumes exactly the summaries that reach the sink.
        let n = baseline.lines().count() as u64;
        for k in [1, n / 2, n] {
            let switch = KillSwitch::new();
            let options =
                PipelineOptions { kill_crowd_em_at: Some((k, switch.clone())), ..supervised() };
            let out = replay_recognitions_with(&scenario, rules.clone(), window, seed, &options)
                .unwrap_or_else(|e| panic!("seed {seed}, EM kill at {k}/{n} failed: {e}"));
            assert!(switch.fired(), "seed {seed}: EM kill at {k}/{n} never struck");
            assert_eq!(
                out, baseline,
                "seed {seed}, EM kill at {k}/{n}: recovered verdicts diverged"
            );
        }
    }
}
