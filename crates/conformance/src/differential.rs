//! The differential harness: windowed engine vs. reference oracle.
//!
//! For each query time `Qi` of a [`QueryGrid`], the harness gives the oracle
//! exactly the knowledge a correct windowed engine can have accumulated —
//! every SDE that was visible at *some* executed query up to `Qi` (late
//! arrivals beyond the working memory are excluded: they are irrevocably
//! lost, §4.2) — and then requires:
//!
//! 1. `holdsAt` agreement at **every** time-point of the window `(Qi − WM,
//!    Qi]` for every grounding of every derived fluent either side knows;
//! 2. set equality of derived events, where the oracle side is restricted
//!    to derivations whose evidence span fits inside the window (the engine
//!    can only re-derive an event while all of its evidence is in working
//!    memory; simple-fluent *state*, by contrast, persists via inertia).
//!
//! On the first disagreement the harness builds a minimal
//! [`DivergenceReport`] (replayable seed included), persists it for CI
//! artifact upload, and returns it as the error.

use crate::diff::{write_report, DivergenceReport, EventDiff, FluentDiff, Side};
use crate::oracle::{BuiltinFn, Oracle};
use insight_datagen::adversarial::QueryGrid;
use insight_rtec::dsl::RuleSet;
use insight_rtec::engine::Engine;
use insight_rtec::event::{Event, FluentObs, Stamped};
use insight_rtec::term::{Symbol, Term};
use insight_rtec::time::Time;
use insight_rtec::window::WindowConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One generated SDE stream: stamped events and observations plus the seed
/// and label that regenerate it.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Human-readable generator label (printed in divergence reports).
    pub label: String,
    /// The seed that regenerates the stream.
    pub seed: u64,
    /// Stamped input events, any order.
    pub events: Vec<Stamped<Event>>,
    /// Stamped input fluent observations, any order.
    pub obs: Vec<Stamped<FluentObs>>,
}

/// Aggregate counts of one differential check (for thoroughness asserts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Queries executed.
    pub queries: usize,
    /// Fluent groundings compared (summed over queries).
    pub groundings: usize,
    /// `holdsAt` time-points compared.
    pub ticks: usize,
    /// Derived event instances compared (union of both sides).
    pub events_compared: usize,
}

impl CheckStats {
    fn absorb(&mut self, other: CheckStats) {
        self.queries += other.queries;
        self.groundings += other.groundings;
        self.ticks += other.ticks;
        self.events_compared += other.events_compared;
    }

    /// Sums per-stream stats.
    pub fn merge(stats: impl IntoIterator<Item = CheckStats>) -> CheckStats {
        let mut total = CheckStats::default();
        for s in stats {
            total.absorb(s);
        }
        total
    }
}

/// A post-build engine configuration hook (e.g. flipping compiled mode).
type EngineHook = Box<dyn Fn(&mut Engine) + Send + Sync>;

/// Builds matched engine/oracle pairs and runs differential checks.
pub struct Harness {
    rules: RuleSet,
    grid: QueryGrid,
    relations: Vec<(String, Vec<Vec<Term>>)>,
    builtins: Vec<(String, BuiltinFn)>,
    initially: Vec<(String, Vec<Term>, Term)>,
    engine_config: Option<EngineHook>,
}

impl Harness {
    /// A harness for one rule set over one query grid.
    pub fn new(rules: RuleSet, grid: QueryGrid) -> Harness {
        Harness {
            rules,
            grid,
            relations: Vec::new(),
            builtins: Vec::new(),
            initially: Vec::new(),
            engine_config: None,
        }
    }

    /// The query grid under test.
    pub fn grid(&self) -> QueryGrid {
        self.grid
    }

    /// Registers a finite relation on both sides.
    pub fn relation(mut self, name: &str, tuples: Vec<Vec<Term>>) -> Harness {
        self.relations.push((name.to_string(), tuples));
        self
    }

    /// Registers a boolean builtin on both sides.
    pub fn builtin<F>(mut self, name: &str, f: F) -> Harness
    where
        F: Fn(&[Term]) -> bool + Send + Sync + 'static,
    {
        self.builtins.push((name.to_string(), Arc::new(f)));
        self
    }

    /// Declares a fluent grounding holding from the beginning of time on
    /// both sides.
    pub fn initially(mut self, name: &str, args: Vec<Term>, value: Term) -> Harness {
        self.initially.push((name.to_string(), args, value));
        self
    }

    /// Installs a hook applied to every engine the harness builds (after
    /// relations, builtins and initial state). Used to flip evaluation modes
    /// — e.g. `set_compiled(true)` or `set_incremental(false)` — so the same
    /// differential runs against any engine configuration. The oracle side is
    /// untouched by design: it has no modes to configure.
    pub fn configure_engine<F>(mut self, f: F) -> Harness
    where
        F: Fn(&mut Engine) + Send + Sync + 'static,
    {
        self.engine_config = Some(Box::new(f));
        self
    }

    fn build_engine(&self) -> Engine {
        let window = WindowConfig::new(self.grid.wm, self.grid.step).expect("valid grid window");
        let mut engine = Engine::new(self.rules.clone(), window);
        for (name, tuples) in &self.relations {
            engine.set_relation(name, tuples.clone()).expect("declared relation");
        }
        for (name, f) in &self.builtins {
            let f = Arc::clone(f);
            engine.register_builtin(name, move |args| f(args)).expect("declared builtin");
        }
        for (name, args, value) in &self.initially {
            engine.set_initially(name, args.clone(), value.clone()).expect("declared fluent");
        }
        if let Some(cfg) = &self.engine_config {
            cfg(&mut engine);
        }
        engine
    }

    fn build_oracle(&self) -> Oracle {
        let mut oracle = Oracle::new(self.rules.clone());
        for (name, tuples) in &self.relations {
            oracle.set_relation(name, tuples.clone());
        }
        for (name, f) in &self.builtins {
            let f = Arc::clone(f);
            oracle.register_builtin(name, move |args| f(args));
        }
        for (name, args, value) in &self.initially {
            oracle.set_initially(name, args.clone(), value.clone());
        }
        oracle
    }

    /// Runs the full differential over one stream. `Err` carries the minimal
    /// divergence (already persisted for artifact upload).
    pub fn check(&self, stream: &Stream) -> Result<CheckStats, Box<DivergenceReport>> {
        let mut engine = self.build_engine();
        let oracle = self.build_oracle();
        for ev in &stream.events {
            engine.add_stamped_event(ev.clone()).unwrap_or_else(|e| {
                panic!("[{} seed {}] bad event: {e}", stream.label, stream.seed)
            });
        }
        for ob in &stream.obs {
            engine
                .add_stamped_obs(ob.clone())
                .unwrap_or_else(|e| panic!("[{} seed {}] bad obs: {e}", stream.label, stream.seed));
        }

        let mut stats = CheckStats::default();
        let fluent_names: BTreeSet<Symbol> = self.rules.derived_fluents().iter().copied().collect();
        for &q in &self.grid.queries() {
            let rec = engine.query(q).unwrap_or_else(|e| {
                panic!("[{} seed {}] engine query {q} failed: {e}", stream.label, stream.seed)
            });
            stats.queries += 1;
            let start = q - self.grid.wm;

            // The knowledge a correct windowed engine has at q: everything
            // that was visible at some executed query ≤ q.
            let known_events: Vec<Event> = stream
                .events
                .iter()
                .filter(|s| self.grid.ever_visible_by(s.item.time, s.arrival, q))
                .map(|s| s.item.clone())
                .collect();
            let known_obs: Vec<FluentObs> = stream
                .obs
                .iter()
                .filter(|s| self.grid.ever_visible_by(s.item.time, s.arrival, q))
                .map(|s| s.item.clone())
                .collect();
            let reference = oracle.run(&known_events, &known_obs);

            let mut fluent_diffs: Vec<FluentDiff> = Vec::new();
            for &name in &fluent_names {
                let name_str = name.as_str().to_string();
                let mut groundings: BTreeSet<(Vec<Term>, Term)> =
                    reference.groundings(name_str.as_str()).into_iter().collect();
                for e in rec.fluent_entries(name_str.as_str()) {
                    groundings.insert((e.args.clone(), e.value.clone()));
                }
                for (args, value) in groundings {
                    stats.groundings += 1;
                    let mut first: Option<Time> = None;
                    let mut last = start;
                    let mut mismatches = 0usize;
                    let mut engine_first = false;
                    // The window is half-open: (start, q].
                    for t in (start + 1)..=q {
                        stats.ticks += 1;
                        let eh = rec.holds_at(name_str.as_str(), &args, &value, t);
                        let oh = reference.holds_at(name_str.as_str(), &args, &value, t);
                        if eh != oh {
                            if first.is_none() {
                                first = Some(t);
                                engine_first = eh;
                            }
                            last = t;
                            mismatches += 1;
                        }
                    }
                    if let Some(first_tick) = first {
                        fluent_diffs.push(FluentDiff {
                            fluent: name_str.clone(),
                            args,
                            value,
                            first_tick,
                            last_tick: last,
                            mismatching_ticks: mismatches,
                            engine_holds_at_first: engine_first,
                        });
                    }
                }
            }

            let expected = reference.derived_events_in_window(start, q);
            let mut actual: Vec<(Symbol, Vec<Term>, Time)> =
                rec.derived_events.iter().map(|e| (e.kind, e.args.clone(), e.time)).collect();
            actual.sort();
            actual.dedup();
            let expected_set: BTreeSet<_> = expected.iter().cloned().collect();
            let actual_set: BTreeSet<_> = actual.iter().cloned().collect();
            stats.events_compared += expected_set.union(&actual_set).count();
            let mut event_diffs: Vec<EventDiff> = Vec::new();
            for (kind, args, time) in expected_set.difference(&actual_set) {
                event_diffs.push(EventDiff {
                    kind: kind.as_str().to_string(),
                    args: args.clone(),
                    time: *time,
                    side: Side::MissingFromEngine,
                });
            }
            for (kind, args, time) in actual_set.difference(&expected_set) {
                event_diffs.push(EventDiff {
                    kind: kind.as_str().to_string(),
                    args: args.clone(),
                    time: *time,
                    side: Side::SpuriousInEngine,
                });
            }

            if !fluent_diffs.is_empty() || !event_diffs.is_empty() {
                let report = DivergenceReport {
                    label: stream.label.clone(),
                    seed: stream.seed,
                    query_time: q,
                    window_start: start,
                    fluent_diffs,
                    event_diffs,
                };
                write_report(&report);
                return Err(Box::new(report));
            }
        }
        Ok(stats)
    }

    /// Runs the same stream through two engines built from this harness —
    /// one per configuration hook — and requires identical recognitions at
    /// every query: equal derived-event sets and `holdsAt` agreement at
    /// every time-point of every window. Unlike [`Harness::check`] there is
    /// no oracle involved, so this directly pins two engine modes against
    /// each other (e.g. compiled vs. interpreted). `Err` carries a
    /// replayable description of the first divergence.
    pub fn compare_engine_modes<F, G>(
        &self,
        stream: &Stream,
        configure_a: F,
        configure_b: G,
    ) -> Result<CheckStats, String>
    where
        F: Fn(&mut Engine),
        G: Fn(&mut Engine),
    {
        let mut a = self.build_engine();
        let mut b = self.build_engine();
        configure_a(&mut a);
        configure_b(&mut b);
        for ev in &stream.events {
            a.add_stamped_event(ev.clone()).unwrap();
            b.add_stamped_event(ev.clone()).unwrap();
        }
        for ob in &stream.obs {
            a.add_stamped_obs(ob.clone()).unwrap();
            b.add_stamped_obs(ob.clone()).unwrap();
        }
        let mut stats = CheckStats::default();
        let fluent_names: BTreeSet<Symbol> = self.rules.derived_fluents().iter().copied().collect();
        for &q in &self.grid.queries() {
            let ra = a.query(q).map_err(|e| format!("engine A query {q}: {e}"))?;
            let rb = b.query(q).map_err(|e| format!("engine B query {q}: {e}"))?;
            stats.queries += 1;
            let start = q - self.grid.wm;

            let mut evs_a: Vec<(Symbol, Vec<Term>, Time)> =
                ra.derived_events.iter().map(|e| (e.kind, e.args.clone(), e.time)).collect();
            let mut evs_b: Vec<(Symbol, Vec<Term>, Time)> =
                rb.derived_events.iter().map(|e| (e.kind, e.args.clone(), e.time)).collect();
            evs_a.sort();
            evs_a.dedup();
            evs_b.sort();
            evs_b.dedup();
            stats.events_compared += evs_a.len().max(evs_b.len());
            if evs_a != evs_b {
                return Err(format!(
                    "[{} seed {}] derived events diverge at q={q}: A has {}, B has {}",
                    stream.label,
                    stream.seed,
                    evs_a.len(),
                    evs_b.len()
                ));
            }

            for &name in &fluent_names {
                let name_str = name.as_str();
                let mut groundings: BTreeSet<(Vec<Term>, Term)> = BTreeSet::new();
                for e in ra.fluent_entries(name_str).iter().chain(rb.fluent_entries(name_str)) {
                    groundings.insert((e.args.clone(), e.value.clone()));
                }
                for (args, value) in groundings {
                    stats.groundings += 1;
                    for t in (start + 1)..=q {
                        stats.ticks += 1;
                        let ha = ra.holds_at(name_str, &args, &value, t);
                        let hb = rb.holds_at(name_str, &args, &value, t);
                        if ha != hb {
                            return Err(format!(
                                "[{} seed {}] {name_str}({args:?})={value:?} diverges at \
                                 t={t} (q={q}): A={ha}, B={hb}",
                                stream.label, stream.seed
                            ));
                        }
                    }
                }
            }
        }
        Ok(stats)
    }
}
