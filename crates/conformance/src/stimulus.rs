//! Seeded SDE stream generators over the conformance fixture vocabulary.
//!
//! [`fixture_stream`] turns an adversarial arrival schedule
//! ([`insight_datagen::adversarial`]) into concrete fixture SDEs: bus
//! `enter`/`leave`, sensor `spike`/`calm`/`fault`/`fixed`, region
//! `all_clear`, plus co-timed `flow` observations accompanying every spike
//! (sometimes with a *different* arrival time, so an engine can see the
//! spike without its flow reading, or vice versa). Everything is a pure
//! function of the seed.

use crate::differential::{Harness, Stream};
use insight_datagen::adversarial::{adversarial_points, LatenessMix, QueryGrid};
use insight_rtec::event::{Event, FluentObs, Stamped};
use insight_rtec::term::Term;
use insight_traffic::fixtures::{
    conformance_fixture, fixture_builtin, FIXTURE_SENSORS, FIXTURE_STOPS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs of the fixture stream generator.
#[derive(Debug, Clone, Copy)]
pub struct StimulusConfig {
    /// Number of scheduled SDE points.
    pub n_points: usize,
    /// Arrival lateness mix.
    pub mix: LatenessMix,
    /// Probability that an emitted event is duplicated (same occurrence,
    /// later arrival).
    pub duplicate_rate: f64,
    /// Probability that a spike's co-timed `flow` observation arrives at a
    /// different time than the spike itself.
    pub skew_obs_rate: f64,
}

impl Default for StimulusConfig {
    fn default() -> StimulusConfig {
        StimulusConfig {
            n_points: 120,
            mix: LatenessMix::default(),
            duplicate_rate: 0.08,
            skew_obs_rate: 0.2,
        }
    }
}

/// The query grid conformance runs use by default: WM 100, step 50 (an
/// overlapping sliding window, WM = 2·step, as in the paper's evaluation),
/// 11 queries.
pub fn fixture_grid() -> QueryGrid {
    QueryGrid { first: 100, step: 50, wm: 100, last: 600 }
}

/// A [`Harness`] loaded with the fixture rule set, relations and builtins.
pub fn fixture_harness(grid: QueryGrid) -> Harness {
    let fx = conformance_fixture().expect("fixture rule set builds");
    let mut harness = Harness::new(fx.rules, grid);
    for (name, tuples) in fx.relations {
        harness = harness.relation(name, tuples);
    }
    for name in fx.builtins {
        let f = fixture_builtin(name).expect("fixture builtin exists");
        harness = harness.builtin(name, move |args| f(args));
    }
    harness
}

const REGIONS: [&str; 2] = ["central", "north"];
const N_BUSES: i64 = 4;

/// Generates one deterministic fixture stream from a seed.
pub fn fixture_stream(seed: u64, grid: QueryGrid, cfg: &StimulusConfig) -> Stream {
    let points = adversarial_points(seed, cfg.n_points, &grid, &cfg.mix);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57f1_0b5e);
    let mut events: Vec<Stamped<Event>> = Vec::new();
    let mut obs: Vec<Stamped<FluentObs>> = Vec::new();
    for p in &points {
        let sensor = Term::int(rng.random_range(0..FIXTURE_SENSORS));
        let ev = match rng.random_range(0..10u32) {
            0 | 1 => Event::new(
                "enter",
                vec![
                    Term::int(rng.random_range(0..N_BUSES)),
                    Term::int(rng.random_range(0..FIXTURE_STOPS)),
                ],
                p.time,
            ),
            2 => Event::new(
                "leave",
                vec![
                    Term::int(rng.random_range(0..N_BUSES)),
                    Term::int(rng.random_range(0..FIXTURE_STOPS)),
                ],
                p.time,
            ),
            3..=5 => {
                // Spikes come with a co-timed flow observation; its arrival
                // is usually the spike's, sometimes skewed.
                let flow = Term::float(f64::from(rng.random_range(0..100u32)));
                let obs_arrival = if rng.random_bool(cfg.skew_obs_rate) {
                    p.arrival + rng.random_range(0..=grid.step)
                } else {
                    p.arrival
                };
                obs.push(Stamped::arriving_at(
                    FluentObs::new("flow", [sensor.clone()], flow, p.time),
                    obs_arrival,
                ));
                Event::new("spike", vec![sensor], p.time)
            }
            6 | 7 => Event::new("calm", vec![sensor], p.time),
            8 => {
                if rng.random_bool(0.5) {
                    Event::new("fault", vec![sensor], p.time)
                } else {
                    Event::new("fixed", vec![sensor], p.time)
                }
            }
            _ => Event::new(
                "all_clear",
                vec![Term::sym(REGIONS[rng.random_range(0..REGIONS.len())])],
                p.time,
            ),
        };
        if rng.random_bool(cfg.duplicate_rate) {
            let dup_arrival = p.arrival + rng.random_range(0..=grid.step);
            events.push(Stamped::arriving_at(ev.clone(), dup_arrival));
        }
        events.push(Stamped::arriving_at(ev, p.arrival));
    }
    Stream { label: format!("fixture-n{}", cfg.n_points), seed, events, obs }
}

/// Extra seed offset mixed into the deterministic conformance tests'
/// stimulus and scheduler seeds, read from `CONFORMANCE_SEED` (default 0).
/// CI runs the suite once per pinned value so each job covers a disjoint
/// seed family while staying exactly reproducible locally:
/// `CONFORMANCE_SEED=77 cargo test -p insight-conformance`.
pub fn seed_offset() -> u64 {
    std::env::var("CONFORMANCE_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_generation_is_deterministic() {
        let grid = fixture_grid();
        let cfg = StimulusConfig::default();
        let a = fixture_stream(42, grid, &cfg);
        let b = fixture_stream(42, grid, &cfg);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.obs.len(), b.obs.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.item, y.item);
        }
    }

    #[test]
    fn stream_covers_the_vocabulary() {
        let grid = fixture_grid();
        let cfg = StimulusConfig { n_points: 400, ..StimulusConfig::default() };
        let s = fixture_stream(7, grid, &cfg);
        let kinds: std::collections::HashSet<String> =
            s.events.iter().map(|e| e.item.kind.as_str().to_string()).collect();
        for k in ["enter", "leave", "spike", "calm", "all_clear"] {
            assert!(kinds.contains(k), "missing {k}");
        }
        assert!(!s.obs.is_empty(), "spikes carry flow observations");
    }
}
