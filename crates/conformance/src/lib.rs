//! # insight-conformance — correctness tooling for the INSIGHT reproduction
//!
//! The paper's two hardest correctness surfaces are (a) RTEC's *incremental*
//! windowed recognition (§4.2: working-memory amendment of delayed SDEs must
//! equal recomputation from scratch) and (b) the Streams dataflow's claim
//! that recognition output is independent of thread interleaving (§3). This
//! crate provides the machinery to *test* both claims rather than assume
//! them:
//!
//! * [`oracle`] — a deliberately naive reference Event Calculus interpreter
//!   over the complete SDE history: no windows, no caches, no incremental
//!   state.
//! * [`differential`] — runs the windowed engine and the oracle over the
//!   same seeded stream and compares `holdsAt` at every time-point of every
//!   window plus the derived-event sets.
//! * [`diff`] — divergence reports: minimal fluent/interval diff plus the
//!   replayable seed, optionally written to `CONFORMANCE_REPORT_DIR`.
//!
//! The deterministic replay *scheduler* itself lives in
//! `insight_streams::replay` (it is a runtime concern); the Dublin-topology
//! schedule-invariance helper lives in `insight_core::replay`. This crate's
//! integration tests drive both.

#![warn(missing_docs)]

pub mod diff;
pub mod differential;
pub mod oracle;
pub mod stimulus;

pub use diff::DivergenceReport;
pub use differential::{CheckStats, Harness, Stream};
pub use oracle::{Oracle, OracleResult};
pub use stimulus::{fixture_grid, fixture_harness, fixture_stream, seed_offset, StimulusConfig};
