//! Divergence reporting: when the windowed engine and the reference oracle
//! disagree, print the *minimal* difference — which grounding, which
//! time-points, which derived events — together with everything needed to
//! replay the failing case (the stream seed and label).
//!
//! Reports render via `Display`; [`write_report`] additionally persists them
//! under `$CONFORMANCE_REPORT_DIR` (or `target/conformance/`) so CI can
//! upload them as artifacts.

use insight_rtec::term::Term;
use insight_rtec::time::Time;
use std::fmt;
use std::path::PathBuf;

/// Which side an event instance is missing from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The engine reported it; the oracle does not derive it.
    SpuriousInEngine,
    /// The oracle derives it inside the window; the engine missed it.
    MissingFromEngine,
}

/// One fluent grounding on which `holdsAt` disagrees inside a window.
#[derive(Debug, Clone)]
pub struct FluentDiff {
    /// Fluent name.
    pub fluent: String,
    /// Ground arguments.
    pub args: Vec<Term>,
    /// Fluent value.
    pub value: Term,
    /// First window time-point where the sides disagree.
    pub first_tick: Time,
    /// Last window time-point where the sides disagree.
    pub last_tick: Time,
    /// Number of disagreeing time-points in the window.
    pub mismatching_ticks: usize,
    /// The engine's answer at `first_tick` (the oracle answers the opposite).
    pub engine_holds_at_first: bool,
}

/// One derived event instance present on only one side.
#[derive(Debug, Clone)]
pub struct EventDiff {
    /// Event kind.
    pub kind: String,
    /// Ground arguments.
    pub args: Vec<Term>,
    /// Occurrence time.
    pub time: Time,
    /// Which side is missing it.
    pub side: Side,
}

/// A divergence between the windowed engine and the oracle at one query.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Human-readable label of the generated stream (scenario / generator).
    pub label: String,
    /// The seed that regenerates the exact failing stream.
    pub seed: u64,
    /// The query time at which the divergence appeared.
    pub query_time: Time,
    /// The window start (`query_time − WM`).
    pub window_start: Time,
    /// Disagreeing fluent groundings (minimal: one entry per grounding).
    pub fluent_diffs: Vec<FluentDiff>,
    /// Derived event instances present on only one side.
    pub event_diffs: Vec<EventDiff>,
}

impl DivergenceReport {
    /// True when the report carries no differences (not a divergence).
    pub fn is_empty(&self) -> bool {
        self.fluent_diffs.is_empty() && self.event_diffs.is_empty()
    }
}

fn fmt_args(args: &[Term]) -> String {
    let inner: Vec<String> = args.iter().map(|t| t.to_string()).collect();
    inner.join(", ")
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ORACLE DIVERGENCE at query {} (window ({}, {}])",
            self.query_time, self.window_start, self.query_time
        )?;
        writeln!(f, "  stream: {} — replay with seed {}", self.label, self.seed)?;
        for d in &self.fluent_diffs {
            writeln!(
                f,
                "  holdsAt({}({}) = {}): engine={} oracle={} at t={} \
                 ({} of the window's time-points disagree, t={}..={})",
                d.fluent,
                fmt_args(&d.args),
                d.value,
                d.engine_holds_at_first,
                !d.engine_holds_at_first,
                d.first_tick,
                d.mismatching_ticks,
                d.first_tick,
                d.last_tick,
            )?;
        }
        for d in &self.event_diffs {
            let what = match d.side {
                Side::SpuriousInEngine => "engine reports it; oracle does not derive it",
                Side::MissingFromEngine => "oracle derives it in-window; engine missed it",
            };
            writeln!(f, "  happensAt({}({}), {}): {}", d.kind, fmt_args(&d.args), d.time, what)?;
        }
        Ok(())
    }
}

/// Writes the report to `$CONFORMANCE_REPORT_DIR` (or `target/conformance/`
/// as a fallback). Returns the path on success; IO failures are swallowed —
/// reporting must never mask the underlying assertion failure.
pub fn write_report(report: &DivergenceReport) -> Option<PathBuf> {
    let dir = std::env::var_os("CONFORMANCE_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/conformance"));
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!(
        "divergence-{}-seed{}-q{}.txt",
        report.label.replace(|c: char| !c.is_ascii_alphanumeric(), "_"),
        report.seed,
        report.query_time
    ));
    std::fs::write(&path, report.to_string()).ok()?;
    Some(path)
}
