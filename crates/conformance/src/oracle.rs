//! A deliberately naive reference Event Calculus interpreter.
//!
//! [`Oracle`] interprets the *same* compiled [`RuleSet`] AST as
//! `insight_rtec::engine::Engine`, but from first principles (§4 of the
//! paper): it is handed the **entire** SDE history at once and recomputes
//! every `initiatedAt` / `terminatedAt` point and every `holdsAt` answer
//! from scratch — no windowing, no retention, no interval lists, no caches,
//! no inter-query incremental state, no event indexes. `holdsAt(F=V, T)` is
//! answered by the textbook inertia formula: an initiation point at or
//! before `T` with no later termination in `(Ti, T]` (terminations are
//! applied before initiations at equal time-points, matching
//! `IntervalList::from_points`).
//!
//! Because the implementation shares nothing with the engine beyond the rule
//! AST and the pattern matcher, agreement between the two on the same
//! knowledge is strong evidence that the engine's windowed/incremental
//! machinery implements the declarative semantics.
//!
//! Every derivation additionally records its **evidence span** — the minimum
//! and maximum time-point mentioned by any `happensAt`/`holdsAt` condition
//! used — so differential tests can predict which derived events a windowed
//! engine can possibly re-derive inside `(Q − WM, Q]` (the engine only
//! reports a derived event when all of its evidence is inside the window;
//! simple-fluent state, by contrast, persists through the inertia cache).

use insight_rtec::dsl::RuleSet;
use insight_rtec::event::{Event, FluentObs};
use insight_rtec::pattern::{match_args, unbind_all, ArgPat, Bindings, FluentPattern};
use insight_rtec::rule::{BodyAtom, GuardExpr, IntervalExpr, NumExpr, SfKind, ValRef};
use insight_rtec::stratify::HeadKind;
use insight_rtec::term::{Symbol, Term};
use insight_rtec::time::Time;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Receives each complete body solution: the final bindings plus the
/// time-point spans of the temporal conditions that matched.
type SolutionSink<'a> = dyn FnMut(&mut Bindings, &[(Time, Time)]) + 'a;

/// Boolean builtin callback, same shape as the engine's.
pub type BuiltinFn = Arc<dyn Fn(&[Term]) -> bool + Send + Sync>;

/// An event instance together with the evidence span of one derivation.
/// Input events carry the trivial span `(time, time)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedEvent {
    /// Event kind.
    pub kind: Symbol,
    /// Ground arguments.
    pub args: Vec<Term>,
    /// Occurrence time.
    pub time: Time,
    /// `(earliest, latest)` time-point mentioned by the derivation.
    pub span: (Time, Time),
}

/// All initiation/termination points the oracle found for one grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundFluent {
    /// Ground arguments of the fluent.
    pub args: Vec<Term>,
    /// The fluent value.
    pub value: Term,
    /// Sorted, de-duplicated initiation points.
    pub inits: Vec<Time>,
    /// Sorted, de-duplicated termination points.
    pub terms: Vec<Time>,
}

/// The reference interpreter. Configure it exactly like the engine
/// (same rule set, relations, builtins, `initially` facts), then call
/// [`Oracle::run`] with the complete history.
pub struct Oracle {
    rules: RuleSet,
    relations: HashMap<Symbol, Vec<Vec<Term>>>,
    builtins: HashMap<Symbol, BuiltinFn>,
    initially: BTreeSet<(Symbol, Vec<Term>, Term)>,
}

impl Oracle {
    /// A fresh oracle for one rule set.
    pub fn new(rules: RuleSet) -> Oracle {
        Oracle {
            rules,
            relations: HashMap::new(),
            builtins: HashMap::new(),
            initially: BTreeSet::new(),
        }
    }

    /// Provides the tuples of a finite relation (mirrors
    /// `Engine::set_relation`).
    pub fn set_relation(&mut self, name: &str, tuples: Vec<Vec<Term>>) {
        self.relations.insert(Symbol::new(name), tuples);
    }

    /// Registers a boolean builtin (mirrors `Engine::register_builtin`).
    pub fn register_builtin<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Term]) -> bool + Send + Sync + 'static,
    {
        self.builtins.insert(Symbol::new(name), Arc::new(f));
    }

    /// Declares that a fluent grounding holds from the beginning of time
    /// (mirrors `Engine::set_initially`).
    pub fn set_initially(&mut self, name: &str, args: Vec<Term>, value: Term) {
        self.initially.insert((Symbol::new(name), args, value));
    }

    /// Interprets the rule set over the complete history: every event and
    /// observation that the recogniser is assumed to know about, in any
    /// order. Duplicates are harmless (set semantics throughout).
    pub fn run(&self, events: &[Event], obs: &[FluentObs]) -> OracleResult<'_> {
        let mut state = OracleResult {
            oracle: self,
            events: events
                .iter()
                .map(|e| SpannedEvent {
                    kind: e.kind,
                    args: e.args.clone(),
                    time: e.time,
                    span: (e.time, e.time),
                })
                .collect(),
            obs: obs.to_vec(),
            sf: HashMap::new(),
            derived: Vec::new(),
        };
        for stratum in self.rules.strata() {
            match stratum.kind {
                HeadKind::Event => state.eval_event_stratum(&stratum.rule_indices),
                HeadKind::SimpleFluent => state.eval_sf_stratum(&stratum.rule_indices),
                // Statically-determined fluents have no stored state: they
                // are evaluated pointwise on demand from their definition.
                HeadKind::StaticFluent => {}
            }
        }
        state
    }
}

/// The oracle's answers over one complete history.
pub struct OracleResult<'a> {
    oracle: &'a Oracle,
    /// All events: inputs plus derived, one entry per distinct evidence span.
    events: Vec<SpannedEvent>,
    obs: Vec<FluentObs>,
    /// Initiation/termination points per simple-fluent symbol.
    sf: HashMap<Symbol, Vec<GroundFluent>>,
    /// Derived events in derivation order (unsorted, de-duplicated per span).
    derived: Vec<SpannedEvent>,
}

impl OracleResult<'_> {
    /// All derived events, one entry per distinct `(kind, args, time, span)`.
    pub fn derived_events(&self) -> &[SpannedEvent] {
        &self.derived
    }

    /// The distinct derived event instances whose evidence fits entirely
    /// inside the window `(start, q]` — exactly the instances a correct
    /// windowed engine must report at query time `q`.
    pub fn derived_events_in_window(&self, start: Time, q: Time) -> Vec<(Symbol, Vec<Term>, Time)> {
        let mut out: Vec<(Symbol, Vec<Term>, Time)> = self
            .derived
            .iter()
            .filter(|e| e.span.0 > start && e.span.1 <= q)
            .map(|e| (e.kind, e.args.clone(), e.time))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// `holdsAt(name(args) = value, t)` from first principles.
    pub fn holds_at(&self, name: &str, args: &[Term], value: &Term, t: Time) -> bool {
        self.holds_at_sym(Symbol::new(name), args, value, t)
    }

    fn holds_at_sym(&self, name: Symbol, args: &[Term], value: &Term, t: Time) -> bool {
        if self.is_static(name) {
            return self.static_holds_at(name, args, value, t);
        }
        let initially = self.oracle.initially.contains(&(name, args.to_vec(), value.clone()));
        let points = self
            .sf
            .get(&name)
            .and_then(|gs| gs.iter().find(|g| g.args == args && &g.value == value));
        match points {
            Some(g) => holds_by_inertia(g, initially, t),
            None => initially,
        }
    }

    /// All groundings `(args, value)` the oracle has evidence about for a
    /// fluent: initiation/termination points for simple fluents, domain
    /// enumerations for static ones.
    pub fn groundings(&self, name: &str) -> Vec<(Vec<Term>, Term)> {
        let sym = Symbol::new(name);
        let mut out: Vec<(Vec<Term>, Term)> = Vec::new();
        if let Some(gs) = self.sf.get(&sym) {
            out.extend(gs.iter().map(|g| (g.args.clone(), g.value.clone())));
        }
        for (args, value) in self.static_groundings(sym) {
            out.push((args, value));
        }
        for (n, args, value) in &self.oracle.initially {
            if *n == sym {
                out.push((args.clone(), value.clone()));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn is_static(&self, name: Symbol) -> bool {
        self.oracle.rules.static_rules().iter().any(|r| r.head.name == name)
    }

    // -- rule evaluation ----------------------------------------------------

    fn eval_event_stratum(&mut self, rule_indices: &[usize]) {
        let mut new: Vec<SpannedEvent> = Vec::new();
        for &i in rule_indices {
            let rule = &self.oracle.rules.ev_rules()[i];
            let mut b = Bindings::new(rule.n_vars);
            let mut spans: Vec<(Time, Time)> = Vec::new();
            let mut solutions: Vec<(Vec<Term>, Time, (Time, Time))> = Vec::new();
            self.solve(&rule.body, &mut b, &mut spans, &mut |b, spans| {
                let Some(t) = b.get(rule.time).and_then(Term::as_i64) else {
                    return;
                };
                let Some(args) = instantiate(&rule.head.args, b) else {
                    return;
                };
                solutions.push((args, t, fold_span(spans, t)));
            });
            for (args, time, span) in solutions {
                new.push(SpannedEvent { kind: rule.head.kind, args, time, span });
            }
        }
        new.sort_by(|a, b| {
            (a.kind, &a.args, a.time, a.span).cmp(&(b.kind, &b.args, b.time, b.span))
        });
        new.dedup();
        // Derived events become visible to later strata only (same as the
        // engine, which indexes them after the stratum completes).
        self.events.extend(new.iter().cloned());
        self.derived.extend(new);
    }

    fn eval_sf_stratum(&mut self, rule_indices: &[usize]) {
        let mut collected: Vec<(Symbol, Vec<Term>, Term, SfKind, Time)> = Vec::new();
        for &i in rule_indices {
            let rule = &self.oracle.rules.sf_rules()[i];
            let mut b = Bindings::new(rule.n_vars);
            let mut spans: Vec<(Time, Time)> = Vec::new();
            self.solve(&rule.body, &mut b, &mut spans, &mut |b, _spans| {
                let Some(t) = b.get(rule.time).and_then(Term::as_i64) else {
                    return;
                };
                let (Some(args), Some(value)) =
                    (instantiate(&rule.head.args, b), instantiate_one(&rule.head.value, b))
                else {
                    return;
                };
                collected.push((rule.head.name, args, value, rule.kind, t));
            });
        }
        for (name, args, value, kind, t) in collected {
            let groundings = self.sf.entry(name).or_default();
            let g = match groundings.iter_mut().find(|g| g.args == args && g.value == value) {
                Some(g) => g,
                None => {
                    groundings.push(GroundFluent {
                        args,
                        value,
                        inits: Vec::new(),
                        terms: Vec::new(),
                    });
                    groundings.last_mut().expect("just pushed")
                }
            };
            let points = match kind {
                SfKind::Initiated => &mut g.inits,
                SfKind::Terminated => &mut g.terms,
            };
            if let Err(at) = points.binary_search(&t) {
                points.insert(at, t);
            }
        }
    }

    // -- naive body solver --------------------------------------------------

    /// Left-to-right backtracking over body atoms, scanning the full event
    /// and observation history with no indexes. `spans` accumulates the
    /// time-points of the temporal conditions matched so far.
    fn solve(
        &self,
        atoms: &[BodyAtom],
        b: &mut Bindings,
        spans: &mut Vec<(Time, Time)>,
        out: &mut SolutionSink<'_>,
    ) {
        let Some((atom, rest)) = atoms.split_first() else {
            out(b, spans);
            return;
        };
        match atom {
            BodyAtom::Happens { pat, time } => {
                for e in &self.events {
                    if e.kind != pat.kind {
                        continue;
                    }
                    let t_term = Term::int(e.time);
                    let time_was_bound = b.is_bound(*time);
                    if time_was_bound {
                        if b.get(*time) != Some(&t_term) {
                            continue;
                        }
                    } else if !b.bind(*time, &t_term) {
                        continue;
                    }
                    if let Some(bound) = match_args(&pat.args, &e.args, b) {
                        spans.push(e.span);
                        self.solve(rest, b, spans, out);
                        spans.pop();
                        unbind_all(&bound, b);
                    }
                    if !time_was_bound {
                        b.unbind(*time);
                    }
                }
            }
            BodyAtom::Holds { pat, time, negated } => {
                let Some(t) = b.get(*time).and_then(Term::as_i64) else {
                    return; // the time variable must be bound by now
                };
                if *negated {
                    if !self.some_holds(pat, t, b) {
                        spans.push((t, t));
                        self.solve(rest, b, spans, out);
                        spans.pop();
                    }
                } else {
                    self.each_holding(pat, t, b, &mut |b| {
                        spans.push((t, t));
                        self.solve(rest, b, spans, out);
                        spans.pop();
                    });
                }
            }
            BodyAtom::Relation { name, args } => {
                let Some(tuples) = self.oracle.relations.get(name) else {
                    return;
                };
                for tuple in tuples {
                    if let Some(bound) = match_args(args, tuple, b) {
                        self.solve(rest, b, spans, out);
                        unbind_all(&bound, b);
                    }
                }
            }
            BodyAtom::Builtin { name, args } => {
                let Some(f) = self.oracle.builtins.get(name) else {
                    return;
                };
                let resolved: Option<Vec<Term>> = args.iter().map(|a| resolve(a, b)).collect();
                if let Some(terms) = resolved {
                    if f(&terms) {
                        self.solve(rest, b, spans, out);
                    }
                }
            }
            BodyAtom::Guard(g) => {
                if eval_guard(g, b) {
                    self.solve(rest, b, spans, out);
                }
            }
        }
    }

    /// True when some grounding matching `pat` (under the current bindings)
    /// holds at `t`. Leaves the bindings untouched.
    fn some_holds(&self, pat: &FluentPattern, t: Time, b: &mut Bindings) -> bool {
        let mut found = false;
        self.each_holding(pat, t, b, &mut |_| found = true);
        found
    }

    /// Enumerates the groundings matching `pat` that hold at `t`, binding
    /// the pattern's variables for each.
    fn each_holding(
        &self,
        pat: &FluentPattern,
        t: Time,
        b: &mut Bindings,
        k: &mut dyn FnMut(&mut Bindings),
    ) {
        if self.oracle.rules.input_fluents().contains_key(&pat.name) {
            // Input fluents are point observations: `holdsAt` consults the
            // samples taken exactly at `t` (the engine's `range_at`).
            for o in &self.obs {
                if o.name != pat.name || o.time != t {
                    continue;
                }
                if let Some(bound) = match_args(&pat.args, &o.args, b) {
                    if let Some(vbound) = match_args(
                        std::slice::from_ref(&pat.value),
                        std::slice::from_ref(&o.value),
                        b,
                    ) {
                        k(b);
                        unbind_all(&vbound, b);
                    }
                    unbind_all(&bound, b);
                }
            }
            return;
        }
        // Derived fluent: enumerate known groundings, keep the holding ones.
        for (args, value) in self.candidate_groundings(pat.name) {
            if let Some(bound) = match_args(&pat.args, &args, b) {
                if let Some(vbound) =
                    match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&value), b)
                {
                    if self.holds_at_sym(pat.name, &args, &value, t) {
                        k(b);
                    }
                    unbind_all(&vbound, b);
                }
                unbind_all(&bound, b);
            }
        }
    }

    fn candidate_groundings(&self, name: Symbol) -> Vec<(Vec<Term>, Term)> {
        let mut out: Vec<(Vec<Term>, Term)> = Vec::new();
        if let Some(gs) = self.sf.get(&name) {
            out.extend(gs.iter().map(|g| (g.args.clone(), g.value.clone())));
        }
        out.extend(self.static_groundings(name));
        for (n, args, value) in &self.oracle.initially {
            if *n == name {
                out.push((args.clone(), value.clone()));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    // -- statically-determined fluents --------------------------------------

    fn static_groundings(&self, name: Symbol) -> Vec<(Vec<Term>, Term)> {
        let mut out = Vec::new();
        for rule in self.oracle.rules.static_rules() {
            if rule.head.name != name {
                continue;
            }
            let mut b = Bindings::new(rule.n_vars);
            let mut spans = Vec::new();
            let mut heads = Vec::new();
            self.solve(&rule.domain, &mut b, &mut spans, &mut |b, _| {
                if let (Some(args), Some(value)) =
                    (instantiate(&rule.head.args, b), instantiate_one(&rule.head.value, b))
                {
                    heads.push((args, value));
                }
            });
            out.extend(heads);
        }
        out.sort();
        out.dedup();
        out
    }

    fn static_holds_at(&self, name: Symbol, args: &[Term], value: &Term, t: Time) -> bool {
        for rule in self.oracle.rules.static_rules() {
            if rule.head.name != name {
                continue;
            }
            let mut b = Bindings::new(rule.n_vars);
            let mut spans = Vec::new();
            let mut holds = false;
            self.solve(&rule.domain, &mut b, &mut spans, &mut |b, _| {
                if holds {
                    return;
                }
                let matches_head = instantiate(&rule.head.args, b).as_deref() == Some(args)
                    && instantiate_one(&rule.head.value, b).as_ref() == Some(value);
                if matches_head && self.expr_holds(&rule.expr, b, t) {
                    holds = true;
                }
            });
            if holds {
                return true;
            }
        }
        false
    }

    /// Pointwise interpretation of an interval expression: `union_all` is
    /// disjunction, `intersect_all` conjunction, `relative_complement_all`
    /// base-and-not-any — all at a single time-point `t`.
    fn expr_holds(&self, expr: &IntervalExpr, b: &mut Bindings, t: Time) -> bool {
        match expr {
            IntervalExpr::Fluent(pat) => self.some_holds(pat, t, b),
            IntervalExpr::Union(es) => es.iter().any(|e| self.expr_holds(e, b, t)),
            // `intersect_all` of zero lists is empty, not everything.
            IntervalExpr::Intersect(es) => {
                !es.is_empty() && es.iter().all(|e| self.expr_holds(e, b, t))
            }
            IntervalExpr::RelComp(base, subs) => {
                self.expr_holds(base, b, t) && !subs.iter().any(|e| self.expr_holds(e, b, t))
            }
        }
    }
}

/// The textbook law of inertia at one time-point: the latest initiation at
/// or before `t` must not be followed by a termination in `(Ti, t]`.
/// Terminations act before initiations at equal time-points.
fn holds_by_inertia(g: &GroundFluent, initially: bool, t: Time) -> bool {
    let last_init = g.inits.iter().rev().find(|&&i| i <= t);
    let last_term = g.terms.iter().rev().find(|&&k| k <= t);
    match (last_init, last_term) {
        (None, None) => initially,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (Some(&i), Some(&k)) => i >= k,
    }
}

fn fold_span(spans: &[(Time, Time)], head_t: Time) -> (Time, Time) {
    let mut lo = head_t;
    let mut hi = head_t;
    for &(a, z) in spans {
        lo = lo.min(a);
        hi = hi.max(z);
    }
    (lo, hi)
}

fn instantiate(pats: &[ArgPat], b: &Bindings) -> Option<Vec<Term>> {
    pats.iter().map(|p| instantiate_one(p, b)).collect()
}

fn instantiate_one(pat: &ArgPat, b: &Bindings) -> Option<Term> {
    match pat {
        ArgPat::Const(t) => Some(t.clone()),
        ArgPat::Var(v) => b.get(*v).cloned(),
        ArgPat::Any => None,
    }
}

fn resolve(v: &ValRef, b: &Bindings) -> Option<Term> {
    match v {
        ValRef::Const(t) => Some(t.clone()),
        ValRef::Var(var) => b.get(*var).cloned(),
    }
}

fn eval_num(e: &NumExpr, b: &Bindings) -> Option<f64> {
    match e {
        NumExpr::Var(v) => b.get(*v)?.as_f64(),
        NumExpr::Const(c) => Some(*c),
        NumExpr::Add(l, r) => Some(eval_num(l, b)? + eval_num(r, b)?),
        NumExpr::Sub(l, r) => Some(eval_num(l, b)? - eval_num(r, b)?),
        NumExpr::Mul(l, r) => Some(eval_num(l, b)? * eval_num(r, b)?),
        NumExpr::Abs(x) => Some(eval_num(x, b)?.abs()),
    }
}

fn eval_guard(g: &GuardExpr, b: &Bindings) -> bool {
    match g {
        GuardExpr::Cmp { lhs, op, rhs } => match (eval_num(lhs, b), eval_num(rhs, b)) {
            (Some(l), Some(r)) => op.apply(l, r),
            _ => false,
        },
        GuardExpr::TermEq(l, r) => match (resolve(l, b), resolve(r, b)) {
            (Some(l), Some(r)) => l == r,
            _ => false,
        },
        GuardExpr::TermNe(l, r) => match (resolve(l, b), resolve(r, b)) {
            (Some(l), Some(r)) => l != r,
            _ => false,
        },
        GuardExpr::And(gs) => gs.iter().all(|g| eval_guard(g, b)),
        GuardExpr::Or(gs) => gs.iter().any(|g| eval_guard(g, b)),
        GuardExpr::Not(g) => !eval_guard(g, b),
    }
}
