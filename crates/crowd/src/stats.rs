//! Experiment bookkeeping: posterior peakedness and estimation traces.
//!
//! Figure 5 of the paper plots, per participant, the evolving estimate of
//! the error probability and its relative estimation error as a function of
//! the number of queries; §7.2 additionally reports the fraction of events
//! whose posterior is "very peaked" (one label above 0.99). These helpers
//! collect exactly those series.

/// Counts how often the posterior's top label exceeds a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakednessTracker {
    threshold: f64,
    peaked: usize,
    total: usize,
}

impl PeakednessTracker {
    /// A tracker with the paper's 0.99 threshold.
    pub fn paper_default() -> PeakednessTracker {
        PeakednessTracker::new(0.99)
    }

    /// A tracker with a custom threshold.
    pub fn new(threshold: f64) -> PeakednessTracker {
        PeakednessTracker { threshold, peaked: 0, total: 0 }
    }

    /// Records one posterior's confidence (its maximum mass).
    pub fn record(&mut self, confidence: f64) {
        self.total += 1;
        if confidence > self.threshold {
            self.peaked += 1;
        }
    }

    /// Events recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of peaked posteriors (`None` before any event).
    pub fn fraction(&self) -> Option<f64> {
        (self.total > 0).then(|| self.peaked as f64 / self.total as f64)
    }
}

/// Records, per participant, the estimate after each query — the data behind
/// both panels of Figure 5.
#[derive(Debug, Clone, Default)]
pub struct EstimationTrace {
    /// `series[i]` = estimates of participant `i` after each processed event.
    pub series: Vec<Vec<f64>>,
}

impl EstimationTrace {
    /// A trace for `n` participants.
    pub fn new(n: usize) -> EstimationTrace {
        EstimationTrace { series: vec![Vec::new(); n] }
    }

    /// Appends a snapshot of the current estimates.
    pub fn snapshot(&mut self, estimates: &[f64]) {
        for (s, &e) in self.series.iter_mut().zip(estimates) {
            s.push(e);
        }
    }

    /// Relative estimation error `(p̂ − p)/p` of participant `i` after query
    /// `t` (the lower panel of Figure 5).
    pub fn relative_error(&self, i: usize, t: usize, true_p: f64) -> Option<f64> {
        if true_p == 0.0 {
            return None;
        }
        self.series.get(i)?.get(t).map(|&e| (e - true_p) / true_p)
    }

    /// Final estimate of participant `i`.
    pub fn final_estimate(&self, i: usize) -> Option<f64> {
        self.series.get(i)?.last().copied()
    }

    /// Number of snapshots recorded.
    pub fn len(&self) -> usize {
        self.series.first().map(Vec::len).unwrap_or(0)
    }

    /// Whether no snapshot was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the participants, ordered by their final estimates, match the
    /// ordering of the true error probabilities — the paper's "after ~100
    /// calls the ordering is more or less correct" check. Ties within
    /// `tolerance` are not counted as violations (participants 2-3 and 6-7
    /// of the paper's cohort are near-ties).
    pub fn ordering_correct(&self, true_p: &[f64], tolerance: f64) -> bool {
        let n = self.series.len().min(true_p.len());
        for i in 0..n {
            for j in (i + 1)..n {
                let (Some(ei), Some(ej)) = (self.final_estimate(i), self.final_estimate(j)) else {
                    return false;
                };
                if (true_p[i] - true_p[j]).abs() <= tolerance {
                    continue;
                }
                if (true_p[i] < true_p[j]) != (ei < ej) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peakedness_counts() {
        let mut t = PeakednessTracker::paper_default();
        assert_eq!(t.fraction(), None);
        t.record(0.999);
        t.record(0.5);
        t.record(0.995);
        assert_eq!(t.total(), 3);
        assert!((t.fraction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_snapshots_and_errors() {
        let mut tr = EstimationTrace::new(2);
        tr.snapshot(&[0.3, 0.6]);
        tr.snapshot(&[0.25, 0.7]);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.final_estimate(0), Some(0.25));
        let re = tr.relative_error(1, 1, 0.5).unwrap();
        assert!((re - 0.4).abs() < 1e-12);
        assert!(tr.relative_error(0, 5, 0.5).is_none());
        assert!(tr.relative_error(0, 0, 0.0).is_none());
    }

    #[test]
    fn ordering_check_tolerates_near_ties() {
        let mut tr = EstimationTrace::new(3);
        // true: 0.2, 0.25, 0.9 — estimates swap the two near ones
        tr.snapshot(&[0.26, 0.21, 0.88]);
        assert!(tr.ordering_correct(&[0.2, 0.25, 0.9], 0.06));
        assert!(!tr.ordering_correct(&[0.2, 0.25, 0.9], 0.01));
        // swapping a clearly separated pair fails regardless
        let mut tr2 = EstimationTrace::new(2);
        tr2.snapshot(&[0.9, 0.1]);
        assert!(!tr2.ordering_correct(&[0.1, 0.9], 0.05));
    }
}
