//! Worker-selection policies.
//!
//! The engine "selects the list of workers to be queried based on the
//! selected policy (e.g. location, reliability, etc)" (§5.3), and for
//! real-time queries must ensure `commᵢ + compᵢ < deadline` for every
//! selected worker, estimating both from history.

use crate::engine::{Worker, WorkerId};
use crate::latency::LatencyModel;
use std::collections::HashMap;

/// How the engine picks workers for a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionPolicy {
    /// Every online worker.
    All,
    /// The `k` workers nearest to the query location.
    NearestK(usize),
    /// The `k` workers with the lowest estimated error probability;
    /// reliability estimates come from the online EM component.
    MostReliableK(usize),
    /// Nearest-first, but only workers whose expected communication +
    /// computation time meets the deadline: `commᵢ + compᵢ < deadline`.
    DeadlineFeasible {
        /// The real-time deadline in milliseconds.
        deadline_ms: f64,
        /// Maximum number of workers.
        k: usize,
    },
}

/// Squared equirectangular distance — monotone in true distance at city
/// scale, which is all ranking needs.
fn dist2(worker: &Worker, lon: f64, lat: f64) -> f64 {
    let mean_lat = (worker.lat + lat) / 2.0;
    let dx = (worker.lon - lon) * mean_lat.to_radians().cos();
    let dy = worker.lat - lat;
    dx * dx + dy * dy
}

impl SelectionPolicy {
    /// Applies the policy over the given online workers.
    ///
    /// `reliability` optionally maps worker ids to estimated error
    /// probabilities (lower = more reliable); workers without an entry are
    /// treated as average (0.5). `latency` provides per-connection expected
    /// communication times for the deadline test.
    pub fn select(
        &self,
        workers: &[&Worker],
        query_lon: f64,
        query_lat: f64,
        reliability: Option<&HashMap<WorkerId, f64>>,
        latency: &LatencyModel,
    ) -> Vec<WorkerId> {
        match self {
            SelectionPolicy::All => workers.iter().map(|w| w.id).collect(),
            SelectionPolicy::NearestK(k) => {
                let mut v: Vec<&&Worker> = workers.iter().collect();
                v.sort_by(|a, b| {
                    dist2(a, query_lon, query_lat).total_cmp(&dist2(b, query_lon, query_lat))
                });
                v.into_iter().take(*k).map(|w| w.id).collect()
            }
            SelectionPolicy::MostReliableK(k) => {
                let score = |w: &Worker| -> f64 {
                    reliability.and_then(|r| r.get(&w.id)).copied().unwrap_or(0.5)
                };
                let mut v: Vec<&&Worker> = workers.iter().collect();
                v.sort_by(|a, b| score(a).total_cmp(&score(b)).then(a.id.0.cmp(&b.id.0)));
                v.into_iter().take(*k).map(|w| w.id).collect()
            }
            SelectionPolicy::DeadlineFeasible { deadline_ms, k } => {
                let mut v: Vec<&&Worker> = workers
                    .iter()
                    .filter(|w| {
                        let expected = latency.push_mean(w.connection)
                            + latency.comm_mean(w.connection)
                            + w.avg_comp_ms;
                        expected < *deadline_ms
                    })
                    .collect();
                v.sort_by(|a, b| {
                    dist2(a, query_lon, query_lat).total_cmp(&dist2(b, query_lon, query_lat))
                });
                v.into_iter().take(*k).map(|w| w.id).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConnectionType;

    fn worker(id: u64, lon: f64, lat: f64, c: ConnectionType, comp: f64) -> Worker {
        Worker { id: WorkerId(id), lon, lat, connection: c, avg_comp_ms: comp }
    }

    fn fleet() -> Vec<Worker> {
        vec![
            worker(1, -6.26, 53.35, ConnectionType::WiFi, 50.0),
            worker(2, -6.27, 53.35, ConnectionType::ThreeG, 80.0),
            worker(3, -6.30, 53.36, ConnectionType::TwoG, 60.0),
            worker(4, -6.20, 53.30, ConnectionType::WiFi, 40.0),
        ]
    }

    fn refs(v: &[Worker]) -> Vec<&Worker> {
        v.iter().collect()
    }

    #[test]
    fn all_selects_everyone() {
        let f = fleet();
        let ids =
            SelectionPolicy::All.select(&refs(&f), -6.26, 53.35, None, &LatencyModel::default());
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn nearest_k_orders_by_distance() {
        let f = fleet();
        let ids = SelectionPolicy::NearestK(2).select(
            &refs(&f),
            -6.26,
            53.35,
            None,
            &LatencyModel::default(),
        );
        assert_eq!(ids, vec![WorkerId(1), WorkerId(2)]);
    }

    #[test]
    fn most_reliable_k_uses_estimates() {
        let f = fleet();
        let mut rel = HashMap::new();
        rel.insert(WorkerId(1), 0.9);
        rel.insert(WorkerId(2), 0.05);
        rel.insert(WorkerId(3), 0.2);
        // worker 4 missing -> 0.5
        let ids = SelectionPolicy::MostReliableK(2).select(
            &refs(&f),
            -6.26,
            53.35,
            Some(&rel),
            &LatencyModel::default(),
        );
        assert_eq!(ids, vec![WorkerId(2), WorkerId(3)]);
    }

    #[test]
    fn deadline_excludes_slow_connections() {
        let f = fleet();
        // 2G: 467 + 423 + comp > 900ms; with an 800ms deadline only
        // 3G/WiFi workers qualify.
        let ids = SelectionPolicy::DeadlineFeasible { deadline_ms: 800.0, k: 10 }.select(
            &refs(&f),
            -6.26,
            53.35,
            None,
            &LatencyModel::default(),
        );
        assert!(!ids.contains(&WorkerId(3)), "2G worker infeasible");
        assert_eq!(ids.len(), 3);
        // A generous deadline admits everyone.
        let ids = SelectionPolicy::DeadlineFeasible { deadline_ms: 5000.0, k: 10 }.select(
            &refs(&f),
            -6.26,
            53.35,
            None,
            &LatencyModel::default(),
        );
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn empty_worker_set_yields_empty_selection() {
        let ids =
            SelectionPolicy::NearestK(3).select(&[], 0.0, 0.0, None, &LatencyModel::default());
        assert!(ids.is_empty());
    }
}
