//! The crowdsourced model of §5.1.
//!
//! Each source-disagreement event is an unobserved categorical variable `Xₜ`
//! over a fixed label set; participant `i` answers with the true label with
//! probability `1 − p_i` and otherwise picks one of the remaining labels
//! uniformly (equations (6)–(7)):
//!
//! ```text
//! P(Y_{i,t} = x_t | X_t = x_t) = 1 − p_i
//! P(Y_{i,t} = x   | X_t = x_t) = p_i / (|Val(X_t)| − 1)    for x ≠ x_t
//! ```

use crate::error::CrowdError;
use rand::Rng;

/// The set of possible answers for disagreement events (e.g. the four
/// answers of the paper's experiment, one of which is "Traffic congestion").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet {
    labels: Vec<String>,
}

impl LabelSet {
    /// Builds a label set; needs at least two labels.
    pub fn new<I, S>(labels: I) -> Result<LabelSet, CrowdError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.len() < 2 {
            return Err(CrowdError::DegenerateLabelSet);
        }
        Ok(LabelSet { labels })
    }

    /// The four-answer label set used by the paper's experiment, with
    /// "Traffic congestion" as label 0.
    pub fn traffic_default() -> LabelSet {
        LabelSet::new(["Traffic congestion", "Free flowing", "Accident", "Road works"])
            .expect("static labels")
    }

    /// Number of labels `|Val(X)|`.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label text by index.
    pub fn name(&self, label: usize) -> Option<&str> {
        self.labels.get(label).map(String::as_str)
    }

    /// Index of a label text.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    /// A uniform prior over the labels.
    pub fn uniform_prior(&self) -> Vec<f64> {
        vec![1.0 / self.len() as f64; self.len()]
    }

    /// Validates a prior distribution against this label set.
    pub fn validate_prior(&self, prior: &[f64]) -> Result<(), CrowdError> {
        if prior.len() != self.len() {
            return Err(CrowdError::InvalidPrior {
                detail: format!("length {} != {} labels", prior.len(), self.len()),
            });
        }
        if prior.iter().any(|&p| p < 0.0 || !p.is_finite()) {
            return Err(CrowdError::InvalidPrior { detail: "negative or non-finite mass".into() });
        }
        let sum: f64 = prior.iter().sum();
        if sum <= 0.0 {
            return Err(CrowdError::InvalidPrior { detail: "zero total mass".into() });
        }
        Ok(())
    }
}

/// One source-disagreement event handed to the crowdsourcing component.
#[derive(Debug, Clone, PartialEq)]
pub struct DisagreementEvent {
    /// Monotone event index `t`.
    pub id: u64,
    /// Longitude of the SCATS intersection in question.
    pub lon: f64,
    /// Latitude of the SCATS intersection in question.
    pub lat: f64,
    /// Event time (seconds).
    pub time: i64,
    /// Prior `P(Xₜ)` over the labels, e.g. from the CE component's bus-vote
    /// ratio, or uniform.
    pub prior: Vec<f64>,
}

/// A query as handed to the execution engine:
/// `{Question, [answer₁, …, answerₙ]}` (§5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdQuery {
    /// The question text.
    pub question: String,
    /// The possible answers (the label set's names).
    pub answers: Vec<String>,
    /// Longitude of the location the question is about.
    pub lon: f64,
    /// Latitude of the location the question is about.
    pub lat: f64,
    /// Optional real-time deadline in milliseconds.
    pub deadline_ms: Option<f64>,
}

impl CrowdQuery {
    /// Builds the standard congestion question for a disagreement event.
    pub fn for_event(event: &DisagreementEvent, labels: &LabelSet) -> CrowdQuery {
        CrowdQuery {
            question: format!(
                "What is the traffic situation near ({:.5}, {:.5})?",
                event.lon, event.lat
            ),
            answers: (0..labels.len())
                .map(|i| labels.name(i).expect("index in range").to_string())
                .collect(),
            lon: event.lon,
            lat: event.lat,
            deadline_ms: None,
        }
    }
}

/// A simulated participant with a fixed (hidden) error probability — the
/// protocol of the paper's own evaluation (§7.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedParticipant {
    /// Probability of answering with a wrong label.
    pub p_err: f64,
}

impl SimulatedParticipant {
    /// Validates and builds the participant.
    pub fn new(p_err: f64) -> Result<SimulatedParticipant, CrowdError> {
        if !(0.0..=1.0).contains(&p_err) || !p_err.is_finite() {
            return Err(CrowdError::InvalidProbability { name: "p_err", value: p_err });
        }
        Ok(SimulatedParticipant { p_err })
    }

    /// The paper's ten participants:
    /// p = {0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9}.
    pub fn paper_cohort() -> Vec<SimulatedParticipant> {
        [0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9]
            .into_iter()
            .map(|p| SimulatedParticipant::new(p).expect("static probabilities"))
            .collect()
    }

    /// Draws an answer for an event whose true label is `truth`, following
    /// equations (6)–(7).
    pub fn answer<R: Rng + ?Sized>(
        &self,
        truth: usize,
        labels: &LabelSet,
        rng: &mut R,
    ) -> Result<usize, CrowdError> {
        if truth >= labels.len() {
            return Err(CrowdError::LabelOutOfRange { label: truth, n_labels: labels.len() });
        }
        if rng.random::<f64>() >= self.p_err {
            Ok(truth)
        } else {
            // Uniform over the |Val| − 1 wrong labels.
            let k = rng.random_range(0..labels.len() - 1);
            Ok(if k >= truth { k + 1 } else { k })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn label_set_basics() {
        let ls = LabelSet::traffic_default();
        assert_eq!(ls.len(), 4);
        assert_eq!(ls.name(0), Some("Traffic congestion"));
        assert_eq!(ls.index_of("Accident"), Some(2));
        assert_eq!(ls.index_of("nothing"), None);
        assert_eq!(ls.uniform_prior(), vec![0.25; 4]);
        assert!(LabelSet::new(["only-one"]).is_err());
    }

    #[test]
    fn prior_validation() {
        let ls = LabelSet::traffic_default();
        assert!(ls.validate_prior(&[0.25; 4]).is_ok());
        assert!(ls.validate_prior(&[0.5, 0.5]).is_err());
        assert!(ls.validate_prior(&[-0.1, 0.4, 0.4, 0.3]).is_err());
        assert!(ls.validate_prior(&[0.0; 4]).is_err());
        assert!(ls.validate_prior(&[f64::NAN, 0.1, 0.1, 0.1]).is_err());
    }

    #[test]
    fn participant_validation() {
        assert!(SimulatedParticipant::new(-0.1).is_err());
        assert!(SimulatedParticipant::new(1.1).is_err());
        assert!(SimulatedParticipant::new(0.25).is_ok());
        assert_eq!(SimulatedParticipant::paper_cohort().len(), 10);
    }

    #[test]
    fn answers_match_error_rate() {
        let ls = LabelSet::traffic_default();
        let p = SimulatedParticipant::new(0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut wrong = 0;
        let mut wrong_counts = [0usize; 4];
        for _ in 0..trials {
            let a = p.answer(1, &ls, &mut rng).unwrap();
            if a != 1 {
                wrong += 1;
                wrong_counts[a] += 1;
            }
        }
        let rate = wrong as f64 / trials as f64;
        assert!((rate - 0.4).abs() < 0.02, "empirical error rate {rate}");
        // Wrong answers are uniform over the other three labels.
        for (label, &c) in wrong_counts.iter().enumerate() {
            if label == 1 {
                continue;
            }
            let share = c as f64 / wrong as f64;
            assert!((share - 1.0 / 3.0).abs() < 0.05, "label {label} share {share}");
        }
    }

    #[test]
    fn perfect_and_adversarial_participants() {
        let ls = LabelSet::traffic_default();
        let mut rng = StdRng::seed_from_u64(1);
        let perfect = SimulatedParticipant::new(0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(perfect.answer(2, &ls, &mut rng).unwrap(), 2);
        }
        let adversary = SimulatedParticipant::new(1.0).unwrap();
        for _ in 0..100 {
            assert_ne!(adversary.answer(2, &ls, &mut rng).unwrap(), 2);
        }
    }

    #[test]
    fn answer_rejects_bad_truth() {
        let ls = LabelSet::traffic_default();
        let p = SimulatedParticipant::new(0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(p.answer(9, &ls, &mut rng).is_err());
    }

    #[test]
    fn query_for_event_lists_all_answers() {
        let ls = LabelSet::traffic_default();
        let ev =
            DisagreementEvent { id: 1, lon: -6.26, lat: 53.35, time: 0, prior: ls.uniform_prior() };
        let q = CrowdQuery::for_event(&ev, &ls);
        assert_eq!(q.answers.len(), 4);
        assert!(q.question.contains("-6.26"));
        assert_eq!(q.lon, ev.lon);
    }
}
